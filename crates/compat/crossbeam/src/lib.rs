//! In-tree stand-in for the slice of `crossbeam` this workspace uses:
//! `channel::{bounded, Sender, Receiver}`, backed by `std::sync::mpsc`.

/// Multi-producer channels with bounded capacity.
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a bounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    /// Receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the receiving side is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by a non-blocking send that could not enqueue.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel buffer is at capacity.
        Full(T),
        /// The receiving side is gone.
        Disconnected(T),
    }

    /// Error returned when the sending side is gone and the buffer drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Blocks until the value is enqueued (or the receiver is gone).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }

        /// Enqueues without blocking; distinguishes a full buffer from a
        /// hung-up receiver.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(value).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            })
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives (or the channel is closed empty).
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.0.try_recv().map_err(|_| RecvError)
        }
    }

    impl<T> Iterator for Receiver<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.recv().ok()
        }
    }

    /// Creates a bounded channel of the given capacity.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn bounded_roundtrip() {
        let (tx, rx) = bounded(4);
        let h = std::thread::spawn(move || {
            for i in 0..100u32 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn try_send_distinguishes_full_from_disconnected() {
        use super::channel::TrySendError;
        let (tx, rx) = bounded::<u8>(2);
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_ok());
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        assert!(tx.try_send(3).is_ok());
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }
}
