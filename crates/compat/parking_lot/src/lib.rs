//! In-tree stand-in for `parking_lot`: a `Mutex` with the
//! non-poisoning `lock()` signature, backed by `std::sync::Mutex`.

pub use std::sync::MutexGuard;

/// Mutual exclusion lock whose `lock` never returns a poison error —
/// a panic while holding the lock simply ignores the poison, matching
/// parking_lot's semantics closely enough for this workspace.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking; `None` when another
    /// thread holds it.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(5u8);
        {
            let _held = m.lock();
            assert!(m.try_lock().is_none());
        }
        assert_eq!(*m.try_lock().expect("uncontended"), 5);
    }

    #[test]
    fn basic_locking() {
        let m = Arc::new(Mutex::new(0u32));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
