//! In-tree stand-in for `criterion`: a minimal wall-clock benchmark
//! harness exposing the API surface the workspace's benches use —
//! `Criterion::{default, sample_size, bench_function, bench_with_input}`,
//! `Bencher::iter`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Each benchmark is timed over `sample_size` samples after a short
//! calibration pass; the mean and minimum per-iteration times are printed.
//! Results are also recorded so a wrapper (see `crates/bench`) can collect
//! machine-readable numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// One measured benchmark outcome.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark id.
    pub id: String,
    /// Mean seconds per iteration.
    pub mean_s: f64,
    /// Minimum seconds per iteration.
    pub min_s: f64,
    /// Iterations per sample used.
    pub iters_per_sample: u64,
}

/// Runs closures under timing.
pub struct Bencher<'a> {
    sample_size: usize,
    result: &'a mut Option<(f64, f64, u64)>,
}

impl Bencher<'_> {
    /// Benchmarks `routine`, timing `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: aim for samples of at least ~2ms or 1 iteration.
        let t0 = Instant::now();
        black_box(routine());
        let one = t0.elapsed().max(Duration::from_nanos(20));
        let iters = (Duration::from_millis(2).as_nanos() / one.as_nanos()).clamp(1, 100_000) as u64;

        let mut total = Duration::ZERO;
        let mut min = f64::INFINITY;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = t.elapsed();
            total += dt;
            let per = dt.as_secs_f64() / iters as f64;
            if per < min {
                min = per;
            }
        }
        let mean = total.as_secs_f64() / (self.sample_size as u64 * iters) as f64;
        *self.result = Some((mean, min, iters));
    }
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
    /// All measurements taken so far.
    pub measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurements: Vec::new(),
        }
    }
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut result = None;
        let mut b = Bencher {
            sample_size: self.sample_size,
            result: &mut result,
        };
        f(&mut b);
        self.record(id.to_string(), result);
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut result = None;
        let mut b = Bencher {
            sample_size: self.sample_size,
            result: &mut result,
        };
        f(&mut b, input);
        self.record(id.to_string(), result);
        self
    }

    fn record(&mut self, id: String, result: Option<(f64, f64, u64)>) {
        match result {
            Some((mean, min, iters)) => {
                println!(
                    "{id:<40} mean {:>12}   min {:>12}   ({iters} iters/sample)",
                    fmt_time(mean),
                    fmt_time(min)
                );
                self.measurements.push(Measurement {
                    id,
                    mean_s: mean,
                    min_s: min,
                    iters_per_sample: iters,
                });
            }
            None => println!("{id:<40} (no measurement: Bencher::iter never called)"),
        }
    }
}

/// Declares a benchmark group, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.measurements.len(), 1);
        assert!(c.measurements[0].mean_s > 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
    }
}
