//! In-tree stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access; this crate provides the
//! slice of serde's surface the workspace uses, reimplemented over a simple
//! JSON-shaped value tree. `Serialize` converts a type into a [`Value`];
//! `Deserialize` rebuilds it. The companion `serde_json` stand-in renders
//! values to/from JSON text. The derive macros live in `serde_derive` and
//! are re-exported here exactly like the real crate's `derive` feature.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-shaped value tree.
///
/// Numbers keep their integer/float identity so `u64` keys (e.g. subspace
/// bitmasks) round-trip exactly — `f64` alone cannot represent every `u64`.
#[derive(Debug, Clone)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (u64 precision preserved).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered entries.
    Object(Vec<(String, Value)>),
    /// Packed column of unsigned integers. Renders (and compares) exactly
    /// like an `Array` of `U64` entries, but stores the payload as one flat
    /// `Vec<u64>` — no per-element boxing, so building, cloning and
    /// binary-encoding megabyte-scale snapshot columns is a memcpy instead
    /// of a million allocations. JSON parsing never produces this variant
    /// (a parsed column comes back as `Array`), which is why equality and
    /// rendering must treat the two representations as the same value.
    U64Col(Vec<u64>),
}

impl Value {
    /// Looks up a field of an object value.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up an element of an array value.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(idx),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        // `U64Col` is a storage optimization, not a distinct value: it must
        // compare equal to the `Array`-of-`U64` tree a JSON round trip
        // produces, or capture → render → parse would break fixed-point
        // equality checks.
        fn col_eq(col: &[u64], items: &[Value]) -> bool {
            col.len() == items.len()
                && col
                    .iter()
                    .zip(items)
                    .all(|(n, v)| matches!(v, Value::U64(m) if m == n))
        }
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::U64(a), Value::U64(b)) => a == b,
            (Value::I64(a), Value::I64(b)) => a == b,
            (Value::F64(a), Value::F64(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            (Value::U64Col(a), Value::U64Col(b)) => a == b,
            (Value::U64Col(col), Value::Array(items))
            | (Value::Array(items), Value::U64Col(col)) => col_eq(col, items),
            _ => false,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// Adds field context to an error (used by the derive macro).
    pub fn in_field(self, field: &str) -> Self {
        DeError(format!("{field}: {}", self.0))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range"))),
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(DeError::custom(format!(
                        "expected unsigned integer, found {other:?}"))),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range"))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range"))),
                    Value::F64(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError::custom(format!(
                        "expected signed integer, found {other:?}"))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::custom(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            Value::U64Col(col) => col.iter().map(|n| T::from_value(&Value::U64(*n))).collect(),
            other => Err(DeError::custom(format!("expected array, found {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            Value::U64Col(col) if col.len() == 2 => Ok((
                A::from_value(&Value::U64(col[0]))?,
                B::from_value(&Value::U64(col[1]))?,
            )),
            other => Err(DeError::custom(format!("expected pair, found {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.25f64.to_value()).unwrap(), 1.25);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn option_and_vec_roundtrip() {
        let v: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&v.to_value()).unwrap(), None);
        let xs = vec![1u16, 2, 3];
        assert_eq!(Vec::<u16>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.get_field("a"), Some(&Value::U64(1)));
        assert_eq!(v.get_field("b"), None);
    }

    #[test]
    fn u64_col_compares_equal_to_array_of_u64() {
        let col = Value::U64Col(vec![1, 2, 3]);
        let arr = Value::Array(vec![Value::U64(1), Value::U64(2), Value::U64(3)]);
        assert_eq!(col, arr);
        assert_eq!(arr, col);
        assert_eq!(Value::U64Col(Vec::new()), Value::Array(Vec::new()));
        assert_ne!(col, Value::Array(vec![Value::U64(1), Value::U64(2)]));
        assert_ne!(
            col,
            Value::Array(vec![Value::U64(1), Value::U64(2), Value::I64(3)])
        );
        // Nested inside objects the bridge still holds.
        let a = Value::Object(vec![("c".into(), col)]);
        let b = Value::Object(vec![("c".into(), arr)]);
        assert_eq!(a, b);
    }
}
