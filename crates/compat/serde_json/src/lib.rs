//! In-tree stand-in for `serde_json`: renders the `serde` stand-in's value
//! tree to JSON text and parses it back. Supports exactly the JSON subset
//! that tree produces (null, bool, number, string, array, object).

use serde::{DeError, Deserialize, Serialize, Value};
use std::io::Write;

/// Serialization/deserialization error.
#[derive(Debug)]
pub enum Error {
    /// Parsing or mapping failure.
    De(DeError),
    /// I/O failure while writing.
    Io(std::io::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::De(e) => write!(f, "{e}"),
            Error::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::De(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// `Result` alias matching the real crate's shape.
pub type Result<T> = std::result::Result<T, Error>;

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // Keep float identity through a parse round-trip.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // JSON has no Infinity/NaN; encode as null like the real crate.
        out.push_str("null");
    }
}

fn render(v: &Value, pretty: bool, indent: usize, out: &mut String) {
    let pad = |n: usize, out: &mut String| {
        if pretty {
            out.push('\n');
            for _ in 0..n {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(indent + 1, out);
                render(item, pretty, indent + 1, out);
            }
            if !items.is_empty() {
                pad(indent, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(indent + 1, out);
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                render(val, pretty, indent + 1, out);
            }
            if !entries.is_empty() {
                pad(indent, out);
            }
            out.push('}');
        }
    }
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), false, 0, &mut out);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), true, 0, &mut out);
    Ok(out)
}

/// Serializes a value as pretty JSON into a writer.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(mut w: W, value: &T) -> Result<()> {
    let s = to_string_pretty(value)?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

/// Parses a JSON string into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(DeError::custom("trailing characters after JSON value").into());
    }
    Ok(T::from_value(&v)?)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::custom(format!("expected `{}` at byte {}", b as char, self.pos)).into())
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => {
                Err(DeError::custom(format!("unexpected byte {other:?} at {}", self.pos)).into())
            }
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(DeError::custom(format!("invalid literal at byte {}", self.pos)).into())
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(DeError::custom("unterminated string").into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(DeError::custom("unterminated escape").into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(DeError::custom("truncated \\u escape").into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| DeError::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| DeError::custom("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(DeError::custom(format!(
                                "unknown escape \\{}",
                                other as char
                            ))
                            .into())
                        }
                    }
                }
                b => {
                    // Re-assemble UTF-8 multibyte sequences.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let end = (start + width).min(self.bytes.len());
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| DeError::custom("invalid UTF-8 in string"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::custom("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| DeError::custom(format!("invalid number `{text}`")).into())
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(DeError::custom("expected `,` or `]`").into()),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(DeError::custom("expected `,` or `}`").into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(u64::MAX)),
            ("b".into(), Value::F64(1.5)),
            (
                "c".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("s".into(), Value::Str("x \"y\"\n".into())),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Array(vec![Value::U64(1), Value::Object(vec![])]);
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_keep_identity() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, 2.0);
    }
}
