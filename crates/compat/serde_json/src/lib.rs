//! In-tree stand-in for `serde_json`: renders the `serde` stand-in's value
//! tree to JSON text and parses it back. Supports exactly the JSON subset
//! that tree produces (null, bool, number, string, array, object).

use serde::{DeError, Deserialize, Serialize, Value};
use std::io::Write;

/// Serialization/deserialization error.
#[derive(Debug)]
pub enum Error {
    /// Parsing or mapping failure.
    De(DeError),
    /// I/O failure while writing.
    Io(std::io::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::De(e) => write!(f, "{e}"),
            Error::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::De(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// `Result` alias matching the real crate's shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Where rendered JSON bytes go. Implemented for `String` (the classic
/// `to_string` path) and for a buffering adapter over any `io::Write`
/// (the streaming `to_writer` path, which never materializes the full
/// document in memory). Every implementation must produce byte-identical
/// output for the same value tree — checksums are computed over renderings.
trait Sink {
    fn put_str(&mut self, s: &str);
    fn put_char(&mut self, c: char);
}

impl Sink for String {
    fn put_str(&mut self, s: &str) {
        self.push_str(s);
    }
    fn put_char(&mut self, c: char) {
        self.push(c);
    }
}

/// Streaming sink over an `io::Write`. The first I/O error is latched and
/// rendering continues as a no-op; the caller surfaces it at the end (value
/// trees are rendered infallibly, so there is nothing to unwind mid-tree).
struct IoSink<W: Write> {
    w: W,
    err: Option<std::io::Error>,
}

impl<W: Write> Sink for IoSink<W> {
    fn put_str(&mut self, s: &str) {
        if self.err.is_none() {
            if let Err(e) = self.w.write_all(s.as_bytes()) {
                self.err = Some(e);
            }
        }
    }
    fn put_char(&mut self, c: char) {
        let mut buf = [0u8; 4];
        self.put_str(c.encode_utf8(&mut buf));
    }
}

fn escape_into<S: Sink>(s: &str, out: &mut S) {
    out.put_char('"');
    for c in s.chars() {
        match c {
            '"' => out.put_str("\\\""),
            '\\' => out.put_str("\\\\"),
            '\n' => out.put_str("\\n"),
            '\r' => out.put_str("\\r"),
            '\t' => out.put_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.put_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.put_char(c),
        }
    }
    out.put_char('"');
}

/// Formats a `u64` into a stack buffer — snapshot columns render millions
/// of integers, and `n.to_string()` would allocate for every one.
fn put_u64<S: Sink>(mut n: u64, out: &mut S) {
    let mut buf = [0u8; 20];
    let mut at = buf.len();
    loop {
        at -= 1;
        buf[at] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.put_str(std::str::from_utf8(&buf[at..]).expect("ascii digits"));
}

fn write_f64<S: Sink>(f: f64, out: &mut S) {
    if f.is_finite() {
        let s = format!("{f}");
        out.put_str(&s);
        // Keep float identity through a parse round-trip.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.put_str(".0");
        }
    } else {
        // JSON has no Infinity/NaN; encode as null like the real crate.
        out.put_str("null");
    }
}

fn render<S: Sink>(v: &Value, pretty: bool, indent: usize, out: &mut S) {
    let pad = |n: usize, out: &mut S| {
        if pretty {
            out.put_char('\n');
            for _ in 0..n {
                out.put_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.put_str("null"),
        Value::Bool(b) => out.put_str(if *b { "true" } else { "false" }),
        Value::U64(n) => put_u64(*n, out),
        Value::I64(n) => out.put_str(&n.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            out.put_char('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.put_char(',');
                }
                pad(indent + 1, out);
                render(item, pretty, indent + 1, out);
            }
            if !items.is_empty() {
                pad(indent, out);
            }
            out.put_char(']');
        }
        // Byte-identical to the equivalent `Array` of `U64` entries — the
        // packed column is a storage representation, not a format change.
        Value::U64Col(col) => {
            out.put_char('[');
            for (i, n) in col.iter().enumerate() {
                if i > 0 {
                    out.put_char(',');
                }
                pad(indent + 1, out);
                put_u64(*n, out);
            }
            if !col.is_empty() {
                pad(indent, out);
            }
            out.put_char(']');
        }
        Value::Object(entries) => {
            out.put_char('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.put_char(',');
                }
                pad(indent + 1, out);
                escape_into(k, out);
                out.put_char(':');
                if pretty {
                    out.put_char(' ');
                }
                render(val, pretty, indent + 1, out);
            }
            if !entries.is_empty() {
                pad(indent, out);
            }
            out.put_char('}');
        }
    }
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), false, 0, &mut out);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), true, 0, &mut out);
    Ok(out)
}

/// Serializes a value as compact JSON directly into a writer — the
/// document is streamed out piecewise, never materialized as one string
/// (pair with `std::io::BufWriter` for file targets).
pub fn to_writer<W: Write, T: Serialize + ?Sized>(w: W, value: &T) -> Result<()> {
    let mut sink = IoSink { w, err: None };
    render(&value.to_value(), false, 0, &mut sink);
    match sink.err {
        Some(e) => Err(Error::Io(e)),
        None => Ok(()),
    }
}

/// Serializes a value as pretty JSON into a writer (streaming, like
/// [`to_writer`]).
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(w: W, value: &T) -> Result<()> {
    let mut sink = IoSink { w, err: None };
    render(&value.to_value(), true, 0, &mut sink);
    match sink.err {
        Some(e) => Err(Error::Io(e)),
        None => Ok(()),
    }
}

/// Parses a JSON string into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(DeError::custom("trailing characters after JSON value").into());
    }
    Ok(T::from_value(&v)?)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::custom(format!("expected `{}` at byte {}", b as char, self.pos)).into())
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => {
                Err(DeError::custom(format!("unexpected byte {other:?} at {}", self.pos)).into())
            }
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(DeError::custom(format!("invalid literal at byte {}", self.pos)).into())
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(DeError::custom("unterminated string").into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(DeError::custom("unterminated escape").into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(DeError::custom("truncated \\u escape").into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| DeError::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| DeError::custom("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(DeError::custom(format!(
                                "unknown escape \\{}",
                                other as char
                            ))
                            .into())
                        }
                    }
                }
                b => {
                    // Re-assemble UTF-8 multibyte sequences.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let end = (start + width).min(self.bytes.len());
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| DeError::custom("invalid UTF-8 in string"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::custom("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| DeError::custom(format!("invalid number `{text}`")).into())
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(DeError::custom("expected `,` or `]`").into()),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(DeError::custom("expected `,` or `}`").into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(u64::MAX)),
            ("b".into(), Value::F64(1.5)),
            (
                "c".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("s".into(), Value::Str("x \"y\"\n".into())),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Array(vec![Value::U64(1), Value::Object(vec![])]);
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_keep_identity() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, 2.0);
    }
}
