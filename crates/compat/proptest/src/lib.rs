//! In-tree stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the `proptest!` macro over
//! `name in strategy` arguments, range strategies for the numeric types,
//! `proptest::collection::vec`, `proptest::bool::ANY`,
//! `ProptestConfig::with_cases`, and the `prop_assert*` macros. Cases are
//! generated from a deterministic per-test seed; there is no shrinking —
//! a failing case panics with the case index so it can be replayed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default number of cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// Subset of proptest's configuration: the case count.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-test random source.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Derives a generator from the test name and case index.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ ((case as u64) << 32 | case as u64),
        ))
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A value generator.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}

impl_range_strategy!(u16, u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// A strategy that yields a constant.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform boolean strategy instance.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Size specification for [`vec`]: a fixed length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` values with lengths drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The names tests import with `use proptest::prelude::*`.
pub mod prelude {
    /// Module alias so `proptest::collection::vec` resolves inside the
    /// macro body as well.
    pub use crate as proptest;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Property-test entry macro.
///
/// Runs each property for a number of deterministic cases (default
/// [`DEFAULT_CASES`]; override with `#![proptest_config(...)]`). Failures
/// panic with the case index. No shrinking.
#[macro_export]
macro_rules! proptest {
    (@cases $cases:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases: u32 = $cases;
                for case in 0..cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    let run = || -> () { $body };
                    run();
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cases ($cfg).cases; $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cases $crate::DEFAULT_CASES; $($rest)*);
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_sample_in_bounds(x in 5u64..100, f in -1.0f64..1.0) {
            prop_assert!((5..100).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_spec(xs in proptest::collection::vec(0u32..10, 3..7)) {
            prop_assert!((3..7).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&v| v < 10));
        }

        #[test]
        fn fixed_len_vec(xs in proptest::collection::vec(0.0f64..1.0, 5)) {
            prop_assert_eq!(xs.len(), 5);
        }

        #[test]
        fn open_range(mask in 1u64..) {
            prop_assert!(mask >= 1);
        }
    }

    #[test]
    fn deterministic_cases() {
        let mut a = crate::TestRng::for_case("t", 0);
        let mut b = crate::TestRng::for_case("t", 0);
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
