//! Pareto dominance over minimized objective vectors.

/// `true` when `a` Pareto-dominates `b`: `a` is no worse in every objective
/// and strictly better in at least one. All objectives are minimized.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b.iter()) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Extracts the non-dominated subset of `objectives` (indices into the
/// input). Quadratic — used on small candidate sets and as the reference
/// implementation the fast sort is property-tested against.
pub fn pareto_front_indices(objectives: &[Vec<f64>]) -> Vec<usize> {
    (0..objectives.len())
        .filter(|&i| {
            !objectives
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && dominates(other, &objectives[i]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basics() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0])); // trade-off
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0])); // equal
        assert!(!dominates(&[2.0, 2.0], &[1.0, 1.0]));
    }

    #[test]
    fn front_extraction() {
        let objs = vec![
            vec![1.0, 4.0], // front
            vec![2.0, 3.0], // front
            vec![3.0, 3.0], // dominated by [2,3]
            vec![4.0, 1.0], // front
            vec![4.0, 4.0], // dominated
        ];
        assert_eq!(pareto_front_indices(&objs), vec![0, 1, 3]);
    }

    #[test]
    fn identical_points_all_on_front() {
        let objs = vec![vec![1.0, 1.0]; 3];
        assert_eq!(pareto_front_indices(&objs), vec![0, 1, 2]);
    }

    #[test]
    fn empty_input() {
        assert!(pareto_front_indices(&[]).is_empty());
    }
}
