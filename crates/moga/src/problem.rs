//! The multi-objective problem interface.

use spot_subspace::Subspace;

/// A multi-objective minimization problem over the subspace lattice.
///
/// SPOT's concrete problem ("how sparse do the target points look in
/// subspace `s`?") lives in the `spot` crate, built on the training
/// evaluator; this trait keeps the genetic machinery independent of the
/// synopsis layer. All objectives are **minimized**.
pub trait SubspaceProblem {
    /// Dimensionality ϕ of the data (chromosomes use bits `0..phi`).
    fn phi(&self) -> usize;

    /// Number of objectives produced by [`SubspaceProblem::evaluate`].
    fn num_objectives(&self) -> usize;

    /// Objective vector of a candidate subspace (all minimized).
    fn evaluate(&mut self, s: Subspace) -> Vec<f64>;

    /// Optional cap on chromosome cardinality (number of participating
    /// attributes). `None` leaves the search free up to ϕ.
    fn max_cardinality(&self) -> Option<usize> {
        None
    }
}

/// Test/benchmark problem: minimize the Hamming distance to a hidden target
/// mask and the cardinality. The Pareto front interpolates between "small
/// subspace" and "the target subspace", with the target itself always on
/// the front — handy for verifying convergence.
#[derive(Debug, Clone)]
pub struct HiddenTargetProblem {
    phi: usize,
    target: Subspace,
    /// Number of `evaluate` calls, for effort accounting in tests.
    pub evaluations: usize,
}

impl HiddenTargetProblem {
    /// Creates the problem for a given hidden target.
    pub fn new(phi: usize, target: Subspace) -> Self {
        HiddenTargetProblem {
            phi,
            target,
            evaluations: 0,
        }
    }
}

impl SubspaceProblem for HiddenTargetProblem {
    fn phi(&self) -> usize {
        self.phi
    }

    fn num_objectives(&self) -> usize {
        2
    }

    fn evaluate(&mut self, s: Subspace) -> Vec<f64> {
        self.evaluations += 1;
        let hamming = (s.mask() ^ self.target.mask()).count_ones() as f64;
        vec![hamming, s.cardinality() as f64 / self.phi as f64]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hidden_target_scores_target_best() {
        let target = Subspace::from_dims([1, 3]).unwrap();
        let mut p = HiddenTargetProblem::new(8, target);
        let at_target = p.evaluate(target);
        let off = p.evaluate(Subspace::from_dims([0, 2]).unwrap());
        assert_eq!(at_target[0], 0.0);
        assert!(off[0] > 0.0);
        assert_eq!(p.evaluations, 2);
    }
}
