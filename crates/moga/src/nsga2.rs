//! NSGA-II over subspace chromosomes.
//!
//! The paper's MOGA searches the space lattice for subspaces that optimize
//! several sparsity criteria at once (RD and IRSD of the target points'
//! cells). This module implements the standard NSGA-II machinery (Deb et
//! al. 2002): fast non-dominated sorting, crowding-distance diversity,
//! binary tournament selection and (μ+λ) elitist replacement, with the
//! chromosome-level variation operators from `spot-subspace`.

use crate::dominance::dominates;
use crate::problem::SubspaceProblem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spot_subspace::{genetic, Subspace};
use spot_types::{FxHashMap, Result, SpotError};

/// NSGA-II tuning knobs.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct MogaConfig {
    /// Population size μ (≥ 4, even).
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Probability that a child is produced by crossover (otherwise it is a
    /// mutated clone of one parent).
    pub crossover_rate: f64,
    /// Per-bit mutation probability applied to every child.
    pub mutation_rate: f64,
    /// RNG seed — fixed seeds make learning reproducible.
    pub seed: u64,
}

impl Default for MogaConfig {
    fn default() -> Self {
        MogaConfig {
            population: 40,
            generations: 30,
            crossover_rate: 0.9,
            mutation_rate: 0.05,
            seed: 0xC0FFEE,
        }
    }
}

impl MogaConfig {
    fn validate(&self) -> Result<()> {
        if self.population < 4 {
            return Err(SpotError::InvalidConfig(
                "MOGA population must be at least 4".into(),
            ));
        }
        if self.generations == 0 {
            return Err(SpotError::InvalidConfig(
                "MOGA needs at least one generation".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.crossover_rate) {
            return Err(SpotError::InvalidConfig(
                "crossover rate must be in [0,1]".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.mutation_rate) {
            return Err(SpotError::InvalidConfig(
                "mutation rate must be in [0,1]".into(),
            ));
        }
        Ok(())
    }
}

/// One evaluated chromosome.
#[derive(Debug, Clone)]
pub struct Individual {
    /// The subspace encoded by the chromosome.
    pub subspace: Subspace,
    /// Objective vector (minimized).
    pub objectives: Vec<f64>,
    /// Non-domination rank (0 = Pareto front).
    pub rank: usize,
    /// Crowding distance within its rank (∞ at the boundary).
    pub crowding: f64,
}

/// Convergence snapshot taken after each generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationStats {
    /// Generation index (0 = initial population).
    pub generation: usize,
    /// Archive size after this generation.
    pub archive_size: usize,
    /// Hypervolume of the archive w.r.t. the reference point `1.1` per
    /// objective (objectives are normalized into `[0,1]` by SPOT's
    /// problems). `None` when the problem has more than 3 objectives.
    pub hypervolume: Option<f64>,
    /// Best (lowest) equal-weight objective sum seen so far.
    pub best_scalar: f64,
}

/// Result of one MOGA run.
#[derive(Debug, Clone)]
pub struct MogaOutcome {
    /// Final population, best rank first.
    pub population: Vec<Individual>,
    /// Deduplicated Pareto archive accumulated over all generations.
    pub archive: Vec<Individual>,
    /// Distinct subspaces evaluated (memoized evaluation count).
    pub evaluations: usize,
    /// Per-generation convergence history (experiment E6's learning curve).
    pub history: Vec<GenerationStats>,
}

impl MogaOutcome {
    /// The top `k` archive subspaces ranked by weighted objective sum
    /// (equal weights). This is how SPOT extracts "top sparse subspaces"
    /// from a Pareto set.
    pub fn top_k(&self, k: usize) -> Vec<(Subspace, f64)> {
        let mut scored: Vec<(Subspace, f64)> = self
            .archive
            .iter()
            .map(|ind| (ind.subspace, ind.objectives.iter().sum::<f64>()))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("objective sums are not NaN"));
        scored.truncate(k);
        scored
    }
}

/// Runs NSGA-II on `problem`. Evaluations are memoized per subspace mask, so
/// the effort is bounded by the number of *distinct* chromosomes visited.
pub fn run<P: SubspaceProblem>(problem: &mut P, config: &MogaConfig) -> Result<MogaOutcome> {
    config.validate()?;
    let phi = problem.phi();
    if phi == 0 || phi > spot_subspace::subspace::MAX_DIMS {
        return Err(SpotError::TooManyDimensions(phi));
    }
    let max_card = problem.max_cardinality().unwrap_or(phi).clamp(1, phi);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut cache: FxHashMap<u64, Vec<f64>> = FxHashMap::default();

    let evaluate = |s: Subspace, problem: &mut P, cache: &mut FxHashMap<u64, Vec<f64>>| {
        cache
            .entry(s.mask())
            .or_insert_with(|| problem.evaluate(s))
            .clone()
    };

    // Initial population: random subspaces up to the cardinality cap.
    let mut pop: Vec<Individual> = (0..config.population)
        .map(|_| {
            let s = genetic::random_subspace(phi, max_card, &mut rng);
            Individual {
                subspace: s,
                objectives: evaluate(s, problem, &mut cache),
                rank: 0,
                crowding: 0.0,
            }
        })
        .collect();
    assign_rank_and_crowding(&mut pop);

    let mut archive: Vec<Individual> = Vec::new();
    absorb_into_archive(&mut archive, &pop);
    let mut history: Vec<GenerationStats> = Vec::with_capacity(config.generations + 1);
    history.push(snapshot(0, &archive));

    for generation in 0..config.generations {
        // Variation: binary tournaments pick parents; crossover + mutation
        // produce λ = μ children.
        let mut children: Vec<Individual> = Vec::with_capacity(config.population);
        while children.len() < config.population {
            let a = tournament(&pop, &mut rng);
            let b = tournament(&pop, &mut rng);
            let mut child = if rng.gen_bool(config.crossover_rate) {
                genetic::uniform_crossover(a.subspace, b.subspace, phi, &mut rng)
            } else {
                a.subspace
            };
            child = genetic::mutate(child, phi, config.mutation_rate, &mut rng);
            let child = genetic::repair_with_max_card(child.mask(), phi, max_card, &mut rng);
            children.push(Individual {
                subspace: child,
                objectives: evaluate(child, problem, &mut cache),
                rank: 0,
                crowding: 0.0,
            });
        }
        // (μ+λ) elitist replacement.
        pop.append(&mut children);
        assign_rank_and_crowding(&mut pop);
        pop.sort_by(|x, y| {
            x.rank.cmp(&y.rank).then(
                y.crowding
                    .partial_cmp(&x.crowding)
                    .expect("crowding is not NaN"),
            )
        });
        pop.truncate(config.population);
        absorb_into_archive(&mut archive, &pop);
        history.push(snapshot(generation + 1, &archive));
    }

    pop.sort_by(|x, y| {
        x.rank.cmp(&y.rank).then(
            y.crowding
                .partial_cmp(&x.crowding)
                .expect("crowding is not NaN"),
        )
    });
    let evaluations = cache.len();
    Ok(MogaOutcome {
        population: pop,
        archive,
        evaluations,
        history,
    })
}

/// Convergence snapshot of the current archive.
fn snapshot(generation: usize, archive: &[Individual]) -> GenerationStats {
    let best_scalar = archive
        .iter()
        .map(|i| i.objectives.iter().sum::<f64>())
        .fold(f64::INFINITY, f64::min);
    let m = archive.first().map_or(0, |i| i.objectives.len());
    let hypervolume = (m == 2 || m == 3).then(|| {
        let front: Vec<Vec<f64>> = archive.iter().map(|i| i.objectives.clone()).collect();
        let reference = vec![1.1; m];
        crate::hypervolume::hypervolume(&front, &reference)
    });
    GenerationStats {
        generation,
        archive_size: archive.len(),
        hypervolume,
        best_scalar,
    }
}

/// Binary tournament by (rank, crowding).
fn tournament<'a, R: Rng>(pop: &'a [Individual], rng: &mut R) -> &'a Individual {
    let a = &pop[rng.gen_range(0..pop.len())];
    let b = &pop[rng.gen_range(0..pop.len())];
    if (a.rank, std::cmp::Reverse(ordered(a.crowding)))
        <= (b.rank, std::cmp::Reverse(ordered(b.crowding)))
    {
        a
    } else {
        b
    }
}

/// Total order helper for f64 crowding values (no NaNs by construction).
fn ordered(x: f64) -> std::cmp::Ordering {
    x.partial_cmp(&0.0).expect("crowding is not NaN")
}

/// Deb's fast non-dominated sort + crowding distance, in place.
pub fn assign_rank_and_crowding(pop: &mut [Individual]) {
    let n = pop.len();
    if n == 0 {
        return;
    }
    // Fast non-dominated sort.
    let mut dominated_by: Vec<usize> = vec![0; n]; // count of dominators
    let mut dominates_list: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if dominates(&pop[i].objectives, &pop[j].objectives) {
                dominates_list[i].push(j);
                dominated_by[j] += 1;
            } else if dominates(&pop[j].objectives, &pop[i].objectives) {
                dominates_list[j].push(i);
                dominated_by[i] += 1;
            }
        }
    }
    let mut current: Vec<usize> = (0..n).filter(|&i| dominated_by[i] == 0).collect();
    let mut rank = 0;
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    while !current.is_empty() {
        for &i in &current {
            pop[i].rank = rank;
        }
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominates_list[i] {
                dominated_by[j] -= 1;
                if dominated_by[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(std::mem::take(&mut current));
        current = next;
        rank += 1;
    }
    // Crowding distance per front.
    let m = pop[0].objectives.len();
    for front in &fronts {
        for &i in front {
            pop[i].crowding = 0.0;
        }
        if front.len() <= 2 {
            for &i in front {
                pop[i].crowding = f64::INFINITY;
            }
            continue;
        }
        for obj in 0..m {
            let mut order: Vec<usize> = front.clone();
            order.sort_by(|&a, &b| {
                pop[a].objectives[obj]
                    .partial_cmp(&pop[b].objectives[obj])
                    .expect("objectives are not NaN")
            });
            let lo = pop[order[0]].objectives[obj];
            let hi = pop[*order.last().expect("front non-empty")].objectives[obj];
            pop[order[0]].crowding = f64::INFINITY;
            pop[*order.last().expect("front non-empty")].crowding = f64::INFINITY;
            let span = hi - lo;
            if span <= f64::EPSILON {
                continue;
            }
            for w in order.windows(3) {
                let (prev, mid, next) = (w[0], w[1], w[2]);
                if pop[mid].crowding.is_finite() {
                    pop[mid].crowding +=
                        (pop[next].objectives[obj] - pop[prev].objectives[obj]) / span;
                }
            }
        }
    }
}

/// Merges the Pareto-rank-0 members of `pop` into `archive`, keeping the
/// archive itself non-dominated and deduplicated.
fn absorb_into_archive(archive: &mut Vec<Individual>, pop: &[Individual]) {
    for ind in pop.iter().filter(|i| i.rank == 0) {
        if archive.iter().any(|a| a.subspace == ind.subspace) {
            continue;
        }
        if archive
            .iter()
            .any(|a| dominates(&a.objectives, &ind.objectives))
        {
            continue;
        }
        archive.retain(|a| !dominates(&ind.objectives, &a.objectives));
        archive.push(ind.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::pareto_front_indices;
    use crate::problem::HiddenTargetProblem;
    use proptest::prelude::*;

    fn individual(objs: Vec<f64>) -> Individual {
        Individual {
            subspace: Subspace::from_mask(1).unwrap(),
            objectives: objs,
            rank: usize::MAX,
            crowding: -1.0,
        }
    }

    #[test]
    fn rank_zero_matches_naive_front() {
        let objs = vec![
            vec![1.0, 4.0],
            vec![2.0, 3.0],
            vec![3.0, 3.0],
            vec![4.0, 1.0],
            vec![4.0, 4.0],
        ];
        let mut pop: Vec<Individual> = objs.iter().cloned().map(individual).collect();
        assign_rank_and_crowding(&mut pop);
        let rank0: Vec<usize> = (0..pop.len()).filter(|&i| pop[i].rank == 0).collect();
        assert_eq!(rank0, pareto_front_indices(&objs));
        // Dominated points have strictly higher rank.
        assert!(pop[2].rank > 0);
        assert!(pop[4].rank > 0);
    }

    #[test]
    fn boundary_crowding_is_infinite() {
        let mut pop: Vec<Individual> = vec![
            individual(vec![1.0, 5.0]),
            individual(vec![2.0, 4.0]),
            individual(vec![3.0, 3.0]),
            individual(vec![4.0, 2.0]),
            individual(vec![5.0, 1.0]),
        ];
        assign_rank_and_crowding(&mut pop);
        assert!(pop[0].crowding.is_infinite());
        assert!(pop[4].crowding.is_infinite());
        assert!(pop[2].crowding.is_finite());
        assert!(pop[2].crowding > 0.0);
    }

    #[test]
    fn moga_finds_hidden_target() {
        let target = Subspace::from_dims([2, 5, 9]).unwrap();
        let mut problem = HiddenTargetProblem::new(12, target);
        let config = MogaConfig {
            population: 40,
            generations: 40,
            ..Default::default()
        };
        let out = run(&mut problem, &config).unwrap();
        // The target has Hamming distance 0 — it must be in the archive.
        assert!(
            out.archive.iter().any(|i| i.subspace == target),
            "archive missed the target; archive size {}",
            out.archive.len()
        );
        // Memoization bounds evaluations by distinct chromosomes.
        assert!(out.evaluations <= 40 * 41);
    }

    #[test]
    fn moga_is_deterministic_for_fixed_seed() {
        let target = Subspace::from_dims([1, 4]).unwrap();
        let run_once = || {
            let mut p = HiddenTargetProblem::new(10, target);
            let cfg = MogaConfig {
                seed: 7,
                ..Default::default()
            };
            run(&mut p, &cfg)
                .unwrap()
                .top_k(5)
                .into_iter()
                .map(|(s, _)| s.mask())
                .collect::<Vec<_>>()
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn config_validation() {
        let mut p = HiddenTargetProblem::new(8, Subspace::from_mask(1).unwrap());
        assert!(run(
            &mut p,
            &MogaConfig {
                population: 2,
                ..Default::default()
            }
        )
        .is_err());
        assert!(run(
            &mut p,
            &MogaConfig {
                generations: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(run(
            &mut p,
            &MogaConfig {
                crossover_rate: 1.5,
                ..Default::default()
            }
        )
        .is_err());
        assert!(run(
            &mut p,
            &MogaConfig {
                mutation_rate: -0.1,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn archive_is_mutually_non_dominated() {
        let target = Subspace::from_dims([0, 3, 6]).unwrap();
        let mut p = HiddenTargetProblem::new(10, target);
        let out = run(&mut p, &MogaConfig::default()).unwrap();
        for a in &out.archive {
            for b in &out.archive {
                assert!(
                    !dominates(&a.objectives, &b.objectives) || a.subspace == b.subspace,
                    "archive contains dominated member"
                );
            }
        }
    }

    #[test]
    fn top_k_orders_by_objective_sum() {
        let target = Subspace::from_dims([0, 1]).unwrap();
        let mut p = HiddenTargetProblem::new(8, target);
        let out = run(&mut p, &MogaConfig::default()).unwrap();
        let top = out.top_k(4);
        for w in top.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn history_tracks_convergence() {
        let target = Subspace::from_dims([1, 4, 6]).unwrap();
        let mut p = HiddenTargetProblem::new(10, target);
        let cfg = MogaConfig {
            generations: 25,
            ..Default::default()
        };
        let out = run(&mut p, &cfg).unwrap();
        assert_eq!(out.history.len(), 26); // initial + one per generation
                                           // Best scalar objective never worsens (elitist archive).
        for w in out.history.windows(2) {
            assert!(w[1].best_scalar <= w[0].best_scalar + 1e-12);
            assert_eq!(w[1].generation, w[0].generation + 1);
        }
        // Hypervolume is reported for the 2-objective problem.
        assert!(out.history.iter().all(|h| h.hypervolume.is_some()));
    }

    #[test]
    fn respects_max_cardinality() {
        struct Capped(HiddenTargetProblem);
        impl SubspaceProblem for Capped {
            fn phi(&self) -> usize {
                self.0.phi()
            }
            fn num_objectives(&self) -> usize {
                self.0.num_objectives()
            }
            fn evaluate(&mut self, s: Subspace) -> Vec<f64> {
                self.0.evaluate(s)
            }
            fn max_cardinality(&self) -> Option<usize> {
                Some(3)
            }
        }
        let mut p = Capped(HiddenTargetProblem::new(
            16,
            Subspace::from_dims([1, 2]).unwrap(),
        ));
        let out = run(&mut p, &MogaConfig::default()).unwrap();
        assert!(out.population.iter().all(|i| i.subspace.cardinality() <= 3));
        assert!(out.archive.iter().all(|i| i.subspace.cardinality() <= 3));
    }

    proptest! {
        #[test]
        fn fast_sort_rank0_equals_naive_front(
            objs in proptest::collection::vec(
                proptest::collection::vec(0.0f64..10.0, 2..4usize), 1..30
            )
        ) {
            // Pad all vectors to the same length.
            let m = objs.iter().map(Vec::len).min().unwrap();
            let objs: Vec<Vec<f64>> = objs.into_iter().map(|mut v| { v.truncate(m); v }).collect();
            let mut pop: Vec<Individual> = objs.iter().cloned().map(individual).collect();
            assign_rank_and_crowding(&mut pop);
            let rank0: Vec<usize> = (0..pop.len()).filter(|&i| pop[i].rank == 0).collect();
            prop_assert_eq!(rank0, pareto_front_indices(&objs));
        }

        #[test]
        fn every_individual_gets_a_rank(
            objs in proptest::collection::vec(
                proptest::collection::vec(0.0f64..5.0, 2), 1..40
            )
        ) {
            let mut pop: Vec<Individual> = objs.iter().cloned().map(individual).collect();
            assign_rank_and_crowding(&mut pop);
            prop_assert!(pop.iter().all(|i| i.rank != usize::MAX));
            prop_assert!(pop.iter().all(|i| i.crowding >= 0.0));
        }
    }
}
