//! Hypervolume indicator for Pareto fronts (minimization).
//!
//! The hypervolume of a front is the measure of the objective-space region
//! dominated by the front and bounded by a reference point — the standard
//! scalar summary of multi-objective convergence *and* diversity. E6 uses
//! it to show MOGA's front quality approaching the exhaustive front's over
//! generations.
//!
//! Implemented exactly for 2 objectives (sweep) and by inclusion-exclusion
//! over the dominated boxes for 3 objectives (WFG-style slicing would be
//! faster; fronts here are tiny, so clarity wins).

/// Hypervolume of a 2-objective front w.r.t. `reference` (both minimized;
/// points not strictly dominating the reference contribute nothing).
pub fn hypervolume_2d(front: &[Vec<f64>], reference: &[f64; 2]) -> f64 {
    let mut pts: Vec<(f64, f64)> = front
        .iter()
        .filter(|p| p[0] < reference[0] && p[1] < reference[1])
        .map(|p| (p[0], p[1]))
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    // Sort by first objective ascending; sweep keeping the best (lowest)
    // second objective seen so far.
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("objectives are not NaN"));
    hypervolume_2d_sweep(&pts, reference)
}

/// Canonical 2-d sweep: ascending in x, each point contributes
/// `(ref_x − x) · (y_prev − y)` where `y_prev` is the best y of all points
/// with smaller x (starting at `ref_y`).
fn hypervolume_2d_sweep(sorted: &[(f64, f64)], reference: &[f64; 2]) -> f64 {
    let mut volume = 0.0;
    let mut best_y = reference[1];
    for &(x, y) in sorted {
        if y < best_y {
            volume += (reference[0] - x) * (best_y - y);
            best_y = y;
        }
    }
    volume
}

/// Hypervolume for 2 or 3 objectives. For 3 objectives, slices along the
/// third objective: sort by `z`, and between consecutive `z` values the
/// dominated area is the 2-d hypervolume of the points with smaller-or-equal
/// `z`.
pub fn hypervolume(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    match reference.len() {
        2 => hypervolume_2d(front, &[reference[0], reference[1]]),
        3 => {
            let mut pts: Vec<&Vec<f64>> = front
                .iter()
                .filter(|p| p.iter().zip(reference).all(|(a, r)| a < r))
                .collect();
            if pts.is_empty() {
                return 0.0;
            }
            pts.sort_by(|a, b| a[2].partial_cmp(&b[2]).expect("objectives are not NaN"));
            let mut volume = 0.0;
            let mut active: Vec<(f64, f64)> = Vec::new();
            for (i, p) in pts.iter().enumerate() {
                // Depth of this slice along z.
                let z_hi = if i + 1 < pts.len() {
                    pts[i + 1][2]
                } else {
                    reference[2]
                };
                active.push((p[0], p[1]));
                let mut slice: Vec<(f64, f64)> = active.clone();
                slice.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("objectives are not NaN"));
                let area = hypervolume_2d_sweep(&slice, &[reference[0], reference[1]]);
                volume += area * (z_hi - p[2]);
            }
            volume
        }
        m => panic!("hypervolume implemented for 2 or 3 objectives, got {m}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_2d() {
        let front = vec![vec![0.25, 0.5]];
        let hv = hypervolume(&front, &[1.0, 1.0]);
        assert!((hv - 0.75 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn two_nondominated_points_2d() {
        // Points (0.2, 0.8) and (0.6, 0.3) vs ref (1,1):
        // sweep: (1-0.2)*(1-0.8)=0.16; then (1-0.6)*(0.8-0.3)=0.2 → 0.36.
        let front = vec![vec![0.2, 0.8], vec![0.6, 0.3]];
        let hv = hypervolume(&front, &[1.0, 1.0]);
        assert!((hv - 0.36).abs() < 1e-12, "hv={hv}");
    }

    #[test]
    fn dominated_point_adds_nothing() {
        let base = vec![vec![0.2, 0.2]];
        let with_dominated = vec![vec![0.2, 0.2], vec![0.5, 0.5]];
        let r = [1.0, 1.0];
        assert!((hypervolume(&base, &r) - hypervolume(&with_dominated, &r)).abs() < 1e-12);
    }

    #[test]
    fn out_of_reference_ignored() {
        let front = vec![vec![2.0, 0.1]];
        assert_eq!(hypervolume(&front, &[1.0, 1.0]), 0.0);
        assert_eq!(hypervolume(&[], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn better_front_has_larger_hv() {
        let weak = vec![vec![0.5, 0.5]];
        let strong = vec![vec![0.3, 0.3]];
        let r = [1.0, 1.0];
        assert!(hypervolume(&strong, &r) > hypervolume(&weak, &r));
    }

    #[test]
    fn single_point_3d() {
        let front = vec![vec![0.5, 0.5, 0.5]];
        let hv = hypervolume(&front, &[1.0, 1.0, 1.0]);
        assert!((hv - 0.125).abs() < 1e-12);
    }

    #[test]
    fn two_points_3d_matches_manual() {
        // p1=(0.2,0.8,0.1), p2=(0.6,0.3,0.5), ref=(1,1,1).
        // Slice z in [0.1,0.5): only p1 → area (0.8)(0.2)=0.16 → 0.064.
        // Slice z in [0.5,1): p1 ∪ p2 → area 0.16 + (0.4)(0.5)=0.36 → 0.18.
        let front = vec![vec![0.2, 0.8, 0.1], vec![0.6, 0.3, 0.5]];
        let hv = hypervolume(&front, &[1.0, 1.0, 1.0]);
        assert!((hv - (0.064 + 0.18)).abs() < 1e-12, "hv={hv}");
    }

    #[test]
    fn hv_monotone_in_added_nondominated_point_3d() {
        let a = vec![vec![0.4, 0.4, 0.4]];
        let mut b = a.clone();
        b.push(vec![0.1, 0.9, 0.9]);
        let r = [1.0, 1.0, 1.0];
        assert!(hypervolume(&b, &r) >= hypervolume(&a, &r) - 1e-12);
    }

    #[test]
    #[should_panic(expected = "2 or 3 objectives")]
    fn unsupported_dimension_panics() {
        hypervolume(&[vec![0.1; 4]], &[1.0; 4]);
    }
}
