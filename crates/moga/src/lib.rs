//! Multi-Objective Genetic Algorithm (MOGA) for SPOT.
//!
//! SPOT frames outlying-subspace search as multi-objective optimization:
//! find subspaces that simultaneously minimize the Relative Density and the
//! Inverse Relative Standard Deviation of the target points' projected
//! cells. Exhaustive lattice search is infeasible (the lattice has `2^ϕ−1`
//! members and the problem is NP-hard), so the paper employs a MOGA; this
//! crate implements it as NSGA-II (Deb et al. 2002) over the bitmask
//! chromosomes of `spot-subspace`.
//!
//! The crate is independent of the synopsis layer: concrete objective
//! functions implement [`SubspaceProblem`] (SPOT's sparsity objectives live
//! in the `spot` crate; `spot-baselines` provides an exhaustive reference
//! search used to validate MOGA's quality in experiment E6).

pub mod dominance;
pub mod hypervolume;
pub mod nsga2;
pub mod problem;

pub use dominance::{dominates, pareto_front_indices};
pub use hypervolume::hypervolume;
pub use nsga2::{
    assign_rank_and_crowding, run, GenerationStats, Individual, MogaConfig, MogaOutcome,
};
pub use problem::{HiddenTargetProblem, SubspaceProblem};
