//! Synthetic streams with planted projected outliers.
//!
//! The generator follows the paper's motivation: in high-dimensional
//! streams, outliers are "embedded in relatively low-dimensional subspaces"
//! — a projected outlier looks unremarkable in the full space because most
//! of its coordinates are drawn from the normal behaviour, but in its
//! *outlying subspace* it lands far away from every cluster's projection.
//!
//! Construction per stream:
//!
//! * `clusters` Gaussian clusters; cluster `c` is *tight* (small σ) in its
//!   own correlated subspace and broad elsewhere, so normal data already has
//!   subspace structure.
//! * Normal points sample a cluster, then each coordinate: tight Gaussian in
//!   the cluster's correlated dims, broad Gaussian elsewhere.
//! * Outliers copy a normal point but overwrite the dims of a randomly
//!   chosen *outlier subspace* with coordinates pushed into empty territory
//!   (far from every cluster center's projection). The subspace mask is
//!   recorded in the label.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spot_subspace::Subspace;
use spot_types::{AnomalyInfo, DataPoint, DomainBounds, Label, LabeledRecord, Result, SpotError};

/// Configuration of the synthetic stream.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Dimensionality ϕ (2..=64).
    pub dims: usize,
    /// Number of Gaussian clusters.
    pub clusters: usize,
    /// Dimensionality of each cluster's correlated subspace.
    pub cluster_subspace_dims: usize,
    /// Standard deviation inside the correlated dims.
    pub tight_sigma: f64,
    /// Standard deviation in the uncorrelated dims.
    pub broad_sigma: f64,
    /// Fraction of points that are planted projected outliers.
    pub outlier_fraction: f64,
    /// Dimensionality of each planted outlying subspace.
    pub outlier_subspace_dims: usize,
    /// How far (in multiples of `tight_sigma`) outliers are pushed away
    /// from the nearest cluster projection.
    pub outlier_displacement: f64,
    /// Range from which cluster centers are drawn per dimension. Shrinking
    /// or shifting it between two generators manufactures concept drift
    /// whose new clusters occupy previously empty territory.
    pub center_range: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            dims: 16,
            clusters: 4,
            cluster_subspace_dims: 4,
            tight_sigma: 0.02,
            broad_sigma: 0.06,
            outlier_fraction: 0.02,
            outlier_subspace_dims: 2,
            outlier_displacement: 10.0,
            center_range: (0.25, 0.75),
            seed: 42,
        }
    }
}

impl SyntheticConfig {
    fn validate(&self) -> Result<()> {
        if self.dims < 2 || self.dims > 64 {
            return Err(SpotError::InvalidConfig(format!(
                "dims must lie in 2..=64, got {}",
                self.dims
            )));
        }
        if self.clusters == 0 {
            return Err(SpotError::InvalidConfig("need at least one cluster".into()));
        }
        if self.cluster_subspace_dims == 0 || self.cluster_subspace_dims > self.dims {
            return Err(SpotError::InvalidConfig(
                "cluster subspace dims out of range".into(),
            ));
        }
        if self.outlier_subspace_dims == 0 || self.outlier_subspace_dims > self.dims {
            return Err(SpotError::InvalidConfig(
                "outlier subspace dims out of range".into(),
            ));
        }
        if !(0.0..=0.5).contains(&self.outlier_fraction) {
            return Err(SpotError::InvalidConfig(
                "outlier fraction must be in [0, 0.5]".into(),
            ));
        }
        if self.tight_sigma <= 0.0 || self.broad_sigma <= 0.0 {
            return Err(SpotError::InvalidConfig("sigmas must be positive".into()));
        }
        let (lo, hi) = self.center_range;
        if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo >= hi {
            return Err(SpotError::InvalidConfig(format!(
                "center range ({lo}, {hi}) must satisfy 0 <= lo < hi <= 1"
            )));
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct Cluster {
    center: Vec<f64>,
    /// Dims in which this cluster is tightly correlated.
    subspace: Subspace,
}

/// Seeded synthetic stream generator. Implements `Iterator` over
/// [`LabeledRecord`]s; unbounded (call `.take(n)` or [`generate`]).
///
/// [`generate`]: SyntheticGenerator::generate
#[derive(Debug, Clone)]
pub struct SyntheticGenerator {
    config: SyntheticConfig,
    clusters: Vec<Cluster>,
    /// Candidate outlying subspaces (fixed pool so ground truth repeats and
    /// SST learning has something systematic to find).
    outlier_subspaces: Vec<Subspace>,
    rng: StdRng,
    next_seq: u64,
}

impl SyntheticGenerator {
    /// Builds the generator (places clusters and the outlier-subspace pool).
    pub fn new(config: SyntheticConfig) -> Result<Self> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let clusters = (0..config.clusters)
            .map(|_| {
                // Keep centers away from the box boundary so broad noise
                // mostly stays in [0,1] (default range 0.25..0.75).
                let (lo, hi) = config.center_range;
                let center: Vec<f64> = (0..config.dims).map(|_| rng.gen_range(lo..hi)).collect();
                let subspace = spot_subspace::genetic::random_subspace(
                    config.dims,
                    config.cluster_subspace_dims,
                    &mut rng,
                );
                Cluster { center, subspace }
            })
            .collect();
        let pool_size = 3.min(config.dims / config.outlier_subspace_dims).max(1);
        let mut outlier_subspaces = Vec::with_capacity(pool_size);
        while outlier_subspaces.len() < pool_size {
            let s = exact_cardinality_subspace(config.dims, config.outlier_subspace_dims, &mut rng);
            if !outlier_subspaces.contains(&s) {
                outlier_subspaces.push(s);
            }
        }
        Ok(SyntheticGenerator {
            config,
            clusters,
            outlier_subspaces,
            rng,
            next_seq: 0,
        })
    }

    /// The configuration used.
    pub fn config(&self) -> &SyntheticConfig {
        &self.config
    }

    /// Domain bounds the stream is (softly) confined to.
    pub fn bounds(&self) -> DomainBounds {
        // Outlier displacement can exceed [0,1]; values are clamped in the
        // sampler, so the unit box is exact.
        DomainBounds::unit(self.config.dims)
    }

    /// The pool of planted outlying subspaces (ground truth for subspace-
    /// recovery metrics).
    pub fn outlier_subspace_pool(&self) -> &[Subspace] {
        &self.outlier_subspaces
    }

    /// Draws `n` labeled records.
    pub fn generate(&mut self, n: usize) -> Vec<LabeledRecord> {
        (0..n).map(|_| self.next_record()).collect()
    }

    /// Draws `n` *normal-only* points (training data for the unsupervised
    /// learning stage — the paper assumes a historical batch).
    pub fn generate_normal(&mut self, n: usize) -> Vec<DataPoint> {
        (0..n).map(|_| self.sample_normal()).collect()
    }

    fn next_record(&mut self) -> LabeledRecord {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.rng.gen_bool(self.config.outlier_fraction) {
            let (point, subspace) = self.sample_outlier();
            let info = AnomalyInfo::with_subspace("projected", subspace.mask());
            LabeledRecord::new(seq, point, Label::Anomaly(info))
        } else {
            LabeledRecord::new(seq, self.sample_normal(), Label::Normal)
        }
    }

    fn sample_normal(&mut self) -> DataPoint {
        let c = self.rng.gen_range(0..self.clusters.len());
        let cluster = self.clusters[c].clone();
        let mut vals = Vec::with_capacity(self.config.dims);
        for d in 0..self.config.dims {
            let sigma = if cluster.subspace.contains_dim(d) {
                self.config.tight_sigma
            } else {
                self.config.broad_sigma
            };
            let v = cluster.center[d] + gaussian(&mut self.rng) * sigma;
            vals.push(v.clamp(0.0, 1.0));
        }
        DataPoint::new(vals)
    }

    fn sample_outlier(&mut self) -> (DataPoint, Subspace) {
        let base = self.sample_normal();
        let which = self.rng.gen_range(0..self.outlier_subspaces.len());
        let subspace = self.outlier_subspaces[which];
        let mut vals = base.into_values();
        for d in subspace.dims() {
            vals[d] = self.displaced_coordinate(d);
        }
        (DataPoint::new(vals), subspace)
    }

    /// A coordinate for dimension `d` far from every cluster center's
    /// projection, by rejection sampling with a displacement fallback.
    fn displaced_coordinate(&mut self, d: usize) -> f64 {
        let min_gap = self.config.outlier_displacement * self.config.tight_sigma;
        for _ in 0..32 {
            let v = self.rng.gen_range(0.0..1.0);
            if self
                .clusters
                .iter()
                .all(|c| (v - c.center[d]).abs() >= min_gap)
            {
                return v;
            }
        }
        // Fallback: push beyond the extreme center.
        let extreme = self
            .clusters
            .iter()
            .map(|c| c.center[d])
            .fold(f64::NEG_INFINITY, f64::max);
        (extreme + min_gap).clamp(0.0, 1.0)
    }
}

impl Iterator for SyntheticGenerator {
    type Item = LabeledRecord;

    fn next(&mut self) -> Option<LabeledRecord> {
        Some(self.next_record())
    }
}

/// Standard normal via Box–Muller.
pub(crate) fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Random subspace with exactly `card` attributes.
pub(crate) fn exact_cardinality_subspace<R: Rng>(phi: usize, card: usize, rng: &mut R) -> Subspace {
    loop {
        let s = spot_subspace::genetic::random_subspace(phi, card, rng);
        if s.cardinality() == card {
            return s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator() -> SyntheticGenerator {
        SyntheticGenerator::new(SyntheticConfig::default()).unwrap()
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let bad = |f: fn(&mut SyntheticConfig)| {
            let mut c = SyntheticConfig::default();
            f(&mut c);
            SyntheticGenerator::new(c).is_err()
        };
        assert!(bad(|c| c.dims = 1));
        assert!(bad(|c| c.dims = 65));
        assert!(bad(|c| c.clusters = 0));
        assert!(bad(|c| c.outlier_fraction = 0.9));
        assert!(bad(|c| c.cluster_subspace_dims = 0));
        assert!(bad(|c| c.outlier_subspace_dims = 100));
        assert!(bad(|c| c.tight_sigma = 0.0));
        assert!(bad(|c| c.center_range = (0.7, 0.3)));
        assert!(bad(|c| c.center_range = (-0.1, 0.5)));
        assert!(bad(|c| c.center_range = (0.5, 1.2)));
    }

    #[test]
    fn center_range_confines_clusters() {
        let mut g = SyntheticGenerator::new(SyntheticConfig {
            center_range: (0.8, 0.95),
            broad_sigma: 0.01,
            tight_sigma: 0.005,
            outlier_fraction: 0.0,
            seed: 12,
            ..Default::default()
        })
        .unwrap();
        for p in g.generate_normal(300) {
            for &v in p.values() {
                assert!(v > 0.7, "value {v} escaped the shifted center range");
            }
        }
    }

    #[test]
    fn points_live_in_unit_box() {
        let mut g = generator();
        let bounds = g.bounds();
        for r in g.generate(500) {
            assert!(bounds.contains(&r.point), "{:?}", r.point);
        }
    }

    #[test]
    fn outlier_rate_approximates_config() {
        let mut g = SyntheticGenerator::new(SyntheticConfig {
            outlier_fraction: 0.1,
            seed: 7,
            ..Default::default()
        })
        .unwrap();
        let recs = g.generate(5000);
        let outliers = recs.iter().filter(|r| r.is_anomaly()).count();
        let rate = outliers as f64 / recs.len() as f64;
        assert!((rate - 0.1).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn outlier_labels_carry_true_subspace_from_pool() {
        let mut g = generator();
        let pool: Vec<u64> = g.outlier_subspace_pool().iter().map(|s| s.mask()).collect();
        let recs = g.generate(2000);
        let mut seen_outlier = false;
        for r in recs.iter().filter(|r| r.is_anomaly()) {
            seen_outlier = true;
            let mask = r.label.anomaly().unwrap().true_subspace.unwrap();
            assert!(pool.contains(&mask), "mask {mask:b} not in pool");
        }
        assert!(seen_outlier);
    }

    #[test]
    fn outliers_are_displaced_in_their_subspace() {
        let mut g = SyntheticGenerator::new(SyntheticConfig {
            outlier_fraction: 0.05,
            seed: 3,
            ..Default::default()
        })
        .unwrap();
        let min_gap = g.config().outlier_displacement * g.config().tight_sigma;
        let clusters: Vec<Vec<f64>> = g.clusters.iter().map(|c| c.center.clone()).collect();
        let recs = g.generate(3000);
        let mut checked = 0;
        for r in recs.iter().filter(|r| r.is_anomaly()) {
            let mask = r.label.anomaly().unwrap().true_subspace.unwrap();
            let s = Subspace::from_mask(mask).unwrap();
            // In at least one subspace dim the point must sit >= min_gap
            // away from every center (rejection sampling guarantees all
            // dims except the clamped fallback; be tolerant).
            let ok = s.dims().any(|d| {
                clusters
                    .iter()
                    .all(|c| (r.point.value(d) - c[d]).abs() >= min_gap * 0.99)
            });
            assert!(ok, "outlier not displaced: {:?}", r.point);
            checked += 1;
        }
        assert!(checked > 50);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = generator();
        let mut b = generator();
        assert_eq!(a.generate(100), b.generate(100));
    }

    #[test]
    fn normal_training_batch_has_no_labels() {
        let mut g = generator();
        let train = g.generate_normal(100);
        assert_eq!(train.len(), 100);
        assert!(train.iter().all(|p| p.dims() == 16));
    }

    #[test]
    fn iterator_interface_is_unbounded() {
        let g = generator();
        let recs: Vec<_> = g.take(10).collect();
        assert_eq!(recs.len(), 10);
        assert_eq!(recs[9].seq, 9);
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..20_000).map(|_| gaussian(&mut rng)).collect();
        let mean = spot_types::stats::mean(&xs);
        let var = spot_types::stats::variance(&xs);
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.1, "var={var}");
    }
}
