//! Stream generators with ground truth for the SPOT experiments.
//!
//! The ICDE'08 demo evaluated SPOT on "synthetic and real-life streaming
//! data sets". The real data is not redistributable, so this crate builds
//! seeded simulators that preserve the *structure* the detection problem
//! depends on (see DESIGN.md §3 for the substitution argument):
//!
//! * [`synthetic`] — subspace-embedded Gaussian clusters plus planted
//!   *projected outliers*: points ordinary in the full space yet sparse in a
//!   designated low-dimensional subspace, with that subspace recorded as
//!   ground truth.
//! * [`kdd`] — a KDD-Cup'99-like network-intrusion stream: 20 continuous
//!   connection features, normal traffic profiles, and four attack families
//!   whose anomalies live in small documented feature subsets.
//! * [`drift`] — wrappers that move the generating distribution over time
//!   (gradual or abrupt concept drift).
//! * [`csv`] — dataset save/load in a dependency-light CSV dialect, plus
//!   JSON artifact dumps for the experiment harness.

pub mod csv;
pub mod drift;
pub mod kdd;
pub mod sensor;
pub mod synthetic;

pub use drift::{DriftKind, DriftingGenerator};
pub use kdd::{AttackKind, KddConfig, KddGenerator, FEATURE_NAMES, NUM_FEATURES};
pub use sensor::{FaultKind, SensorConfig, SensorGenerator};
pub use synthetic::{SyntheticConfig, SyntheticGenerator};
