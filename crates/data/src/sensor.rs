//! Sensor-network stream simulator.
//!
//! The paper motivates SPOT with "analysis and monitoring of network
//! traffic data, web log, **sensor networks** and financial transactions".
//! This generator emulates a field of correlated sensors: each record is
//! one synchronized reading across all sensors, driven by a shared diurnal
//! signal plus per-sensor offsets and noise, with neighbouring sensors
//! additionally correlated. Three fault families are planted, each visible
//! only in a small subspace:
//!
//! * **stuck** — a sensor freezes at a constant while its neighbours keep
//!   moving (outlying in the 2-dim subspace {sensor, neighbour}).
//! * **spike** — a transient burst on one sensor (1-dim subspace).
//! * **correlation-break** — two coupled sensors decouple: both values are
//!   individually plausible but their joint reading is unprecedented
//!   (outlying only in the 2-dim pair — the quintessential projected
//!   outlier that no single-attribute monitor can see).

use crate::synthetic::gaussian;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spot_subspace::Subspace;
use spot_types::{AnomalyInfo, DataPoint, DomainBounds, Label, LabeledRecord, Result, SpotError};

/// Configuration of the sensor field.
#[derive(Debug, Clone)]
pub struct SensorConfig {
    /// Number of sensors (= stream dimensionality, 4..=64).
    pub sensors: usize,
    /// Period of the shared diurnal cycle, in records.
    pub cycle: u64,
    /// Amplitude of the diurnal cycle (readings are normalized to [0,1]).
    pub amplitude: f64,
    /// Per-reading Gaussian noise.
    pub noise: f64,
    /// Coupling of sensor `i` to sensor `i−1` (0 = independent).
    pub coupling: f64,
    /// Fraction of records carrying a planted fault.
    pub fault_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SensorConfig {
    fn default() -> Self {
        SensorConfig {
            sensors: 24,
            cycle: 2000,
            amplitude: 0.25,
            noise: 0.02,
            coupling: 0.6,
            fault_fraction: 0.02,
            seed: 7,
        }
    }
}

impl SensorConfig {
    fn validate(&self) -> Result<()> {
        if !(4..=64).contains(&self.sensors) {
            return Err(SpotError::InvalidConfig(format!(
                "sensors must lie in 4..=64, got {}",
                self.sensors
            )));
        }
        if self.cycle == 0 {
            return Err(SpotError::InvalidConfig("cycle must be positive".into()));
        }
        if !(0.0..=0.5).contains(&self.fault_fraction) {
            return Err(SpotError::InvalidConfig(
                "fault fraction must be in [0,0.5]".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.coupling) {
            return Err(SpotError::InvalidConfig(
                "coupling must lie in [0,1]".into(),
            ));
        }
        if self.noise <= 0.0 || self.amplitude < 0.0 {
            return Err(SpotError::InvalidConfig("noise must be positive".into()));
        }
        Ok(())
    }
}

/// Planted fault families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Sensor frozen at a constant.
    Stuck,
    /// Transient spike on one sensor.
    Spike,
    /// Two coupled sensors decouple.
    CorrelationBreak,
}

impl FaultKind {
    /// Category string used in labels.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Stuck => "stuck",
            FaultKind::Spike => "spike",
            FaultKind::CorrelationBreak => "corr-break",
        }
    }
}

/// Seeded sensor-field generator (unbounded iterator of labeled records).
#[derive(Debug, Clone)]
pub struct SensorGenerator {
    config: SensorConfig,
    /// Per-sensor baseline offsets.
    offsets: Vec<f64>,
    rng: StdRng,
    t: u64,
    next_seq: u64,
}

impl SensorGenerator {
    /// Builds the generator.
    pub fn new(config: SensorConfig) -> Result<Self> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let offsets: Vec<f64> = (0..config.sensors)
            .map(|_| rng.gen_range(0.35..0.65))
            .collect();
        Ok(SensorGenerator {
            config,
            offsets,
            rng,
            t: 0,
            next_seq: 0,
        })
    }

    /// Reading-space bounds.
    pub fn bounds(&self) -> DomainBounds {
        DomainBounds::unit(self.config.sensors)
    }

    /// Draws `n` labeled records.
    pub fn generate(&mut self, n: usize) -> Vec<LabeledRecord> {
        (0..n).map(|_| self.next_record()).collect()
    }

    /// Draws `n` fault-free readings (training batch).
    pub fn generate_normal(&mut self, n: usize) -> Vec<DataPoint> {
        (0..n)
            .map(|_| {
                self.t += 1;
                self.healthy_reading()
            })
            .collect()
    }

    fn healthy_reading(&mut self) -> DataPoint {
        let phase = 2.0 * std::f64::consts::PI * (self.t % self.config.cycle) as f64
            / self.config.cycle as f64;
        let diurnal = self.config.amplitude * phase.sin();
        let n = self.config.sensors;
        let mut vals = Vec::with_capacity(n);
        let mut prev_dev = 0.0;
        for i in 0..n {
            let own = gaussian(&mut self.rng) * self.config.noise;
            // Coupled deviation: follow the previous sensor's deviation.
            let dev = self.config.coupling * prev_dev + (1.0 - self.config.coupling) * own;
            let v = (self.offsets[i] + diurnal * 0.5 + dev + own * 0.5).clamp(0.0, 1.0);
            vals.push(v);
            prev_dev = dev + own;
        }
        DataPoint::new(vals)
    }

    fn next_record(&mut self) -> LabeledRecord {
        self.t += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        let point = self.healthy_reading();
        if !self.rng.gen_bool(self.config.fault_fraction) {
            return LabeledRecord::new(seq, point, Label::Normal);
        }
        let n = self.config.sensors;
        let kind = match self.rng.gen_range(0..3) {
            0 => FaultKind::Stuck,
            1 => FaultKind::Spike,
            _ => FaultKind::CorrelationBreak,
        };
        let mut v = point.into_values();
        let mask = match kind {
            FaultKind::Stuck => {
                // Freeze sensor i near the domain floor while its
                // neighbour moves normally.
                let i = self.rng.gen_range(1..n);
                v[i] = 0.02;
                Subspace::from_dims([i - 1, i]).expect("dims valid").mask()
            }
            FaultKind::Spike => {
                let i = self.rng.gen_range(0..n);
                v[i] = (v[i] + 0.45).min(1.0);
                Subspace::single(i).expect("dim valid").mask()
            }
            FaultKind::CorrelationBreak => {
                // Push two adjacent coupled sensors in opposite directions;
                // each value stays within its healthy marginal range, only
                // the joint reading is unprecedented.
                let i = self.rng.gen_range(1..n);
                v[i - 1] = (self.offsets[i - 1] + 0.12).min(1.0);
                v[i] = (self.offsets[i] - 0.12).max(0.0);
                Subspace::from_dims([i - 1, i]).expect("dims valid").mask()
            }
        };
        LabeledRecord::new(
            seq,
            DataPoint::new(v),
            Label::Anomaly(AnomalyInfo::with_subspace(kind.name(), mask)),
        )
    }
}

impl Iterator for SensorGenerator {
    type Item = LabeledRecord;

    fn next(&mut self) -> Option<LabeledRecord> {
        Some(self.next_record())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator() -> SensorGenerator {
        SensorGenerator::new(SensorConfig::default()).unwrap()
    }

    #[test]
    fn validation() {
        let bad = |f: fn(&mut SensorConfig)| {
            let mut c = SensorConfig::default();
            f(&mut c);
            SensorGenerator::new(c).is_err()
        };
        assert!(bad(|c| c.sensors = 2));
        assert!(bad(|c| c.sensors = 100));
        assert!(bad(|c| c.cycle = 0));
        assert!(bad(|c| c.fault_fraction = 0.9));
        assert!(bad(|c| c.coupling = 1.5));
        assert!(bad(|c| c.noise = 0.0));
    }

    #[test]
    fn readings_in_unit_box() {
        let mut g = generator();
        let bounds = g.bounds();
        for r in g.generate(500) {
            assert_eq!(r.point.dims(), 24);
            assert!(bounds.contains(&r.point));
        }
    }

    #[test]
    fn fault_rate_and_families() {
        let mut g = SensorGenerator::new(SensorConfig {
            fault_fraction: 0.1,
            seed: 3,
            ..Default::default()
        })
        .unwrap();
        let recs = g.generate(8000);
        let faults: Vec<_> = recs.iter().filter(|r| r.is_anomaly()).collect();
        let rate = faults.len() as f64 / recs.len() as f64;
        assert!((rate - 0.1).abs() < 0.02, "rate={rate}");
        for name in ["stuck", "spike", "corr-break"] {
            assert!(
                faults.iter().any(|r| r.label.category() == name),
                "family {name} never generated"
            );
        }
    }

    #[test]
    fn neighbours_are_correlated() {
        let mut g = SensorGenerator::new(SensorConfig {
            coupling: 0.9,
            fault_fraction: 0.0,
            ..Default::default()
        })
        .unwrap();
        let pts = g.generate_normal(3000);
        // Pearson correlation between sensor 5 and 6 deviations.
        let xs: Vec<f64> = pts.iter().map(|p| p.value(5)).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.value(6)).collect();
        let corr = pearson(&xs, &ys);
        assert!(corr > 0.3, "corr={corr}");
    }

    #[test]
    fn correlation_break_is_marginally_plausible() {
        let mut g = SensorGenerator::new(SensorConfig {
            fault_fraction: 0.3,
            seed: 5,
            ..Default::default()
        })
        .unwrap();
        let recs = g.generate(4000);
        for r in recs.iter().filter(|r| r.label.category() == "corr-break") {
            let mask = r.label.anomaly().unwrap().true_subspace.unwrap();
            let s = Subspace::from_mask(mask).unwrap();
            assert_eq!(s.cardinality(), 2);
            // Both coordinates stay well inside [0,1] — nothing extreme.
            for d in s.dims() {
                let v = r.point.value(d);
                assert!((0.05..=0.95).contains(&v), "v={v}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let mut a = generator();
        let mut b = generator();
        assert_eq!(a.generate(200), b.generate(200));
    }

    fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
        cov / (vx.sqrt() * vy.sqrt())
    }
}
