//! Dataset persistence.
//!
//! Labeled streams round-trip through a small CSV dialect
//! (`seq,category,subspace_mask,v0,v1,…`) written with buffered I/O; the
//! experiment harness additionally dumps arbitrary serde values as JSON
//! artifacts next to each table.

use spot_types::{AnomalyInfo, DataPoint, Label, LabeledRecord, Result, SpotError};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Writes labeled records as CSV (with a header row).
pub fn write_csv<W: Write>(w: W, records: &[LabeledRecord]) -> Result<()> {
    let mut w = BufWriter::new(w);
    let dims = records.first().map_or(0, |r| r.point.dims());
    write!(w, "seq,category,subspace_mask")?;
    for d in 0..dims {
        write!(w, ",v{d}")?;
    }
    writeln!(w)?;
    for r in records {
        let (category, mask) = match &r.label {
            Label::Normal => ("normal", 0u64),
            Label::Anomaly(info) => (info.category.as_str(), info.true_subspace.unwrap_or(0)),
        };
        if category.contains(',') {
            return Err(SpotError::Io(format!(
                "category {category:?} contains a comma"
            )));
        }
        write!(w, "{},{},{}", r.seq, category, mask)?;
        for v in r.point.values() {
            write!(w, ",{v}")?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads labeled records from the CSV dialect produced by [`write_csv`].
pub fn read_csv<R: Read>(r: R) -> Result<Vec<LabeledRecord>> {
    let mut lines = BufReader::new(r).lines();
    let header = lines
        .next()
        .ok_or_else(|| SpotError::Io("empty CSV".into()))?
        .map_err(SpotError::from)?;
    let dims = header.split(',').skip(3).count();
    let mut out = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(SpotError::from)?;
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let seq: u64 = parse(parts.next(), lineno, "seq")?;
        let category = parts
            .next()
            .ok_or_else(|| bad(lineno, "category"))?
            .to_string();
        let mask: u64 = parse(parts.next(), lineno, "subspace_mask")?;
        let vals: Vec<f64> = parts
            .map(|t| t.parse::<f64>().map_err(|_| bad(lineno, "value")))
            .collect::<Result<_>>()?;
        if vals.len() != dims {
            return Err(SpotError::Io(format!(
                "line {}: expected {dims} values, got {}",
                lineno + 2,
                vals.len()
            )));
        }
        let label = if category == "normal" {
            Label::Normal
        } else if mask == 0 {
            Label::Anomaly(AnomalyInfo::category(category))
        } else {
            Label::Anomaly(AnomalyInfo::with_subspace(category, mask))
        };
        out.push(LabeledRecord::new(seq, DataPoint::new(vals), label));
    }
    Ok(out)
}

/// Saves records to a file path.
pub fn save_csv(path: impl AsRef<Path>, records: &[LabeledRecord]) -> Result<()> {
    let f = std::fs::File::create(path)?;
    write_csv(f, records)
}

/// Loads records from a file path.
pub fn load_csv(path: impl AsRef<Path>) -> Result<Vec<LabeledRecord>> {
    let f = std::fs::File::open(path)?;
    read_csv(f)
}

/// Dumps any serializable value as pretty JSON (experiment artifacts).
pub fn save_json<T: serde::Serialize>(path: impl AsRef<Path>, value: &T) -> Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    serde_json::to_writer_pretty(&mut w, value).map_err(|e| SpotError::Io(e.to_string()))?;
    w.flush()?;
    Ok(())
}

fn parse<T: std::str::FromStr>(tok: Option<&str>, lineno: usize, what: &str) -> Result<T> {
    tok.ok_or_else(|| bad(lineno, what))?
        .parse::<T>()
        .map_err(|_| bad(lineno, what))
}

fn bad(lineno: usize, what: &str) -> SpotError {
    SpotError::Io(format!("line {}: malformed {what}", lineno + 2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SyntheticConfig, SyntheticGenerator};

    #[test]
    fn roundtrip_preserves_records() {
        let mut g = SyntheticGenerator::new(SyntheticConfig {
            dims: 4,
            outlier_fraction: 0.2,
            ..Default::default()
        })
        .unwrap();
        let recs = g.generate(50);
        let mut buf = Vec::new();
        write_csv(&mut buf, &recs).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(recs.len(), back.len());
        for (a, b) in recs.iter().zip(back.iter()) {
            assert_eq!(a.seq, b.seq);
            assert_eq!(a.label, b.label);
            for (x, y) in a.point.values().iter().zip(b.point.values()) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn empty_input_fails_cleanly() {
        assert!(read_csv(&b""[..]).is_err());
    }

    #[test]
    fn header_only_yields_no_records() {
        let recs = read_csv(&b"seq,category,subspace_mask,v0\n"[..]).unwrap();
        assert!(recs.is_empty());
    }

    #[test]
    fn malformed_rows_error_with_line_numbers() {
        let data = b"seq,category,subspace_mask,v0\nnot_a_number,normal,0,1.5\n";
        let err = read_csv(&data[..]).unwrap_err();
        assert!(err.to_string().contains("line 2"));
        let data = b"seq,category,subspace_mask,v0\n1,normal,0,1.5,9.9\n";
        assert!(read_csv(&data[..]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("spot-data-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        let recs = vec![LabeledRecord::new(
            0,
            DataPoint::new(vec![0.25, 0.5]),
            Label::Anomaly(AnomalyInfo::with_subspace("dos", 0b11)),
        )];
        save_csv(&path, &recs).unwrap();
        let back = load_csv(&path).unwrap();
        assert_eq!(back[0].label.category(), "dos");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_artifact_dump() {
        let dir = std::env::temp_dir().join("spot-data-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json");
        save_json(&path, &vec![1, 2, 3]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains('1'));
        std::fs::remove_file(&path).ok();
    }
}
