//! KDD-Cup'99-like network-intrusion stream simulator.
//!
//! The canonical "real-life" evaluation stream for stream outlier detectors
//! of SPOT's era is the KDD-Cup'99 intrusion-detection data. The original
//! data is not shipped here; this module generates a stream with the same
//! *shape*: 20 continuous connection features (a subset of KDD's continuous
//! columns, same semantics), background traffic from a mixture of service
//! profiles, and four attack families that are rare and anomalous only in
//! small, documented feature subsets — precisely the projected-outlier
//! structure SPOT targets. Ground truth (family + outlying feature subset)
//! is attached to every record.

use crate::synthetic::gaussian;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spot_subspace::Subspace;
use spot_types::{AnomalyInfo, DataPoint, DomainBounds, Label, LabeledRecord, Result, SpotError};

/// The 20 continuous features of the simulated connection records.
pub const FEATURE_NAMES: [&str; 20] = [
    "duration",                    // 0
    "src_bytes",                   // 1
    "dst_bytes",                   // 2
    "wrong_fragment",              // 3
    "urgent",                      // 4
    "hot",                         // 5
    "num_failed_logins",           // 6
    "num_compromised",             // 7
    "root_shell",                  // 8
    "num_root",                    // 9
    "num_file_creations",          // 10
    "count",                       // 11
    "srv_count",                   // 12
    "serror_rate",                 // 13
    "rerror_rate",                 // 14
    "same_srv_rate",               // 15
    "diff_srv_rate",               // 16
    "dst_host_count",              // 17
    "dst_host_srv_count",          // 18
    "dst_host_same_src_port_rate", // 19
];

/// Number of features.
pub const NUM_FEATURES: usize = FEATURE_NAMES.len();

/// Attack families in the simulator (the four KDD macro-categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Denial of service (smurf/neptune-like): flooding rates.
    Dos,
    /// Probing (portsweep/satan-like): service scanning.
    Probe,
    /// Remote-to-local (guess_passwd-like): failed logins, hot indicators.
    R2l,
    /// User-to-root (buffer_overflow-like): root shell, file creations.
    U2r,
}

impl AttackKind {
    /// All families.
    pub const ALL: [AttackKind; 4] = [
        AttackKind::Dos,
        AttackKind::Probe,
        AttackKind::R2l,
        AttackKind::U2r,
    ];

    /// Category string used in labels.
    pub fn name(&self) -> &'static str {
        match self {
            AttackKind::Dos => "dos",
            AttackKind::Probe => "probe",
            AttackKind::R2l => "r2l",
            AttackKind::U2r => "u2r",
        }
    }

    /// The feature subset in which this family's anomaly manifests — the
    /// ground-truth outlying subspace.
    pub fn outlying_dims(&self) -> &'static [usize] {
        match self {
            // Flood: count, srv_count, serror_rate pinned high.
            AttackKind::Dos => &[11, 12, 13],
            // Scan: diff_srv_rate, rerror_rate high; same_srv_rate low.
            AttackKind::Probe => &[14, 15, 16],
            // Login attack: failed logins + hot indicators.
            AttackKind::R2l => &[5, 6],
            // Privilege escalation: root_shell, num_root, file creations.
            AttackKind::U2r => &[8, 9, 10],
        }
    }

    /// Ground-truth subspace mask.
    pub fn subspace(&self) -> Subspace {
        Subspace::from_dims(self.outlying_dims().iter().copied())
            .expect("attack dims are non-empty and < 64")
    }
}

/// Mix of the simulated stream.
#[derive(Debug, Clone)]
pub struct KddConfig {
    /// Fraction of records that are attacks (split across families by
    /// `family_weights`).
    pub attack_fraction: f64,
    /// Relative frequency of (dos, probe, r2l, u2r) among attacks; KDD's
    /// skew (DoS dominates, U2R is rare) is the default.
    pub family_weights: [f64; 4],
    /// RNG seed.
    pub seed: u64,
}

impl Default for KddConfig {
    fn default() -> Self {
        KddConfig {
            attack_fraction: 0.02,
            family_weights: [0.65, 0.2, 0.1, 0.05],
            seed: 99,
        }
    }
}

impl KddConfig {
    fn validate(&self) -> Result<()> {
        if !(0.0..=0.5).contains(&self.attack_fraction) {
            return Err(SpotError::InvalidConfig(
                "attack fraction must be in [0,0.5]".into(),
            ));
        }
        if self.family_weights.iter().any(|&w| w < 0.0)
            || self.family_weights.iter().sum::<f64>() <= 0.0
        {
            return Err(SpotError::InvalidConfig(
                "family weights must be non-negative, not all zero".into(),
            ));
        }
        Ok(())
    }
}

/// One normal-traffic service profile (e.g. web browsing vs bulk transfer).
#[derive(Debug, Clone)]
struct Profile {
    mean: [f64; NUM_FEATURES],
    sigma: [f64; NUM_FEATURES],
}

/// Seeded KDD-like stream generator (unbounded iterator of labeled
/// records). All features are normalized to `[0, 1]`.
#[derive(Debug, Clone)]
pub struct KddGenerator {
    config: KddConfig,
    profiles: Vec<Profile>,
    rng: StdRng,
    next_seq: u64,
}

impl KddGenerator {
    /// Builds the generator with three stock service profiles.
    pub fn new(config: KddConfig) -> Result<Self> {
        config.validate()?;
        let rng = StdRng::seed_from_u64(config.seed);
        Ok(KddGenerator {
            config,
            profiles: stock_profiles(),
            rng,
            next_seq: 0,
        })
    }

    /// Feature-space bounds (all features normalized to the unit box).
    pub fn bounds(&self) -> DomainBounds {
        DomainBounds::unit(NUM_FEATURES)
    }

    /// Draws `n` labeled records.
    pub fn generate(&mut self, n: usize) -> Vec<LabeledRecord> {
        (0..n).map(|_| self.next_record()).collect()
    }

    /// Draws `n` normal-only connection records (training batch).
    pub fn generate_normal(&mut self, n: usize) -> Vec<DataPoint> {
        (0..n).map(|_| self.sample_normal()).collect()
    }

    /// Draws one exemplar attack of the given family (for supervised
    /// learning / example-based detection).
    pub fn attack_exemplar(&mut self, kind: AttackKind) -> DataPoint {
        self.sample_attack(kind)
    }

    fn next_record(&mut self) -> LabeledRecord {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.rng.gen_bool(self.config.attack_fraction) {
            let kind = self.pick_family();
            let point = self.sample_attack(kind);
            let info = AnomalyInfo::with_subspace(kind.name(), kind.subspace().mask());
            LabeledRecord::new(seq, point, Label::Anomaly(info))
        } else {
            LabeledRecord::new(seq, self.sample_normal(), Label::Normal)
        }
    }

    fn pick_family(&mut self) -> AttackKind {
        let total: f64 = self.config.family_weights.iter().sum();
        let mut x = self.rng.gen_range(0.0..total);
        for (i, &w) in self.config.family_weights.iter().enumerate() {
            if x < w {
                return AttackKind::ALL[i];
            }
            x -= w;
        }
        AttackKind::U2r
    }

    fn sample_normal(&mut self) -> DataPoint {
        let p = self.profiles[self.rng.gen_range(0..self.profiles.len())].clone();
        let vals: Vec<f64> = (0..NUM_FEATURES)
            .map(|d| (p.mean[d] + gaussian(&mut self.rng) * p.sigma[d]).clamp(0.0, 1.0))
            .collect();
        DataPoint::new(vals)
    }

    fn sample_attack(&mut self, kind: AttackKind) -> DataPoint {
        // Attacks look like normal traffic outside their signature dims —
        // that is what makes them *projected* outliers.
        let mut vals = self.sample_normal().into_values();
        let jitter = |rng: &mut StdRng, center: f64, s: f64| -> f64 {
            (center + gaussian(rng) * s).clamp(0.0, 1.0)
        };
        match kind {
            AttackKind::Dos => {
                vals[11] = jitter(&mut self.rng, 0.95, 0.02); // count
                vals[12] = jitter(&mut self.rng, 0.93, 0.02); // srv_count
                vals[13] = jitter(&mut self.rng, 0.9, 0.03); // serror_rate
            }
            AttackKind::Probe => {
                vals[14] = jitter(&mut self.rng, 0.85, 0.04); // rerror_rate
                vals[15] = jitter(&mut self.rng, 0.05, 0.02); // same_srv_rate (low!)
                vals[16] = jitter(&mut self.rng, 0.9, 0.03); // diff_srv_rate
            }
            AttackKind::R2l => {
                vals[5] = jitter(&mut self.rng, 0.8, 0.05); // hot
                vals[6] = jitter(&mut self.rng, 0.9, 0.04); // num_failed_logins
            }
            AttackKind::U2r => {
                vals[8] = jitter(&mut self.rng, 0.95, 0.02); // root_shell
                vals[9] = jitter(&mut self.rng, 0.85, 0.05); // num_root
                vals[10] = jitter(&mut self.rng, 0.8, 0.05); // num_file_creations
            }
        }
        DataPoint::new(vals)
    }
}

impl Iterator for KddGenerator {
    type Item = LabeledRecord;

    fn next(&mut self) -> Option<LabeledRecord> {
        Some(self.next_record())
    }
}

/// Three background service profiles. Signature dims sit near zero for all
/// profiles (normal traffic rarely fails logins, floods, or spawns root
/// shells) so the attack families are genuinely sparse regions there.
fn stock_profiles() -> Vec<Profile> {
    let mut base_mean = [0.05f64; NUM_FEATURES];
    let mut base_sigma = [0.03f64; NUM_FEATURES];
    // Generic traffic shape.
    base_mean[0] = 0.2; // duration
    base_mean[1] = 0.3; // src_bytes
    base_mean[2] = 0.35; // dst_bytes
    base_mean[11] = 0.3; // count
    base_mean[12] = 0.3; // srv_count
    base_mean[15] = 0.85; // same_srv_rate high for normal traffic
    base_mean[17] = 0.4; // dst_host_count
    base_mean[18] = 0.45; // dst_host_srv_count
    base_mean[19] = 0.3;
    base_sigma[0] = 0.1;
    base_sigma[1] = 0.08;
    base_sigma[2] = 0.08;
    base_sigma[11] = 0.08;
    base_sigma[12] = 0.08;
    base_sigma[15] = 0.05;
    base_sigma[17] = 0.1;
    base_sigma[18] = 0.1;
    base_sigma[19] = 0.08;

    // Interactive (ssh/telnet-like): long duration, few bytes.
    let mut interactive = Profile {
        mean: base_mean,
        sigma: base_sigma,
    };
    interactive.mean[0] = 0.6;
    interactive.mean[1] = 0.15;
    interactive.mean[2] = 0.15;

    // Bulk transfer (ftp-like): short bursts, many bytes.
    let mut bulk = Profile {
        mean: base_mean,
        sigma: base_sigma,
    };
    bulk.mean[0] = 0.1;
    bulk.mean[1] = 0.7;
    bulk.mean[2] = 0.65;

    // Web (http-like): the base shape.
    let web = Profile {
        mean: base_mean,
        sigma: base_sigma,
    };

    vec![web, interactive, bulk]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(KddGenerator::new(KddConfig {
            attack_fraction: 0.9,
            ..Default::default()
        })
        .is_err());
        assert!(KddGenerator::new(KddConfig {
            family_weights: [0.0; 4],
            ..Default::default()
        })
        .is_err());
        assert!(KddGenerator::new(KddConfig {
            family_weights: [-1.0, 1.0, 1.0, 1.0],
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn records_live_in_unit_box_with_right_dims() {
        let mut g = KddGenerator::new(KddConfig::default()).unwrap();
        let bounds = g.bounds();
        for r in g.generate(500) {
            assert_eq!(r.point.dims(), NUM_FEATURES);
            assert!(bounds.contains(&r.point));
        }
    }

    #[test]
    fn attack_rate_and_family_split() {
        let mut g = KddGenerator::new(KddConfig {
            attack_fraction: 0.2,
            seed: 5,
            ..Default::default()
        })
        .unwrap();
        let recs = g.generate(10_000);
        let attacks: Vec<&LabeledRecord> = recs.iter().filter(|r| r.is_anomaly()).collect();
        let rate = attacks.len() as f64 / recs.len() as f64;
        assert!((rate - 0.2).abs() < 0.03, "rate={rate}");
        // DoS must dominate; U2R must be rare yet present.
        let count = |name: &str| {
            attacks
                .iter()
                .filter(|r| r.label.category() == name)
                .count() as f64
        };
        assert!(count("dos") > count("probe"));
        assert!(count("probe") > count("u2r"));
        assert!(count("u2r") > 0.0);
    }

    #[test]
    fn attacks_deviate_in_signature_dims_only_mostly() {
        let mut g = KddGenerator::new(KddConfig {
            attack_fraction: 0.5,
            seed: 11,
            ..Default::default()
        })
        .unwrap();
        // Collect per-dim means of normal vs dos records.
        let recs = g.generate(8000);
        let mut normal_sum = [0.0f64; NUM_FEATURES];
        let mut normal_n = 0.0;
        let mut dos_sum = [0.0f64; NUM_FEATURES];
        let mut dos_n = 0.0;
        for r in &recs {
            let (sum, n) = if r.label.category() == "dos" {
                (&mut dos_sum, &mut dos_n)
            } else if !r.is_anomaly() {
                (&mut normal_sum, &mut normal_n)
            } else {
                continue;
            };
            for (d, acc) in sum.iter_mut().enumerate() {
                *acc += r.point.value(d);
            }
            *n += 1.0;
        }
        assert!(dos_n > 100.0 && normal_n > 100.0);
        // Signature dims shift a lot; a non-signature dim barely moves.
        for &d in AttackKind::Dos.outlying_dims() {
            let gap = (dos_sum[d] / dos_n - normal_sum[d] / normal_n).abs();
            assert!(gap > 0.3, "dim {d} gap {gap}");
        }
        let gap0 = (dos_sum[0] / dos_n - normal_sum[0] / normal_n).abs();
        assert!(gap0 < 0.1, "duration gap {gap0}");
    }

    #[test]
    fn labels_carry_family_subspaces() {
        let mut g = KddGenerator::new(KddConfig {
            attack_fraction: 0.3,
            ..Default::default()
        })
        .unwrap();
        for r in g.generate(2000).iter().filter(|r| r.is_anomaly()) {
            let info = r.label.anomaly().unwrap();
            let kind = AttackKind::ALL
                .iter()
                .find(|k| k.name() == info.category)
                .expect("known family");
            assert_eq!(info.true_subspace, Some(kind.subspace().mask()));
        }
    }

    #[test]
    fn exemplars_match_family_signature() {
        let mut g = KddGenerator::new(KddConfig::default()).unwrap();
        let ex = g.attack_exemplar(AttackKind::U2r);
        assert!(ex.value(8) > 0.8); // root_shell pinned high
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = KddGenerator::new(KddConfig::default()).unwrap();
        let mut b = KddGenerator::new(KddConfig::default()).unwrap();
        assert_eq!(a.generate(200), b.generate(200));
    }

    #[test]
    fn feature_names_distinct() {
        let set: std::collections::HashSet<&str> = FEATURE_NAMES.iter().copied().collect();
        assert_eq!(set.len(), NUM_FEATURES);
    }
}
