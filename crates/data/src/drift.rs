//! Concept-drift wrappers.
//!
//! SPOT claims to "cope with dynamics of data streams and respond to the
//! possible concept drift". These wrappers manufacture that dynamics: the
//! generating distribution changes over the stream either gradually (cluster
//! centers glide to new positions) or abruptly (the generator is swapped at
//! a change point).

use crate::synthetic::{SyntheticConfig, SyntheticGenerator};
use spot_types::{LabeledRecord, Result};

/// How the distribution changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// Linear interpolation of every record between the two generating
    /// distributions over `0..duration` records after `start`.
    Gradual {
        /// Record index at which the transition begins.
        start: u64,
        /// Number of records over which the mixture shifts from old to new.
        duration: u64,
    },
    /// Hard switch at the change point.
    Abrupt {
        /// Record index of the switch.
        at: u64,
    },
}

/// Streams from generator A, then drifts to generator B.
///
/// For gradual drift each record is drawn from A or B with a probability
/// that ramps linearly — the standard "probabilistic gradual drift" model
/// of the stream-mining literature, which keeps both generators' internal
/// RNGs deterministic.
#[derive(Debug, Clone)]
pub struct DriftingGenerator {
    before: SyntheticGenerator,
    after: SyntheticGenerator,
    kind: DriftKind,
    emitted: u64,
    /// Cheap deterministic coin for the gradual mixture.
    coin_state: u64,
}

impl DriftingGenerator {
    /// Builds the wrapper from two synthetic configurations.
    pub fn new(before: SyntheticConfig, after: SyntheticConfig, kind: DriftKind) -> Result<Self> {
        Ok(DriftingGenerator {
            before: SyntheticGenerator::new(before)?,
            after: SyntheticGenerator::new(after)?,
            kind,
            emitted: 0,
            coin_state: 0x9E3779B97F4A7C15,
        })
    }

    /// Builds the common experiment setup: same config, different seed for
    /// the post-drift phase (new cluster layout, same global statistics).
    pub fn reseeded(config: SyntheticConfig, post_seed: u64, kind: DriftKind) -> Result<Self> {
        let mut after = config.clone();
        after.seed = post_seed;
        Self::new(config, after, kind)
    }

    /// Access to the pre-drift generator (e.g. for training batches).
    pub fn before_mut(&mut self) -> &mut SyntheticGenerator {
        &mut self.before
    }

    /// Access to the post-drift generator.
    pub fn after_mut(&mut self) -> &mut SyntheticGenerator {
        &mut self.after
    }

    /// Fraction of records currently drawn from the *new* distribution
    /// (0 before the drift, 1 after it completes).
    pub fn new_fraction(&self) -> f64 {
        match self.kind {
            DriftKind::Abrupt { at } => {
                if self.emitted >= at {
                    1.0
                } else {
                    0.0
                }
            }
            DriftKind::Gradual { start, duration } => {
                if self.emitted < start {
                    0.0
                } else if duration == 0 || self.emitted >= start + duration {
                    1.0
                } else {
                    (self.emitted - start) as f64 / duration as f64
                }
            }
        }
    }

    /// Draws `n` records.
    pub fn generate(&mut self, n: usize) -> Vec<LabeledRecord> {
        (0..n).map(|_| self.next_record()).collect()
    }

    fn next_record(&mut self) -> LabeledRecord {
        let p_new = self.new_fraction();
        let use_new = p_new >= 1.0 || (p_new > 0.0 && self.coin() < p_new);
        self.emitted += 1;
        let mut rec = if use_new {
            self.after.next().expect("synthetic generator is unbounded")
        } else {
            self.before
                .next()
                .expect("synthetic generator is unbounded")
        };
        rec.seq = self.emitted - 1;
        rec
    }

    /// SplitMix64-style deterministic coin in [0,1).
    fn coin(&mut self) -> f64 {
        self.coin_state = self.coin_state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.coin_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Iterator for DriftingGenerator {
    type Item = LabeledRecord;

    fn next(&mut self) -> Option<LabeledRecord> {
        Some(self.next_record())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> SyntheticConfig {
        SyntheticConfig {
            seed,
            dims: 8,
            ..Default::default()
        }
    }

    #[test]
    fn abrupt_switch_changes_distribution() {
        let mut g =
            DriftingGenerator::reseeded(cfg(1), 999, DriftKind::Abrupt { at: 100 }).unwrap();
        let recs = g.generate(200);
        // Reference runs of the two phases.
        let mut before = SyntheticGenerator::new(cfg(1)).unwrap();
        let before_recs: Vec<_> = before.generate(100);
        assert_eq!(
            recs[..100]
                .iter()
                .map(|r| r.point.clone())
                .collect::<Vec<_>>(),
            before_recs
                .iter()
                .map(|r| r.point.clone())
                .collect::<Vec<_>>()
        );
        // Post-switch records differ from a continued pre-drift stream.
        let continued: Vec<_> = before.generate(100);
        assert_ne!(
            recs[100..]
                .iter()
                .map(|r| r.point.clone())
                .collect::<Vec<_>>(),
            continued
                .iter()
                .map(|r| r.point.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn gradual_fraction_ramps() {
        let mut g = DriftingGenerator::reseeded(
            cfg(2),
            7,
            DriftKind::Gradual {
                start: 100,
                duration: 100,
            },
        )
        .unwrap();
        assert_eq!(g.new_fraction(), 0.0);
        g.generate(100);
        assert_eq!(g.new_fraction(), 0.0);
        g.generate(50);
        assert!((g.new_fraction() - 0.5).abs() < 1e-12);
        g.generate(60);
        assert_eq!(g.new_fraction(), 1.0);
    }

    #[test]
    fn zero_duration_gradual_is_abrupt() {
        let mut g = DriftingGenerator::reseeded(
            cfg(3),
            8,
            DriftKind::Gradual {
                start: 10,
                duration: 0,
            },
        )
        .unwrap();
        g.generate(10);
        assert_eq!(g.new_fraction(), 1.0);
    }

    #[test]
    fn sequence_numbers_are_contiguous() {
        let g = DriftingGenerator::reseeded(cfg(4), 9, DriftKind::Abrupt { at: 5 }).unwrap();
        let recs: Vec<_> = g.take(20).collect();
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
    }

    #[test]
    fn deterministic_for_fixed_seeds() {
        let make = || {
            DriftingGenerator::reseeded(
                cfg(5),
                11,
                DriftKind::Gradual {
                    start: 5,
                    duration: 10,
                },
            )
            .unwrap()
            .generate(50)
        };
        assert_eq!(make(), make());
    }
}
