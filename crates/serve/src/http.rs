//! Minimal HTTP/1.1 wire protocol over `std::net::TcpStream`.
//!
//! Hand-rolled because the workspace has no crates.io access; the surface is
//! exactly what the SPOT service plane needs and nothing more. Robustness is
//! the design driver rather than feature coverage:
//!
//! - **Deadlines everywhere.** Reading a request runs under a per-request
//!   deadline enforced through `set_read_timeout` with the *remaining*
//!   budget before every `read` call, so a client that dribbles one byte per
//!   second (slow loris) trips [`HttpError::Timeout`] instead of pinning a
//!   worker. Keep-alive waits between requests run under a separate idle
//!   timeout.
//! - **Hard size limits.** Request line, header block, header count, and
//!   body are all bounded by [`HttpLimits`]; an oversized frame fails fast
//!   with a typed error the server maps to `413`/`431` before buffering the
//!   rest.
//! - **No speculative features.** `Content-Length` bodies only —
//!   `Transfer-Encoding` is rejected with `501` rather than half-parsed.
//!
//! The parser is shared by the server and the in-tree client
//! ([`read_response`]); both sides carry leftover bytes between requests so
//! pipelined input is not dropped.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Hard input limits applied while parsing one request or response.
#[derive(Debug, Clone)]
pub struct HttpLimits {
    /// Maximum bytes in the request line (`431` beyond this).
    pub max_request_line: usize,
    /// Maximum bytes in the whole head (request line + headers).
    pub max_head_bytes: usize,
    /// Maximum number of header fields.
    pub max_headers: usize,
    /// Maximum `Content-Length` the peer may declare (`413` beyond this).
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_request_line: 8 * 1024,
            max_head_bytes: 16 * 1024,
            max_headers: 64,
            max_body_bytes: 4 * 1024 * 1024,
        }
    }
}

/// Request methods the service plane understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Read-only endpoints (health, stats).
    Get,
    /// Idempotent resource creation (tenant registration).
    Put,
    /// Ingestion and admin actions.
    Post,
    /// Tenant eviction.
    Delete,
}

impl Method {
    fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "PUT" => Some(Method::Put),
            "POST" => Some(Method::Post),
            "DELETE" => Some(Method::Delete),
            _ => None,
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Parsed method.
    pub method: Method,
    /// Raw request target (path), percent-encoded as received. The router
    /// splits off any query string and hands it to routes that take
    /// options (e.g. `/admin/checkpoint?mode=delta`).
    pub target: String,
    /// Header fields with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was supplied).
    pub body: Vec<u8>,
    /// Whether the connection should be kept open after responding
    /// (HTTP/1.1 default unless `Connection: close`).
    pub keep_alive: bool,
}

impl Request {
    /// Case-insensitive header lookup (names are stored lower-cased).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One response, built by handlers and serialized by [`Response::write_to`].
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond the generated status line / `Content-Length`.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: vec![("content-type".to_string(), "application/json".to_string())],
            body: body.into().into_bytes(),
        }
    }

    /// Attach an extra header.
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Canonical reason phrase for the status codes the plane emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            201 => "Created",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            411 => "Length Required",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serialize onto `stream` under `deadline`. `close` forces a
    /// `Connection: close` header (the server also closes after writing).
    pub fn write_to(
        &self,
        stream: &mut TcpStream,
        close: bool,
        deadline: Instant,
    ) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-length: {}\r\n",
            self.status,
            Response::reason(self.status),
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(if close {
            "connection: close\r\n\r\n"
        } else {
            "connection: keep-alive\r\n\r\n"
        });
        arm_write(stream, deadline)?;
        stream.write_all(head.as_bytes())?;
        if !self.body.is_empty() {
            arm_write(stream, deadline)?;
            stream.write_all(&self.body)?;
        }
        stream.flush()
    }
}

/// Response as seen by the in-tree client.
#[derive(Debug)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Lower-cased header fields.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
    /// Whether the server intends to keep the connection open.
    pub keep_alive: bool,
}

impl ClientResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy — bodies the plane emits are always JSON).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Outcome of waiting for the next request on a keep-alive connection.
#[derive(Debug)]
pub enum NextRequest {
    /// A complete request arrived.
    Request(Request),
    /// The peer closed cleanly between requests — normal keep-alive end.
    Closed,
    /// No request arrived within the idle timeout.
    Idle,
}

/// Typed failure while reading a request; the server maps each variant to a
/// status code (or a silent close for mid-request disconnects).
#[derive(Debug)]
pub enum HttpError {
    /// The per-request read deadline expired mid-request (slow loris).
    Timeout,
    /// The peer disconnected mid-request (torn request line, mid-body
    /// disconnect). No response is possible; close silently.
    Disconnected,
    /// Request line longer than [`HttpLimits::max_request_line`] or head
    /// larger than [`HttpLimits::max_head_bytes`] / more than
    /// [`HttpLimits::max_headers`] fields → `431`.
    HeadTooLarge,
    /// Declared `Content-Length` exceeds [`HttpLimits::max_body_bytes`] →
    /// `413`.
    BodyTooLarge,
    /// Body-bearing method without a `Content-Length` → `411`.
    LengthRequired,
    /// A feature this plane deliberately does not implement (unknown
    /// method, `Transfer-Encoding`) → `501`.
    Unsupported(&'static str),
    /// Malformed input → `400`.
    Bad(&'static str),
    /// Transport error other than timeout/disconnect; close silently.
    Io(std::io::Error),
}

impl HttpError {
    /// Status code for variants that get a best-effort response before the
    /// connection closes; `None` means close without responding.
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::Timeout => Some(408),
            HttpError::Disconnected | HttpError::Io(_) => None,
            HttpError::HeadTooLarge => Some(431),
            HttpError::BodyTooLarge => Some(413),
            HttpError::LengthRequired => Some(411),
            HttpError::Unsupported(_) => Some(501),
            HttpError::Bad(_) => Some(400),
        }
    }

    /// Short description used in error bodies.
    pub fn describe(&self) -> &'static str {
        match self {
            HttpError::Timeout => "read deadline exceeded",
            HttpError::Disconnected => "peer disconnected mid-request",
            HttpError::HeadTooLarge => "request head exceeds limits",
            HttpError::BodyTooLarge => "request body exceeds limit",
            HttpError::LengthRequired => "content-length required",
            HttpError::Unsupported(what) => what,
            HttpError::Bad(what) => what,
            HttpError::Io(_) => "transport error",
        }
    }
}

/// Read one request from `stream`.
///
/// `carry` holds bytes read past the previous request's end (pipelining);
/// it is consumed first and refilled with any overshoot. The wait for the
/// *first* byte runs under `idle`; once a byte exists the whole request must
/// complete within `budget`.
pub fn read_request(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
    limits: &HttpLimits,
    idle: Duration,
    budget: Duration,
) -> Result<NextRequest, HttpError> {
    // Phase 1: wait for the first byte (idle keep-alive wait) unless the
    // carry buffer already holds pipelined input.
    if carry.is_empty() {
        stream
            .set_read_timeout(Some(idle.max(Duration::from_millis(1))))
            .map_err(HttpError::Io)?;
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(NextRequest::Closed),
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
            Err(e) if timed_out(&e) => return Ok(NextRequest::Idle),
            Err(e) if disconnected(&e) => return Ok(NextRequest::Closed),
            Err(e) => return Err(HttpError::Io(e)),
        }
    }

    // Phase 2: the request clock starts with its first byte.
    let deadline = Instant::now() + budget;

    // Head: read until CRLFCRLF, bounded by max_head_bytes.
    let head_end = loop {
        if let Some(pos) = find(carry, b"\r\n\r\n") {
            break pos;
        }
        if carry.len() > limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge);
        }
        fill(stream, carry, deadline)?;
    };
    if head_end + 4 > limits.max_head_bytes {
        return Err(HttpError::HeadTooLarge);
    }

    let head = carry[..head_end].to_vec();
    carry.drain(..head_end + 4);
    let head = String::from_utf8(head).map_err(|_| HttpError::Bad("non-UTF-8 request head"))?;
    let mut lines = head.split("\r\n");

    // Request line.
    let request_line = lines.next().unwrap_or("");
    if request_line.len() > limits.max_request_line {
        return Err(HttpError::HeadTooLarge);
    }
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::Bad("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Bad("unsupported HTTP version"));
    }
    let http_11 = version == "HTTP/1.1";
    let method = Method::parse(method).ok_or(HttpError::Unsupported("unsupported method"))?;

    // Headers.
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::HeadTooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Bad("malformed header field"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let find_header = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    if find_header("transfer-encoding").is_some() {
        return Err(HttpError::Unsupported("transfer-encoding not supported"));
    }
    let keep_alive = match find_header("connection").map(str::to_ascii_lowercase) {
        Some(c) if c.contains("close") => false,
        Some(c) if c.contains("keep-alive") => true,
        _ => http_11,
    };

    // Body.
    let body_len = match find_header("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Bad("malformed content-length"))?,
        None => {
            if matches!(method, Method::Post | Method::Put) {
                return Err(HttpError::LengthRequired);
            }
            0
        }
    };
    if body_len > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge);
    }
    while carry.len() < body_len {
        fill(stream, carry, deadline)?;
    }
    let body = carry.drain(..body_len).collect();

    Ok(NextRequest::Request(Request {
        method,
        target: target.to_string(),
        headers,
        body,
        keep_alive,
    }))
}

/// Read one response from `stream` under `deadline` (client side).
pub fn read_response(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
    limits: &HttpLimits,
    deadline: Instant,
) -> Result<ClientResponse, HttpError> {
    let head_end = loop {
        if let Some(pos) = find(carry, b"\r\n\r\n") {
            break pos;
        }
        if carry.len() > limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge);
        }
        fill(stream, carry, deadline)?;
    };
    let head = carry[..head_end].to_vec();
    carry.drain(..head_end + 4);
    let head = String::from_utf8(head).map_err(|_| HttpError::Bad("non-UTF-8 response head"))?;
    let mut lines = head.split("\r\n");

    let status_line = lines.next().unwrap_or("");
    let mut parts = status_line.splitn(3, ' ');
    let (version, status) = match (parts.next(), parts.next()) {
        (Some(v), Some(s)) => (v, s),
        _ => return Err(HttpError::Bad("malformed status line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Bad("unsupported HTTP version"));
    }
    let status = status
        .parse::<u16>()
        .map_err(|_| HttpError::Bad("malformed status code"))?;

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::HeadTooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Bad("malformed header field"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let find_header = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    let body_len = match find_header("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Bad("malformed content-length"))?,
        None => 0,
    };
    if body_len > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge);
    }
    let keep_alive = !matches!(
        find_header("connection").map(str::to_ascii_lowercase),
        Some(c) if c.contains("close")
    );
    while carry.len() < body_len {
        fill(stream, carry, deadline)?;
    }
    let body = carry.drain(..body_len).collect();

    Ok(ClientResponse {
        status,
        headers,
        body,
        keep_alive,
    })
}

/// Percent-decode one path segment. Returns `None` on malformed escapes.
pub fn percent_decode(segment: &str) -> Option<String> {
    let bytes = segment.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            let hex = std::str::from_utf8(hex).ok()?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// Percent-encode one path segment: unreserved characters pass through,
/// everything else (including `/`, which `TenantId` permits) is escaped so
/// it cannot be mistaken for a path separator.
pub fn percent_encode(segment: &str) -> String {
    let mut out = String::with_capacity(segment.len());
    for b in segment.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// One deadline-bounded read appended to `buf`.
fn fill(stream: &mut TcpStream, buf: &mut Vec<u8>, deadline: Instant) -> Result<(), HttpError> {
    let remaining = deadline
        .checked_duration_since(Instant::now())
        .ok_or(HttpError::Timeout)?;
    stream
        .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
        .map_err(HttpError::Io)?;
    let mut chunk = [0u8; 4096];
    match stream.read(&mut chunk) {
        Ok(0) => Err(HttpError::Disconnected),
        Ok(n) => {
            buf.extend_from_slice(&chunk[..n]);
            Ok(())
        }
        Err(e) if timed_out(&e) => Err(HttpError::Timeout),
        Err(e) if disconnected(&e) => Err(HttpError::Disconnected),
        Err(e) => Err(HttpError::Io(e)),
    }
}

/// Arm the write timeout with the remaining deadline budget.
fn arm_write(stream: &mut TcpStream, deadline: Instant) -> std::io::Result<()> {
    let remaining = deadline
        .checked_duration_since(Instant::now())
        .unwrap_or(Duration::from_millis(1));
    stream.set_write_timeout(Some(remaining.max(Duration::from_millis(1))))
}

fn timed_out(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn disconnected(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::UnexpectedEof
    )
}

/// First index of `needle` in `haystack`.
fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_subsequence() {
        assert_eq!(find(b"abc\r\n\r\ndef", b"\r\n\r\n"), Some(3));
        assert_eq!(find(b"abc", b"\r\n\r\n"), None);
        assert_eq!(find(b"", b"x"), None);
    }

    #[test]
    fn percent_roundtrip() {
        for id in ["plain", "with/slash", "sp ace", "uni-ø", "pct%25"] {
            let enc = percent_encode(id);
            assert!(!enc.contains('/'), "encoded {enc:?} leaks a separator");
            assert_eq!(percent_decode(&enc).as_deref(), Some(id));
        }
        assert_eq!(percent_decode("%zz"), None);
        assert_eq!(percent_decode("%2"), None);
    }

    #[test]
    fn reason_phrases() {
        assert_eq!(Response::reason(200), "OK");
        assert_eq!(Response::reason(429), "Too Many Requests");
        assert_eq!(Response::reason(599), "Unknown");
    }

    #[test]
    fn error_status_mapping() {
        assert_eq!(HttpError::Timeout.status(), Some(408));
        assert_eq!(HttpError::HeadTooLarge.status(), Some(431));
        assert_eq!(HttpError::BodyTooLarge.status(), Some(413));
        assert_eq!(HttpError::LengthRequired.status(), Some(411));
        assert_eq!(HttpError::Bad("x").status(), Some(400));
        assert_eq!(HttpError::Unsupported("x").status(), Some(501));
        assert_eq!(HttpError::Disconnected.status(), None);
    }
}
