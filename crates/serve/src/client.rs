//! Tiny in-tree client for the SPOT service plane.
//!
//! Built for unreliable networks: every request runs under a deadline,
//! transport failures reconnect and retry under a deterministic
//! counter-based exponential backoff, `429` responses are retried after
//! the server's `Retry-After` hint, and partially-accepted ingest batches
//! resume from the `enqueued` count the server reports — so a batch is
//! never double-admitted and never silently truncated by a mid-batch
//! rejection.

use crate::http::{percent_encode, read_response, ClientResponse, HttpLimits};
use serde::Value;
use spot_types::{DataPoint, TenantId};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Retry behavior. Backoff is a pure function of the attempt counter —
/// `base * 2^attempt`, capped — so tests can pin the exact schedule.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Attempts per logical operation before giving up.
    pub max_attempts: u32,
    /// First backoff delay; attempt `n` sleeps `base * 2^n` (capped).
    pub backoff_base: Duration,
    /// Upper bound for one backoff sleep.
    pub backoff_cap: Duration,
    /// Wall-clock value of one `Retry-After` unit. Real servers mean
    /// seconds; tests shrink it so a soak finishes in milliseconds.
    pub retry_after_unit: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            retry_after_unit: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// Deterministic backoff for attempt `n` (0-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.min(16);
        (self.backoff_base * factor).min(self.backoff_cap)
    }
}

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure after exhausting reconnect attempts.
    Transport(String),
    /// The server answered with a non-retryable error status.
    Status {
        /// HTTP status code.
        status: u16,
        /// Response body (JSON error document).
        body: String,
    },
    /// Retryable statuses (`429`/`503`) kept coming until the attempt
    /// budget ran out.
    RetriesExhausted {
        /// Last status observed.
        status: u16,
        /// Last response body.
        body: String,
    },
    /// The server broke the protocol (unparseable response).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(msg) => write!(f, "transport failure: {msg}"),
            ClientError::Status { status, body } => write!(f, "HTTP {status}: {body}"),
            ClientError::RetriesExhausted { status, body } => {
                write!(f, "retries exhausted (last HTTP {status}: {body})")
            }
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// How one ingest call fared.
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestReport {
    /// Points the server admitted.
    pub enqueued: u64,
    /// Requests sent (1 for the happy path).
    pub requests: u32,
    /// `429` rejections absorbed along the way.
    pub backpressure_hits: u32,
    /// `503` rejections absorbed along the way.
    pub unavailable_hits: u32,
}

/// A keep-alive HTTP client bound to one server address.
pub struct ServeClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    limits: HttpLimits,
    /// Per-request deadline (connect, write, and read of the response).
    timeout: Duration,
    conn: Option<(TcpStream, Vec<u8>)>,
}

impl ServeClient {
    /// A client with default policy and a 5s per-request deadline.
    pub fn new(addr: SocketAddr) -> Self {
        ServeClient {
            addr,
            policy: RetryPolicy::default(),
            limits: HttpLimits::default(),
            timeout: Duration::from_secs(5),
            conn: None,
        }
    }

    /// Replace the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replace the per-request deadline.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// One request with transport-level retry: connection failures and
    /// torn responses reconnect and resend under the backoff schedule.
    /// Status codes are returned as-is — semantic retry (429/503) belongs
    /// to the operation wrappers below.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<ClientResponse, ClientError> {
        let mut last_err = String::new();
        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                std::thread::sleep(self.policy.backoff(attempt - 1));
            }
            match self.request_once(method, path, body) {
                Ok(response) => return Ok(response),
                Err(e) => {
                    // The connection is in an unknown state; reconnect.
                    self.conn = None;
                    last_err = e;
                }
            }
        }
        Err(ClientError::Transport(last_err))
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<ClientResponse, String> {
        let deadline = Instant::now() + self.timeout;
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)
                .map_err(|e| format!("connect {}: {e}", self.addr))?;
            let _ = stream.set_nodelay(true);
            self.conn = Some((stream, Vec::new()));
        }
        let (stream, carry) = self.conn.as_mut().expect("connection just ensured");

        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nhost: spot\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .unwrap_or(Duration::from_millis(1));
        stream
            .set_write_timeout(Some(remaining.max(Duration::from_millis(1))))
            .map_err(|e| e.to_string())?;
        stream
            .write_all(request.as_bytes())
            .map_err(|e| format!("send: {e}"))?;

        let response = read_response(stream, carry, &self.limits, deadline)
            .map_err(|e| format!("response: {}", e.describe()))?;
        if !response.keep_alive {
            self.conn = None;
        }
        Ok(response)
    }

    /// Register a tenant (optionally with training data). `dims` is
    /// mandatory; pass `seed` for reproducible detectors.
    pub fn register(
        &mut self,
        tenant: &TenantId,
        dims: usize,
        seed: u64,
        training: &[DataPoint],
    ) -> Result<ClientResponse, ClientError> {
        let body = format!(
            "{{\"dims\":{dims},\"seed\":{seed},\"training\":{}}}",
            points_json(training)
        );
        let path = format!("/tenants/{}", percent_encode(tenant.as_str()));
        let response = self.request("PUT", &path, Some(&body))?;
        expect_status(response, 201)
    }

    /// Evict a tenant.
    pub fn evict(&mut self, tenant: &TenantId) -> Result<ClientResponse, ClientError> {
        let path = format!("/tenants/{}", percent_encode(tenant.as_str()));
        let response = self.request("DELETE", &path, None)?;
        expect_status(response, 200)
    }

    /// Ingest a batch, absorbing backpressure: `429` waits out the
    /// server's `Retry-After` (scaled by the policy unit, floored by the
    /// backoff schedule) and resumes from the reported `enqueued` count;
    /// `503` backs off and retries the remainder the same way.
    pub fn ingest(
        &mut self,
        tenant: &TenantId,
        points: &[DataPoint],
    ) -> Result<IngestReport, ClientError> {
        let path = format!("/tenants/{}/ingest", percent_encode(tenant.as_str()));
        let mut report = IngestReport::default();
        let mut offset = 0usize;
        let mut attempt = 0u32;
        while offset < points.len() {
            let body = format!("{{\"points\":{}}}", points_json(&points[offset..]));
            let response = self.request("POST", &path, Some(&body))?;
            report.requests += 1;
            let accepted = parse_enqueued(&response).unwrap_or(0);
            offset += accepted;
            match response.status {
                200 => {
                    report.enqueued += accepted as u64;
                    return Ok(report);
                }
                429 | 503 => {
                    report.enqueued += accepted as u64;
                    if response.status == 429 {
                        report.backpressure_hits += 1;
                    } else {
                        report.unavailable_hits += 1;
                    }
                    attempt += 1;
                    if attempt >= self.policy.max_attempts {
                        return Err(ClientError::RetriesExhausted {
                            status: response.status,
                            body: response.text(),
                        });
                    }
                    let backoff = self.policy.backoff(attempt - 1);
                    let hinted = response
                        .header("retry-after")
                        .and_then(|v| v.parse::<u32>().ok())
                        .map(|units| self.policy.retry_after_unit * units);
                    // Honor the server hint but never retry sooner than
                    // our own schedule would.
                    std::thread::sleep(hinted.map_or(backoff, |h| h.max(backoff)));
                }
                status => {
                    return Err(ClientError::Status {
                        status,
                        body: response.text(),
                    });
                }
            }
        }
        Ok(report)
    }

    /// Force a synchronous drain of a tenant's queue on the server.
    pub fn drain(&mut self, tenant: &TenantId) -> Result<ClientResponse, ClientError> {
        let path = format!("/tenants/{}/drain", percent_encode(tenant.as_str()));
        let response = self.request("POST", &path, Some("{}"))?;
        expect_status(response, 200)
    }

    /// Take a durable checkpoint of the whole fleet.
    pub fn checkpoint(&mut self) -> Result<ClientResponse, ClientError> {
        let response = self.request("POST", "/admin/checkpoint", Some("{}"))?;
        expect_status(response, 200)
    }

    /// Take an incremental (delta) checkpoint chained to the previous
    /// generation; the server falls back to a full checkpoint when no
    /// chain is armed or a rebase is due.
    pub fn checkpoint_delta(&mut self) -> Result<ClientResponse, ClientError> {
        let response = self.request("POST", "/admin/checkpoint?mode=delta", Some("{}"))?;
        expect_status(response, 200)
    }

    /// Restore a tenant from the newest valid checkpoint generation.
    pub fn restore(&mut self, tenant: &TenantId) -> Result<ClientResponse, ClientError> {
        let path = format!("/tenants/{}/restore", percent_encode(tenant.as_str()));
        let response = self.request("POST", &path, Some("{}"))?;
        expect_status(response, 200)
    }

    /// Per-tenant stats document (raw JSON).
    pub fn tenant_stats(&mut self, tenant: &TenantId) -> Result<String, ClientError> {
        let path = format!("/tenants/{}/stats", percent_encode(tenant.as_str()));
        let response = self.request("GET", &path, None)?;
        Ok(expect_status(response, 200)?.text())
    }

    /// Whole-service stats document (raw JSON).
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let response = self.request("GET", "/stats", None)?;
        Ok(expect_status(response, 200)?.text())
    }

    /// `true` when `/healthz` answers 200.
    pub fn healthy(&mut self) -> bool {
        matches!(self.request("GET", "/healthz", None), Ok(r) if r.status == 200)
    }

    /// `true` when `/readyz` answers 200.
    pub fn ready(&mut self) -> bool {
        matches!(self.request("GET", "/readyz", None), Ok(r) if r.status == 200)
    }
}

fn expect_status(response: ClientResponse, want: u16) -> Result<ClientResponse, ClientError> {
    if response.status == want {
        Ok(response)
    } else {
        Err(ClientError::Status {
            status: response.status,
            body: response.text(),
        })
    }
}

fn parse_enqueued(response: &ClientResponse) -> Option<usize> {
    let doc: Value = serde_json::from_str(&response.text()).ok()?;
    match doc.get_field("enqueued") {
        Some(Value::U64(n)) => usize::try_from(*n).ok(),
        Some(Value::I64(n)) => usize::try_from(*n).ok(),
        _ => None,
    }
}

/// Render points as a JSON array-of-arrays with full `f64` round-trip
/// fidelity (the serde_json compat crate prints floats losslessly).
fn points_json(points: &[DataPoint]) -> String {
    let value = Value::Array(
        points
            .iter()
            .map(|p| Value::Array(p.values().iter().map(|v| Value::F64(*v)).collect()))
            .collect(),
    );
    serde_json::to_string(&value).expect("value tree always renders")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic() {
        let policy = RetryPolicy {
            max_attempts: 8,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(100),
            retry_after_unit: Duration::from_millis(1),
        };
        assert_eq!(policy.backoff(0), Duration::from_millis(10));
        assert_eq!(policy.backoff(1), Duration::from_millis(20));
        assert_eq!(policy.backoff(2), Duration::from_millis(40));
        assert_eq!(policy.backoff(3), Duration::from_millis(80));
        // Capped from here on.
        assert_eq!(policy.backoff(4), Duration::from_millis(100));
        assert_eq!(policy.backoff(31), Duration::from_millis(100));
    }

    #[test]
    fn points_render_losslessly() {
        let p = vec![DataPoint::new(vec![0.1, 2.5e-3, 1.0 / 3.0])];
        let text = points_json(&p);
        let doc: Value = serde_json::from_str(&text).unwrap();
        let row = doc.get_index(0).unwrap();
        for (i, want) in [0.1, 2.5e-3, 1.0 / 3.0].iter().enumerate() {
            match row.get_index(i).unwrap() {
                Value::F64(f) => assert_eq!(f, want, "lossy float at {i}"),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }
}
