//! The SPOT fleet HTTP server: bounded accept, worker pool, pump thread,
//! and the graceful shutdown protocol.
//!
//! Robustness invariants (see `docs/service.md`):
//!
//! - **Bounded everything.** At most [`ServeConfig::max_connections`]
//!   accepted connections exist at once; beyond that the accept loop sheds
//!   with a best-effort `503` and an immediate close, so overload degrades
//!   to fast rejections instead of unbounded queues.
//! - **Deadlines everywhere.** Each request must arrive within
//!   [`ServeConfig::read_timeout`] of its first byte, responses must flush
//!   within [`ServeConfig::write_timeout`], and idle keep-alive
//!   connections are reclaimed after [`ServeConfig::idle_timeout`].
//! - **Ordered verdict delivery.** A configured [`VerdictSink`] observes
//!   every tenant's verdicts in exact arrival order: the pump thread, the
//!   HTTP drain route, and the shutdown drain all serialize through one
//!   sink lock, and the fleet's per-tenant receiver mutex orders the
//!   drains themselves.
//! - **Graceful shutdown loses nothing admitted.** [`SpotServer::shutdown`]
//!   stops accepting, closes idle connections, lets in-flight requests
//!   finish under [`ServeConfig::drain_deadline`] (then force-closes the
//!   stragglers), gates fleet admission behind
//!   [`SpotError::ShuttingDown`], drains every tenant queue into the sink,
//!   and takes a final durable checkpoint when a store is attached.

use crate::http::{read_request, HttpError, HttpLimits, NextRequest, Response};
use crate::router::route;
use spot::Verdict;
use spot_runtime::{CheckpointStore, SpotFleet};
use spot_types::{Result, SpotError, TenantId};
use std::collections::{HashMap, VecDeque};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Verdict consumer fed by the pump thread and the drain paths, always in
/// per-tenant arrival order.
pub type VerdictSink = Arc<dyn Fn(&TenantId, &[Verdict]) + Send + Sync>;

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// Hard cap on accepted connections (active + handoff queue); beyond
    /// it the accept loop sheds with `503`.
    pub max_connections: usize,
    /// Budget for reading one request once its first byte arrived
    /// (slow-loris defense).
    pub read_timeout: Duration,
    /// Budget for writing one response.
    pub write_timeout: Duration,
    /// How long an idle keep-alive connection may wait for its next
    /// request.
    pub idle_timeout: Duration,
    /// How long [`SpotServer::shutdown`] waits for in-flight requests
    /// before force-closing their connections.
    pub drain_deadline: Duration,
    /// Pump thread sleep between passes that found no verdicts.
    pub pump_interval: Duration,
    /// Wire-level input limits.
    pub limits: HttpLimits,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            max_connections: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(3),
            pump_interval: Duration::from_millis(1),
            limits: HttpLimits::default(),
        }
    }
}

/// Monotonic service counters, all updated with relaxed atomics (they are
/// observability, not synchronization).
#[derive(Debug, Default)]
pub(crate) struct ServerCounters {
    pub accepted: AtomicU64,
    pub shed_connections: AtomicU64,
    pub requests: AtomicU64,
    pub timeouts: AtomicU64,
    pub bad_requests: AtomicU64,
    pub forced_closes: AtomicU64,
}

/// Snapshot of the server counters (see [`SpotServer::stats`]).
#[derive(Debug, Clone, Copy)]
pub struct ServerStats {
    /// Connections accepted (including ones later shed is **not** counted
    /// here; shed connections are rejected at accept time).
    pub accepted: u64,
    /// Connections rejected at accept time because the cap was reached.
    pub shed_connections: u64,
    /// Requests parsed and routed.
    pub requests: u64,
    /// Requests abandoned because the read deadline expired.
    pub timeouts: u64,
    /// Connections closed on malformed/oversized input.
    pub bad_requests: u64,
    /// Connections force-closed by the shutdown drain deadline.
    pub forced_closes: u64,
    /// Connections currently being served.
    pub active_connections: usize,
    /// Accepted connections waiting for a worker.
    pub queued_connections: usize,
}

/// What one graceful shutdown accomplished.
#[derive(Debug, Clone)]
pub struct ShutdownReport {
    /// Verdicts produced by the final queue drain (points that were
    /// admitted but not yet pumped when shutdown began).
    pub drained: u64,
    /// Generation of the final durable checkpoint, when a store is
    /// attached.
    pub generation: Option<u64>,
    /// In-flight connections cut by the drain deadline.
    pub forced_closes: u64,
    /// Total requests the server routed over its lifetime.
    pub requests: u64,
    /// Tenants whose final drain failed (quarantined mid-flight); their
    /// queued points stay recoverable through the WAL.
    pub undrained: Vec<TenantId>,
}

/// State shared between the router and the connection machinery.
pub(crate) struct AppState {
    pub fleet: SpotFleet,
    pub store: Option<CheckpointStore>,
    pub draining: AtomicBool,
    pub counters: ServerCounters,
    pub sink: Option<VerdictSink>,
    /// Serializes every drain-and-deliver so the sink sees arrival order.
    pub sink_lock: Mutex<()>,
}

struct ConnEntry {
    stream: TcpStream,
    /// True while a fully-received request is being processed; shutdown
    /// force-closes idle (`false`) connections immediately and only waits
    /// on busy ones.
    busy: Arc<AtomicBool>,
}

struct Shared {
    app: AppState,
    config: ServeConfig,
    /// Accepted connections awaiting a worker.
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    accepting: AtomicBool,
    stop_workers: AtomicBool,
    stop_pump: AtomicBool,
    /// Connections currently owned by workers.
    active: AtomicUsize,
    /// Registry of live connections (clone + busy flag) for shutdown.
    conns: Mutex<HashMap<u64, ConnEntry>>,
    next_conn: AtomicU64,
}

/// Builder for [`SpotServer`].
pub struct ServerBuilder {
    fleet: SpotFleet,
    config: ServeConfig,
    store: Option<CheckpointStore>,
    sink: Option<VerdictSink>,
    pump: bool,
}

impl ServerBuilder {
    /// Replace the default [`ServeConfig`].
    pub fn config(mut self, config: ServeConfig) -> Self {
        self.config = config;
        self
    }

    /// Attach a checkpoint store: enables `/admin/checkpoint` and
    /// `/tenants/{id}/restore`, and makes shutdown take a final durable
    /// checkpoint.
    pub fn store(mut self, store: CheckpointStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Attach a verdict sink fed in per-tenant arrival order.
    pub fn verdict_sink(mut self, sink: VerdictSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Enable/disable the background pump thread (default on). With the
    /// pump off, verdicts only move on explicit `/drain` requests and at
    /// shutdown — useful for deterministic tests.
    pub fn pump(mut self, enabled: bool) -> Self {
        self.pump = enabled;
        self
    }

    /// Bind and start serving. `addr` with port `0` picks a free port
    /// (see [`SpotServer::local_addr`]).
    pub fn bind(self, addr: impl ToSocketAddrs) -> Result<SpotServer> {
        let listener = TcpListener::bind(addr).map_err(|e| SpotError::Io(e.to_string()))?;
        let addr = listener
            .local_addr()
            .map_err(|e| SpotError::Io(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| SpotError::Io(e.to_string()))?;

        let shared = Arc::new(Shared {
            app: AppState {
                fleet: self.fleet,
                store: self.store,
                draining: AtomicBool::new(false),
                counters: ServerCounters::default(),
                sink: self.sink,
                sink_lock: Mutex::new(()),
            },
            config: self.config,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            accepting: AtomicBool::new(true),
            stop_workers: AtomicBool::new(false),
            stop_pump: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
        });

        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("spot-serve-accept".to_string())
                    .spawn(move || accept_loop(&shared, listener))
                    .map_err(|e| SpotError::Io(e.to_string()))?,
            );
        }
        for i in 0..shared.config.workers.max(1) {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("spot-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(|e| SpotError::Io(e.to_string()))?,
            );
        }
        let pump = if self.pump {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("spot-serve-pump".to_string())
                    .spawn(move || pump_loop(&shared))
                    .map_err(|e| SpotError::Io(e.to_string()))?,
            )
        } else {
            None
        };

        Ok(SpotServer {
            shared,
            addr,
            threads,
            pump,
            stopped: false,
        })
    }
}

/// A running fleet server. Dropping it without calling
/// [`SpotServer::shutdown`] stops the threads abruptly (no final drain or
/// checkpoint).
pub struct SpotServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
    pump: Option<JoinHandle<()>>,
    stopped: bool,
}

impl SpotServer {
    /// Start building a server over `fleet`.
    pub fn builder(fleet: SpotFleet) -> ServerBuilder {
        ServerBuilder {
            fleet,
            config: ServeConfig::default(),
            store: None,
            sink: None,
            pump: true,
        }
    }

    /// The bound address (resolves port `0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The fleet this server fronts.
    pub fn fleet(&self) -> &SpotFleet {
        &self.shared.app.fleet
    }

    /// Whether a graceful shutdown is in progress.
    pub fn is_draining(&self) -> bool {
        self.shared.app.draining.load(Ordering::Acquire)
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.app.counters;
        ServerStats {
            accepted: c.accepted.load(Ordering::Relaxed),
            shed_connections: c.shed_connections.load(Ordering::Relaxed),
            requests: c.requests.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            bad_requests: c.bad_requests.load(Ordering::Relaxed),
            forced_closes: c.forced_closes.load(Ordering::Relaxed),
            active_connections: self.shared.active.load(Ordering::Relaxed),
            queued_connections: lock(&self.shared.queue).len(),
        }
    }

    /// The graceful shutdown protocol, in order:
    ///
    /// 1. Set the draining flag and gate fleet admission
    ///    ([`SpotError::ShuttingDown`]); stop accepting.
    /// 2. Close idle keep-alive connections immediately; wait up to
    ///    [`ServeConfig::drain_deadline`] for in-flight requests, then
    ///    force-close stragglers.
    /// 3. Stop the worker and pump threads.
    /// 4. Drain every tenant queue into the verdict sink (arrival order
    ///    preserved) — the admission gate guarantees the backlog is
    ///    frozen, so nothing admitted is missed.
    /// 5. Take a final durable checkpoint when a store is attached: after
    ///    this, a process exit loses nothing the WAL admitted.
    /// 6. Re-open fleet admission (the in-process fleet outlives the
    ///    server and stays usable).
    pub fn shutdown(mut self) -> Result<ShutdownReport> {
        let shared = Arc::clone(&self.shared);
        let app = &shared.app;

        // 1. Gate admission, stop accepting.
        app.draining.store(true, Ordering::Release);
        app.fleet.begin_shutdown();
        shared.accepting.store(false, Ordering::Release);

        // 2. Close idle connections now; they are not in-flight work.
        for entry in lock(&shared.conns).values() {
            if !entry.busy.load(Ordering::Acquire) {
                let _ = entry.stream.shutdown(Shutdown::Both);
            }
        }
        let deadline = Instant::now() + shared.config.drain_deadline;
        while Instant::now() < deadline {
            if shared.active.load(Ordering::Acquire) == 0 && lock(&shared.queue).is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let stragglers: Vec<_> = lock(&shared.conns).keys().copied().collect();
        if !stragglers.is_empty() {
            let conns = lock(&shared.conns);
            for id in &stragglers {
                if let Some(entry) = conns.get(id) {
                    let _ = entry.stream.shutdown(Shutdown::Both);
                    app.counters.forced_closes.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        // 3. Stop the threads (workers exit promptly: force-closed sockets
        // fail their reads, queued connections are closed on sight).
        self.stop_threads();

        // 4. Frozen-backlog drain, in sink order.
        let mut drained = 0u64;
        let mut undrained = Vec::new();
        for id in app.fleet.tenant_ids() {
            let _order = lock(&app.sink_lock);
            match app.fleet.drain_fully(&id) {
                Ok(verdicts) => {
                    drained += verdicts.len() as u64;
                    if let Some(sink) = &app.sink {
                        if !verdicts.is_empty() {
                            sink(&id, &verdicts);
                        }
                    }
                }
                Err(_) => undrained.push(id),
            }
        }

        // 5. Final durable checkpoint.
        let generation = match &app.store {
            Some(store) => Some(app.fleet.checkpoint_durable(store)?),
            None => None,
        };

        // 6. The fleet outlives the server.
        app.fleet.end_shutdown();

        Ok(ShutdownReport {
            drained,
            generation,
            forced_closes: app.counters.forced_closes.load(Ordering::Relaxed),
            requests: app.counters.requests.load(Ordering::Relaxed),
            undrained,
        })
    }

    /// Stop and join every thread; idempotent.
    fn stop_threads(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        let shared = &self.shared;
        shared.accepting.store(false, Ordering::Release);
        shared.stop_workers.store(true, Ordering::Release);
        shared.stop_pump.store(true, Ordering::Release);
        shared.queue_cv.notify_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.pump.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SpotServer {
    fn drop(&mut self) {
        // Abrupt stop: no final drain/checkpoint, but no leaked threads
        // either. Cut every live socket so blocked reads return.
        self.shared.app.draining.store(true, Ordering::Release);
        for entry in lock(&self.shared.conns).values() {
            let _ = entry.stream.shutdown(Shutdown::Both);
        }
        self.stop_threads();
    }
}

fn accept_loop(shared: &Shared, listener: TcpListener) {
    while shared.accepting.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.app.counters.accepted.fetch_add(1, Ordering::Relaxed);
                let live = shared.active.load(Ordering::Acquire) + lock(&shared.queue).len();
                if live >= shared.config.max_connections {
                    shed(shared, stream);
                    continue;
                }
                lock(&shared.queue).push_back(stream);
                shared.queue_cv.notify_one();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Nonblocking accept so this loop can observe shutdown;
                // the sleep bounds the idle poll rate.
                std::thread::sleep(Duration::from_micros(500));
            }
            Err(_) => {
                // Transient accept failure (e.g. EMFILE under storm):
                // back off briefly instead of spinning.
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

/// Best-effort `503` for a connection rejected at accept time.
fn shed(shared: &Shared, mut stream: TcpStream) {
    shared
        .app
        .counters
        .shed_connections
        .fetch_add(1, Ordering::Relaxed);
    let body = Response::json(503, "{\"error\":\"connection capacity exhausted\"}")
        .header("retry-after", "1");
    let _ = body.write_to(
        &mut stream,
        true,
        Instant::now() + Duration::from_millis(100),
    );
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(stream) = queue.pop_front() {
                    break stream;
                }
                if shared.stop_workers.load(Ordering::Acquire) {
                    return;
                }
                queue = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        };
        shared.active.fetch_add(1, Ordering::AcqRel);
        serve_connection(shared, stream);
        shared.active.fetch_sub(1, Ordering::AcqRel);
    }
}

fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let app = &shared.app;
    let config = &shared.config;
    let _ = stream.set_nodelay(true);

    let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    let busy = Arc::new(AtomicBool::new(false));
    if let Ok(clone) = stream.try_clone() {
        lock(&shared.conns).insert(
            conn_id,
            ConnEntry {
                stream: clone,
                busy: Arc::clone(&busy),
            },
        );
    }

    let mut carry = Vec::new();
    loop {
        // A connection picked up (or coming back around) mid-drain is not
        // in-flight work; close it instead of waiting for its next request.
        if app.draining.load(Ordering::Acquire) {
            break;
        }
        match read_request(
            &mut stream,
            &mut carry,
            &config.limits,
            config.idle_timeout,
            config.read_timeout,
        ) {
            Ok(NextRequest::Request(req)) => {
                busy.store(true, Ordering::Release);
                let response = route(app, &req);
                let close = !req.keep_alive || app.draining.load(Ordering::Acquire);
                let wrote = response
                    .write_to(&mut stream, close, Instant::now() + config.write_timeout)
                    .is_ok();
                busy.store(false, Ordering::Release);
                if !wrote || close {
                    break;
                }
            }
            Ok(NextRequest::Closed) | Ok(NextRequest::Idle) => break,
            Err(error) => {
                // A `None` status is a mid-request disconnect: nobody is
                // listening for a response, so close silently.
                if let Some(status) = error.status() {
                    let counter = if matches!(error, HttpError::Timeout) {
                        &app.counters.timeouts
                    } else {
                        &app.counters.bad_requests
                    };
                    counter.fetch_add(1, Ordering::Relaxed);
                    let body = format!("{{\"error\":{:?}}}", error.describe());
                    let _ = Response::json(status, body).write_to(
                        &mut stream,
                        true,
                        Instant::now() + config.write_timeout,
                    );
                }
                break;
            }
        }
    }

    lock(&shared.conns).remove(&conn_id);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Background verdict mover: micro-batch drain per tenant per pass (the
/// fleet's fairness unit), delivering to the sink under the order lock.
fn pump_loop(shared: &Shared) {
    let app = &shared.app;
    loop {
        if shared.stop_pump.load(Ordering::Acquire) {
            return;
        }
        let mut moved = false;
        for id in app.fleet.tenant_ids() {
            if shared.stop_pump.load(Ordering::Acquire) {
                return;
            }
            let _order = lock(&app.sink_lock);
            // Evicted or quarantined mid-pass → skip; the supervisor (or
            // an explicit restore) owns unhealthy tenants.
            if let Ok(verdicts) = app.fleet.drain(&id) {
                if !verdicts.is_empty() {
                    moved = true;
                    if let Some(sink) = &app.sink {
                        sink(&id, &verdicts);
                    }
                }
            }
        }
        if !moved {
            std::thread::sleep(shared.config.pump_interval);
        }
    }
}

/// Poison-tolerant lock: the shared state is a registry of connections and
/// counters with no invariants a panicking holder could break mid-update.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}
