//! Route dispatch and the status-code ↔ [`SpotError`] mapping.
//!
//! Every handler is a pure function of the shared [`AppState`] and one
//! parsed request; connection concerns (deadlines, keep-alive, shedding)
//! live in `server.rs`. The observability routes (`/healthz`, `/readyz`,
//! `/stats`, per-tenant stats) ride only the lock-free monitoring plane —
//! seqlock stats snapshots, `LiveCounters`, and atomic queue/health
//! mirrors — never a detector lock, so they stay responsive while every
//! worker is busy processing batches.

use crate::http::{percent_decode, Method, Request, Response};
use crate::server::AppState;
use serde::Value;
use spot::SpotBuilder;
use spot_types::{DataPoint, DomainBounds, SpotError, TenantId};
use std::sync::atomic::Ordering;

/// HTTP status for a [`SpotError`] surfaced by a handler.
///
/// | error | status |
/// |---|---|
/// | `UnknownTenant` | 404 |
/// | `DuplicateTenant`, `NotLearned` | 409 |
/// | `TenantPoisoned`, `ShuttingDown` | 503 |
/// | input/config errors | 400 |
/// | persistence corruption / I/O | 500 |
pub fn status_for(err: &SpotError) -> u16 {
    match err {
        SpotError::UnknownTenant(_) => 404,
        SpotError::DuplicateTenant(_) | SpotError::NotLearned => 409,
        SpotError::TenantPoisoned { .. } | SpotError::ShuttingDown => 503,
        SpotError::DimensionMismatch { .. }
        | SpotError::InvalidConfig(_)
        | SpotError::EmptyTrainingSet
        | SpotError::TooManyDimensions(_)
        | SpotError::NonFiniteValue { .. } => 400,
        SpotError::UnsupportedSnapshotVersion(_)
        | SpotError::SnapshotCorrupt(_)
        | SpotError::WalCorrupt(_)
        | SpotError::Io(_) => 500,
    }
}

/// `Retry-After` seconds for a full-queue rejection, derived from queue
/// occupancy: one second per micro-batch pump pass the backlog needs,
/// clamped to `1..=8`. Deterministic, so clients and tests can pin it.
pub fn retry_after_secs(queued: usize, micro_batch: usize) -> u64 {
    (queued.div_ceil(micro_batch.max(1)) as u64).clamp(1, 8)
}

/// Dispatch one request.
pub(crate) fn route(state: &AppState, req: &Request) -> Response {
    state.counters.requests.fetch_add(1, Ordering::Relaxed);
    let (path, query) = match req.target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (req.target.as_str(), ""),
    };
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let draining = state.draining.load(Ordering::Acquire);

    // During a graceful drain, mutating routes are refused up front so the
    // drain phase sees a frozen fleet; read-only routes keep answering
    // (ops will poll /stats while the drain runs).
    if draining && req.method != Method::Get && !matches!(segments.as_slice(), ["healthz"]) {
        return error_body(503, "the fleet is shutting down; ingestion is gated", None);
    }

    match (req.method, segments.as_slice()) {
        (Method::Get, ["healthz"]) => healthz(state, draining),
        (Method::Get, ["readyz"]) => readyz(state, draining),
        (Method::Get, ["stats"]) => stats(state, draining),
        (Method::Get, ["tenants", id, "stats"]) => with_tenant(id, |id| tenant_stats(state, id)),
        (Method::Put, ["tenants", id]) => with_tenant(id, |id| register(state, id, &req.body)),
        (Method::Delete, ["tenants", id]) => with_tenant(id, |id| evict(state, id)),
        (Method::Post, ["tenants", id, "ingest"]) => {
            with_tenant(id, |id| ingest(state, id, &req.body))
        }
        (Method::Post, ["tenants", id, "drain"]) => with_tenant(id, |id| drain(state, id)),
        (Method::Post, ["tenants", id, "restore"]) => with_tenant(id, |id| restore(state, id)),
        (Method::Post, ["admin", "checkpoint"]) => checkpoint(state, query),
        (_, ["healthz" | "readyz" | "stats"]) | (_, ["admin", "checkpoint"]) => {
            error_body(405, "method not allowed", None)
        }
        (_, ["tenants", ..]) => error_body(405, "method not allowed", None),
        _ => error_body(404, "no such route", None),
    }
}

/// Decode the tenant path segment and run the handler.
fn with_tenant(raw: &str, f: impl FnOnce(&TenantId) -> Response) -> Response {
    let decoded = match percent_decode(raw) {
        Some(d) => d,
        None => return error_body(400, "malformed percent-encoding in tenant id", None),
    };
    match TenantId::new(&decoded) {
        Ok(id) => f(&id),
        Err(e) => error_body(400, &e.to_string(), None),
    }
}

fn healthz(state: &AppState, draining: bool) -> Response {
    if draining {
        Response::json(503, obj(vec![("status", Value::Str("draining".into()))]))
    } else {
        Response::json(
            200,
            obj(vec![
                ("status", Value::Str("ok".into())),
                ("tenants", Value::U64(state.fleet.len() as u64)),
            ]),
        )
    }
}

fn readyz(state: &AppState, draining: bool) -> Response {
    let fs = state.fleet.stats();
    if draining {
        return Response::json(503, obj(vec![("status", Value::Str("draining".into()))]));
    }
    // Ready means the fleet can make progress: not draining and not every
    // tenant dead. An empty fleet is ready (registration is the first
    // request a fresh deployment sees).
    let alive = fs.tenants - fs.quarantined - fs.failed;
    if fs.tenants > 0 && alive == 0 {
        return Response::json(
            503,
            obj(vec![
                ("status", Value::Str("degraded".into())),
                ("quarantined", Value::U64(fs.quarantined as u64)),
                ("failed", Value::U64(fs.failed as u64)),
            ]),
        );
    }
    Response::json(
        200,
        obj(vec![
            ("status", Value::Str("ready".into())),
            ("tenants", Value::U64(fs.tenants as u64)),
            ("queued", Value::U64(fs.queued as u64)),
        ]),
    )
}

fn stats(state: &AppState, draining: bool) -> Response {
    let fs = state.fleet.stats();
    let fp = state.fleet.footprint();
    let c = &state.counters;
    Response::json(
        200,
        obj(vec![
            ("draining", Value::Bool(draining)),
            (
                "fleet",
                obj_value(vec![
                    ("tenants", Value::U64(fs.tenants as u64)),
                    ("quarantined", Value::U64(fs.quarantined as u64)),
                    ("failed", Value::U64(fs.failed as u64)),
                    ("queued", Value::U64(fs.queued as u64)),
                    ("processed", Value::U64(fs.processed)),
                    ("outliers", Value::U64(fs.outliers)),
                    ("evolutions", Value::U64(fs.evolutions)),
                    ("drift_events", Value::U64(fs.drift_events)),
                    ("shed", Value::U64(fs.shed)),
                    ("panics", Value::U64(fs.panics)),
                    ("recoveries", Value::U64(fs.recoveries)),
                    ("wal_prune_failures", Value::U64(fs.wal_prune_failures)),
                    ("approx_bytes", Value::U64(fp.approx_bytes as u64)),
                ]),
            ),
            (
                "server",
                obj_value(vec![
                    ("accepted", Value::U64(c.accepted.load(Ordering::Relaxed))),
                    (
                        "shed_connections",
                        Value::U64(c.shed_connections.load(Ordering::Relaxed)),
                    ),
                    ("requests", Value::U64(c.requests.load(Ordering::Relaxed))),
                    ("timeouts", Value::U64(c.timeouts.load(Ordering::Relaxed))),
                    (
                        "bad_requests",
                        Value::U64(c.bad_requests.load(Ordering::Relaxed)),
                    ),
                    (
                        "forced_closes",
                        Value::U64(c.forced_closes.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
        ]),
    )
}

fn tenant_stats(state: &AppState, id: &TenantId) -> Response {
    let stats = match state.fleet.tenant_stats(id) {
        Ok(s) => s,
        Err(e) => return spot_error(&e, None),
    };
    let queued = state.fleet.queue_len(id).unwrap_or(0);
    let health = state.fleet.health_tag(id).unwrap_or("unknown");
    let wal = match state.fleet.wal_position(id) {
        Ok(Some(pos)) => Value::U64(pos),
        _ => Value::Null,
    };
    Response::json(
        200,
        obj(vec![
            ("tenant", Value::Str(id.to_string())),
            ("health", Value::Str(health.to_string())),
            ("queued", Value::U64(queued as u64)),
            ("processed", Value::U64(stats.processed)),
            ("outliers", Value::U64(stats.outliers)),
            ("evolutions", Value::U64(stats.evolutions)),
            ("os_added", Value::U64(stats.os_added)),
            ("drift_events", Value::U64(stats.drift_events)),
            ("cells_pruned", Value::U64(stats.cells_pruned)),
            ("wal_position", wal),
        ]),
    )
}

fn register(state: &AppState, id: &TenantId, body: &[u8]) -> Response {
    let doc = match parse_body(body) {
        Ok(d) => d,
        Err(r) => return r,
    };
    let dims = match doc.get_field("dims").and_then(as_usize) {
        Some(d) if d > 0 => d,
        _ => return error_body(400, "field \"dims\" (positive integer) is required", None),
    };
    let bounds = match doc.get_field("bounds") {
        None => DomainBounds::unit(dims),
        Some(b) => {
            let min = b.get_field("min").and_then(as_f64_array);
            let max = b.get_field("max").and_then(as_f64_array);
            match (min, max) {
                (Some(min), Some(max)) => match DomainBounds::new(min, max) {
                    Ok(b) => b,
                    Err(e) => return spot_error(&e, None),
                },
                _ => {
                    return error_body(400, "\"bounds\" needs \"min\" and \"max\" arrays", None);
                }
            }
        }
    };
    let mut builder = SpotBuilder::new(bounds).executor(state.fleet.executor().clone());
    if let Some(g) = doc.get_field("granularity").and_then(as_usize) {
        builder = builder.granularity(g.min(u16::MAX as usize) as u16);
    }
    if let Some(d) = doc.get_field("fs_max_dimension").and_then(as_usize) {
        builder = builder.fs_max_dimension(d);
    }
    if let Some(s) = doc.get_field("seed").and_then(as_u64) {
        builder = builder.seed(s);
    }
    if let Some(rd) = doc.get_field("rd_threshold").and_then(as_f64) {
        builder = builder.rd_threshold(rd);
    }
    let config = match builder.build_config() {
        Ok(c) => c,
        Err(e) => return spot_error(&e, None),
    };
    if let Err(e) = state.fleet.register(id.clone(), config) {
        return spot_error(&e, None);
    }
    let training = match doc.get_field("training") {
        None => Vec::new(),
        Some(t) => match as_points(t) {
            Some(points) => points,
            None => {
                // Registration must stay atomic: a half-registered tenant
                // with unparseable training data is removed again.
                let _ = state.fleet.evict(id);
                return error_body(400, "\"training\" must be an array of number arrays", None);
            }
        },
    };
    let trained = training.len();
    if !training.is_empty() {
        if let Err(e) = state.fleet.learn(id, &training) {
            let _ = state.fleet.evict(id);
            return spot_error(&e, None);
        }
    }
    Response::json(
        201,
        obj(vec![
            ("tenant", Value::Str(id.to_string())),
            ("trained", Value::U64(trained as u64)),
        ]),
    )
}

fn evict(state: &AppState, id: &TenantId) -> Response {
    match state.fleet.evict(id) {
        Ok(()) => Response::json(200, obj(vec![("evicted", Value::Str(id.to_string()))])),
        Err(e) => spot_error(&e, None),
    }
}

fn ingest(state: &AppState, id: &TenantId, body: &[u8]) -> Response {
    let doc = match parse_body(body) {
        Ok(d) => d,
        Err(r) => return r,
    };
    let points = match doc.get_field("points").and_then(as_points) {
        Some(p) => p,
        None => return error_body(400, "\"points\" must be an array of number arrays", None),
    };
    // Validate the whole batch *before* admitting anything: the fleet
    // defers point validation to drain time, where one bad point discards
    // its entire micro-batch — the HTTP boundary is exactly the untrusted
    // upstream its docs tell to validate at.
    let dims = match state.fleet.tenant_dims(id) {
        Ok(d) => d,
        Err(e) => return spot_error(&e, None),
    };
    for point in &points {
        if point.dims() != dims {
            return spot_error(
                &SpotError::DimensionMismatch {
                    expected: dims,
                    got: point.dims(),
                },
                Some(0),
            );
        }
        if let Some(dim) = point.values().iter().position(|v| v.is_nan()) {
            return spot_error(&SpotError::NonFiniteValue { dim }, Some(0));
        }
    }
    let mut enqueued = 0u64;
    for point in points {
        match state.fleet.try_ingest(id, point) {
            Ok(true) => enqueued += 1,
            Ok(false) => {
                // Queue full under the Block policy (Shed/Sample absorb the
                // point and return true). 429 carries how far we got plus a
                // Retry-After derived from the backlog, so a well-behaved
                // client resumes from the tail after the pump catches up.
                let queued = state.fleet.queue_len(id).unwrap_or(0);
                let config = state.fleet.config();
                let secs = retry_after_secs(queued, config.micro_batch);
                return error_body(429, "tenant ingest queue is full", Some(enqueued))
                    .header("retry-after", secs.to_string());
            }
            Err(e) => return spot_error(&e, Some(enqueued)),
        }
    }
    Response::json(200, obj(vec![("enqueued", Value::U64(enqueued))]))
}

fn drain(state: &AppState, id: &TenantId) -> Response {
    // The sink lock serializes this with the pump thread so a configured
    // verdict sink observes every tenant's verdicts in arrival order.
    let _order = state.sink_lock.lock().unwrap_or_else(|e| e.into_inner());
    match state.fleet.drain_fully(id) {
        Ok(verdicts) => {
            let outliers = verdicts.iter().filter(|v| v.outlier).count();
            let drained = verdicts.len();
            if let Some(sink) = &state.sink {
                if !verdicts.is_empty() {
                    sink(id, &verdicts);
                }
            }
            Response::json(
                200,
                obj(vec![
                    ("drained", Value::U64(drained as u64)),
                    ("outliers", Value::U64(outliers as u64)),
                ]),
            )
        }
        Err(e) => spot_error(&e, None),
    }
}

fn restore(state: &AppState, id: &TenantId) -> Response {
    let store = match &state.store {
        Some(s) => s,
        None => return error_body(409, "no checkpoint store attached", None),
    };
    let scan = match store.load_latest() {
        Ok(s) => s,
        Err(e) => return spot_error(&e, None),
    };
    let (generation, checkpoint) = match scan.recovered {
        Some(found) => found,
        None => return error_body(404, "no valid checkpoint generation", None),
    };
    match state.fleet.restore_tenant(&checkpoint, id) {
        Ok(()) => Response::json(
            200,
            obj(vec![
                ("tenant", Value::Str(id.to_string())),
                ("generation", Value::U64(generation)),
            ]),
        ),
        Err(e) => spot_error(&e, None),
    }
}

fn checkpoint(state: &AppState, query: &str) -> Response {
    let store = match &state.store {
        Some(s) => s,
        None => return error_body(409, "no checkpoint store attached", None),
    };
    // `?mode=delta` asks for an incremental generation (the fleet still
    // rebases to a full checkpoint when the chain calls for it); the
    // default is a full checkpoint.
    let delta = match query
        .split('&')
        .find_map(|kv| kv.strip_prefix("mode="))
        .unwrap_or("full")
    {
        "full" => false,
        "delta" => true,
        other => {
            return error_body(
                400,
                &format!("unknown checkpoint mode {other:?}; expected \"full\" or \"delta\""),
                None,
            )
        }
    };
    let result = if delta {
        state.fleet.checkpoint_durable_delta(store)
    } else {
        state.fleet.checkpoint_durable(store)
    };
    match result {
        Ok(generation) => Response::json(
            200,
            obj(vec![
                ("generation", Value::U64(generation)),
                (
                    "delta",
                    Value::Bool(store.is_delta(generation).unwrap_or(false)),
                ),
            ]),
        ),
        Err(e) => spot_error(&e, None),
    }
}

/// Render a [`SpotError`] as its mapped status with a JSON body; ingest
/// handlers pass `enqueued` so partially accepted batches are resumable.
fn spot_error(e: &SpotError, enqueued: Option<u64>) -> Response {
    error_body(status_for(e), &e.to_string(), enqueued)
}

fn error_body(status: u16, message: &str, enqueued: Option<u64>) -> Response {
    let mut fields = vec![("error", Value::Str(message.to_string()))];
    if let Some(n) = enqueued {
        fields.push(("enqueued", Value::U64(n)));
    }
    Response::json(status, obj(fields))
}

fn parse_body(body: &[u8]) -> Result<Value, Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| error_body(400, "request body is not UTF-8", None))?;
    serde_json::from_str::<Value>(text)
        .map_err(|e| error_body(400, &format!("malformed JSON body: {e}"), None))
}

fn obj(fields: Vec<(&str, Value)>) -> String {
    serde_json::to_string(&obj_value(fields)).expect("value tree always renders")
}

fn obj_value(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        Value::I64(n) => u64::try_from(*n).ok(),
        Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => Some(*f as u64),
        _ => None,
    }
}

fn as_usize(v: &Value) -> Option<usize> {
    as_u64(v).and_then(|n| usize::try_from(n).ok())
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        Value::F64(f) => Some(*f),
        _ => None,
    }
}

fn as_f64_array(v: &Value) -> Option<Vec<f64>> {
    match v {
        Value::Array(items) => items.iter().map(as_f64).collect(),
        _ => None,
    }
}

fn as_points(v: &Value) -> Option<Vec<DataPoint>> {
    match v {
        Value::Array(items) => items
            .iter()
            .map(|p| as_f64_array(p).map(DataPoint::new))
            .collect(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_mapping_is_total() {
        assert_eq!(status_for(&SpotError::UnknownTenant("t".into())), 404);
        assert_eq!(status_for(&SpotError::DuplicateTenant("t".into())), 409);
        assert_eq!(status_for(&SpotError::NotLearned), 409);
        assert_eq!(status_for(&SpotError::ShuttingDown), 503);
        assert_eq!(
            status_for(&SpotError::TenantPoisoned {
                tenant: "t".into(),
                panic: "boom".into()
            }),
            503
        );
        assert_eq!(status_for(&SpotError::NonFiniteValue { dim: 0 }), 400);
        assert_eq!(
            status_for(&SpotError::DimensionMismatch {
                expected: 2,
                got: 3
            }),
            400
        );
        assert_eq!(status_for(&SpotError::WalCorrupt("x".into())), 500);
        assert_eq!(status_for(&SpotError::Io("x".into())), 500);
    }

    #[test]
    fn retry_after_tracks_backlog() {
        assert_eq!(retry_after_secs(0, 256), 1);
        assert_eq!(retry_after_secs(1, 256), 1);
        assert_eq!(retry_after_secs(257, 256), 2);
        assert_eq!(retry_after_secs(1024, 256), 4);
        assert_eq!(retry_after_secs(usize::MAX, 256), 8);
        // Degenerate micro-batch cannot divide by zero.
        assert_eq!(retry_after_secs(10, 0), 8);
    }
}
