//! # spot-serve — the SPOT fleet's HTTP service plane
//!
//! The paper frames SPOT as a *deployed* detector for live streams; this
//! crate is the deployment surface. It exposes a [`SpotFleet`] over
//! HTTP/1.1 — hand-rolled on `std::net` because the workspace vendors
//! every dependency — with robustness as the design driver:
//!
//! - **Backpressure maps to the protocol.** A full tenant queue is `429`
//!   with a `Retry-After` derived from queue occupancy; a quarantined
//!   tenant is `503`; an unknown tenant is `404`; a draining fleet is
//!   `503` via the typed [`SpotError::ShuttingDown`] admission gate.
//! - **Every edge has a deadline.** Slow-loris reads trip a per-request
//!   deadline, responses have write budgets, idle keep-alive connections
//!   expire, and accepted connections are capped with accept-time `503`
//!   shedding.
//! - **Observability never blocks.** `/healthz`, `/readyz`, `/stats`, and
//!   per-tenant stats ride the fleet's lock-free monitoring plane
//!   (seqlock snapshots + atomic mirrors), never a detector lock.
//! - **Shutdown loses nothing admitted.** The graceful drain gates
//!   admission, finishes in-flight requests under a deadline, drains all
//!   tenant queues in arrival order, and takes a final durable
//!   checkpoint.
//!
//! [`ServeClient`] is the matching in-tree client (deterministic
//! exponential backoff, `Retry-After` honoring, resumable batch ingest),
//! and [`netfault`] extends the runtime's deterministic fault-injection
//! philosophy to the wire. See `docs/service.md` for the full protocol.
//!
//! ```no_run
//! use spot_runtime::{FleetConfig, SpotFleet};
//! use spot_serve::SpotServer;
//!
//! let fleet = SpotFleet::new(FleetConfig::default());
//! let server = SpotServer::builder(fleet).bind("127.0.0.1:0")?;
//! println!("serving on {}", server.local_addr());
//! let report = server.shutdown()?;
//! assert_eq!(report.forced_closes, 0);
//! # Ok::<(), spot_types::SpotError>(())
//! ```
//!
//! [`SpotFleet`]: spot_runtime::SpotFleet
//! [`SpotError::ShuttingDown`]: spot_types::SpotError::ShuttingDown

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod netfault;
mod router;
mod server;

pub use client::{ClientError, IngestReport, RetryPolicy, ServeClient};
pub use http::{HttpLimits, Method, Request, Response};
pub use netfault::{inject, FaultOutcome, NetFault};
pub use router::{retry_after_secs, status_for};
pub use server::{
    ServeConfig, ServerBuilder, ServerStats, ShutdownReport, SpotServer, VerdictSink,
};
