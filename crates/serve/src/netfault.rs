//! Deterministic network-layer fault injection.
//!
//! The runtime's [`spot_runtime::FaultPlan`] scripts faults *inside* the
//! fleet on per-tenant ordinals; this module extends the same philosophy
//! to the wire. Each [`NetFault`] is one scripted misbehaving client —
//! injected from a real socket so the server's deadline and limit
//! machinery is exercised end to end, not mocked. Faults are pure
//! functions of their parameters (no randomness), so a soak test can
//! schedule them at fixed iteration ordinals and replay failures exactly.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

/// One scripted wire-level fault.
#[derive(Debug, Clone)]
pub enum NetFault {
    /// Send a torn request line (`POST /tenants/x/ing` and nothing more),
    /// then close. The server must discard the connection silently.
    TornRequestLine,
    /// Send a complete head declaring `content_length` body bytes, then
    /// only `sent` of them, then close. The server must not admit any
    /// point from the half request.
    MidBodyDisconnect {
        /// Declared `Content-Length`.
        content_length: usize,
        /// Bytes actually sent before the disconnect.
        sent: usize,
    },
    /// Send a partial head and then stall silently for `hold`. Held past
    /// the server's read deadline this must trip a `408` (or a close) —
    /// never a pinned worker.
    StalledRead {
        /// How long to hold the connection open without sending.
        hold: Duration,
    },
    /// Send bytes that are not HTTP at all; the server must answer `400`
    /// and close.
    Garbage,
}

/// What the server did with the faulty connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The server answered with this status before closing.
    Status(u16),
    /// The server closed the connection without a response (the correct
    /// answer to a peer that vanished mid-request).
    ClosedSilently,
}

/// Open a real connection to `addr` and perform the fault. `patience` is
/// how long to wait for the server's reaction after the fault is played.
pub fn inject(
    addr: SocketAddr,
    fault: &NetFault,
    patience: Duration,
) -> std::io::Result<FaultOutcome> {
    let mut stream = TcpStream::connect_timeout(&addr, patience)?;
    stream.set_nodelay(true)?;
    match fault {
        NetFault::TornRequestLine => {
            stream.write_all(b"POST /tenants/x/ing")?;
            stream.shutdown(Shutdown::Write)?;
            read_reaction(&mut stream, patience)
        }
        NetFault::MidBodyDisconnect {
            content_length,
            sent,
        } => {
            let head = format!(
                "POST /tenants/x/ingest HTTP/1.1\r\nhost: spot\r\ncontent-length: {content_length}\r\n\r\n"
            );
            stream.write_all(head.as_bytes())?;
            let partial = vec![b'{'; (*sent).min(*content_length)];
            stream.write_all(&partial)?;
            stream.shutdown(Shutdown::Write)?;
            read_reaction(&mut stream, patience)
        }
        NetFault::StalledRead { hold } => {
            stream.write_all(b"GET /healthz HTTP/1.1\r\nhost: sp")?;
            stream.flush()?;
            std::thread::sleep(*hold);
            read_reaction(&mut stream, patience)
        }
        NetFault::Garbage => {
            stream.write_all(b"\x16\x03\x01 this is not http\r\n\r\n")?;
            stream.shutdown(Shutdown::Write)?;
            read_reaction(&mut stream, patience)
        }
    }
}

/// Read whatever the server sends back; a status line yields
/// [`FaultOutcome::Status`], EOF or a reset yields
/// [`FaultOutcome::ClosedSilently`].
fn read_reaction(stream: &mut TcpStream, patience: Duration) -> std::io::Result<FaultOutcome> {
    stream.set_read_timeout(Some(patience.max(Duration::from_millis(1))))?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            // Resets count as a close: the server tore the connection down.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::ConnectionAborted
                        | std::io::ErrorKind::BrokenPipe
                        | std::io::ErrorKind::UnexpectedEof
                ) =>
            {
                break
            }
            // Patience ran out with the connection still open.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                break
            }
            Err(e) => return Err(e),
        }
    }
    Ok(parse_status(&buf).map_or(FaultOutcome::ClosedSilently, FaultOutcome::Status))
}

fn parse_status(buf: &[u8]) -> Option<u16> {
    let text = std::str::from_utf8(buf).ok()?;
    let line = text.split("\r\n").next()?;
    let code = line.strip_prefix("HTTP/1.1 ")?.split(' ').next()?;
    code.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_line_parsing() {
        assert_eq!(parse_status(b"HTTP/1.1 408 Request Timeout\r\n"), Some(408));
        assert_eq!(parse_status(b"HTTP/1.1 400 Bad Request\r\n\r\n"), Some(400));
        assert_eq!(parse_status(b""), None);
        assert_eq!(parse_status(b"garbage"), None);
    }
}
