//! Multi-threaded soak: the service plane under concurrent tenants,
//! scripted network faults, and a mid-soak graceful shutdown.
//!
//! The acceptance bar (ISSUE 8):
//!
//! * ≥ 8 concurrent connections across ≥ 4 tenants produce a verdict
//!   stream **bit-identical** to direct `SpotFleet` ingestion — the HTTP
//!   hop adds exactly nothing to the math.
//! * That identity survives injected wire faults (torn request lines,
//!   mid-body disconnects, stalled reads tripping the deadline, accept
//!   storms) running *during* the soak.
//! * A mid-soak graceful shutdown with the WAL enabled loses zero
//!   admitted points: everything the server acknowledged (and everything
//!   it admitted without managing to acknowledge) is drained, verdicted,
//!   checkpointed, and recoverable.

use spot::{SpotBuilder, SpotConfig, Verdict};
use spot_runtime::{CheckpointStore, FleetConfig, SpotFleet, WalTuning};
use spot_serve::{
    inject, NetFault, RetryPolicy, ServeClient, ServeConfig, SpotServer, VerdictSink,
};
use spot_types::{DataPoint, DomainBounds, TenantId};
use std::collections::HashMap;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const DIMS: usize = 3;
const TENANTS: usize = 8;

fn tid(i: usize) -> TenantId {
    TenantId::new(format!("soak-{i}")).unwrap()
}

fn tenant_config(seed: u64) -> SpotConfig {
    SpotBuilder::new(DomainBounds::unit(DIMS))
        .seed(seed)
        .build_config()
        .unwrap()
}

fn training(n: usize, salt: u64) -> Vec<DataPoint> {
    (0..n)
        .map(|i| {
            DataPoint::new(
                (0..DIMS)
                    .map(|d| {
                        let x = (i as u64)
                            .wrapping_mul(d as u64 + 5)
                            .wrapping_add(salt.wrapping_mul(11))
                            % 19;
                        0.35 + (x as f64 / 19.0) * 0.3
                    })
                    .collect(),
            )
        })
        .collect()
}

fn stream(n: usize, salt: u64) -> Vec<DataPoint> {
    (0..n)
        .map(|i| {
            let mut v: Vec<f64> = (0..DIMS)
                .map(|d| {
                    let x = (i as u64)
                        .wrapping_mul(d as u64 + 3)
                        .wrapping_add(salt.wrapping_mul(7))
                        % 23;
                    0.2 + (x as f64 / 23.0) * 0.5
                })
                .collect();
            if i % 11 == 4 {
                v[i % DIMS] = 0.97;
            }
            DataPoint::new(v)
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spot-soak-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn soak_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 200,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(8),
        retry_after_unit: Duration::from_millis(1),
    }
}

type VerdictLog = Arc<Mutex<HashMap<TenantId, Vec<Verdict>>>>;

fn collecting_sink() -> (VerdictLog, VerdictSink) {
    let log: VerdictLog = Arc::new(Mutex::new(HashMap::new()));
    let sink_log = Arc::clone(&log);
    let sink: VerdictSink = Arc::new(move |id: &TenantId, verdicts: &[Verdict]| {
        sink_log
            .lock()
            .unwrap()
            .entry(id.clone())
            .or_default()
            .extend_from_slice(verdicts);
    });
    (log, sink)
}

/// Direct-ingestion twin: a fresh serial fleet that learns identically and
/// processes exactly `prefix` points of tenant `i`'s stream.
fn twin_verdicts(i: usize, total: usize, prefix: usize) -> Vec<Verdict> {
    let fleet = SpotFleet::with_workers(FleetConfig::default(), Some(0));
    let id = tid(i);
    fleet
        .register(id.clone(), tenant_config(100 + i as u64))
        .unwrap();
    fleet.learn(&id, &training(64, i as u64)).unwrap();
    let points = stream(total, 100 + i as u64);
    if prefix == 0 {
        return Vec::new();
    }
    fleet.process_batch(&id, &points[..prefix]).unwrap()
}

fn assert_bitwise(want: &[Verdict], got: &[Verdict], label: &str) {
    assert_eq!(want.len(), got.len(), "{label}: verdict count diverged");
    for (a, b) in want.iter().zip(got) {
        assert!(a.bitwise_eq(b), "{label}: diverged at tick {}", a.tick);
    }
}

/// Headline soak: 8 tenants × 1 persistent ingest connection each (plus
/// fault and storm connections on top), scripted wire faults running
/// throughout — and the verdict stream stays bit-identical to direct
/// ingestion.
#[test]
fn soak_bit_identical_under_network_faults() {
    const POINTS: usize = 300;
    let fleet = SpotFleet::with_workers(
        FleetConfig {
            queue_capacity: 32,
            micro_batch: 8,
        },
        Some(0),
    );
    for i in 0..TENANTS {
        fleet
            .register(tid(i), tenant_config(100 + i as u64))
            .unwrap();
        fleet.learn(&tid(i), &training(64, i as u64)).unwrap();
    }

    let (log, sink) = collecting_sink();
    let config = ServeConfig {
        workers: 12,
        max_connections: 16,
        read_timeout: Duration::from_millis(100),
        ..ServeConfig::default()
    };
    let server = SpotServer::builder(fleet.clone())
        .config(config)
        .verdict_sink(sink)
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = server.local_addr();

    // 8 producers, one persistent connection per tenant: per-tenant
    // request order IS arrival order, which is what makes the bit-identity
    // comparison meaningful.
    let mut producers = Vec::new();
    for i in 0..TENANTS {
        producers.push(std::thread::spawn(move || {
            let mut client = ServeClient::new(addr).with_policy(soak_policy());
            let id = tid(i);
            let points = stream(POINTS, 100 + i as u64);
            let mut admitted = 0u64;
            for chunk in points.chunks(17) {
                let report = client
                    .ingest(&id, chunk)
                    .unwrap_or_else(|e| panic!("tenant {i} ingest failed: {e}"));
                admitted += report.enqueued;
            }
            admitted
        }));
    }

    // Scripted fault storm alongside the producers: fixed schedule, real
    // sockets, zero randomness.
    let fault_thread = std::thread::spawn(move || {
        for round in 0..4u32 {
            let _ = inject(addr, &NetFault::TornRequestLine, Duration::from_secs(2));
            let _ = inject(
                addr,
                &NetFault::MidBodyDisconnect {
                    content_length: 4096,
                    sent: 64 * (round as usize + 1),
                },
                Duration::from_secs(2),
            );
            let _ = inject(addr, &NetFault::Garbage, Duration::from_secs(2));
            let _ = inject(
                addr,
                &NetFault::StalledRead {
                    hold: Duration::from_millis(150),
                },
                Duration::from_secs(2),
            );
        }
        // Accept storm: more simultaneous connections than the cap.
        let held: Vec<_> = (0..30)
            .filter_map(|_| TcpStream::connect(addr).ok())
            .collect();
        std::thread::sleep(Duration::from_millis(100));
        drop(held);
    });

    let mut sent = 0u64;
    for producer in producers {
        sent += producer.join().expect("producer thread must not panic");
    }
    fault_thread.join().expect("fault thread must not panic");
    assert_eq!(
        sent,
        (TENANTS * POINTS) as u64,
        "faults must never cost an acknowledged admission"
    );

    // Let the pump finish moving the tail, then stop everything.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while fleet.stats().queued > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "pump failed to drain the backlog"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let stats = server.stats();
    assert!(
        stats.timeouts >= 1,
        "stalled reads must trip the read deadline: {stats:?}"
    );
    assert!(
        stats.bad_requests >= 1,
        "garbage must be rejected as bad requests: {stats:?}"
    );
    assert!(
        stats.shed_connections >= 1,
        "the accept storm must shed beyond the cap: {stats:?}"
    );
    let report = server.shutdown().unwrap();
    assert!(report.undrained.is_empty());

    // The wire added nothing: per tenant, the served verdict stream is
    // bit-identical to direct ingestion of the same points.
    let log = log.lock().unwrap();
    for i in 0..TENANTS {
        let served = log.get(&tid(i)).map(Vec::as_slice).unwrap_or(&[]);
        assert_eq!(served.len(), POINTS, "tenant {i}: lost verdicts");
        let direct = twin_verdicts(i, POINTS, POINTS);
        assert_bitwise(&direct, served, &format!("tenant {i}"));
    }
}

/// Mid-soak graceful shutdown with the WAL enabled: producers are cut off
/// mid-stream, yet every admitted point is drained, verdicted,
/// checkpointed — and the recovered fleet agrees to the last count.
#[test]
fn soak_graceful_shutdown_with_wal_loses_nothing_admitted() {
    const POINTS: usize = 400;
    let dir = temp_dir("shutdown");
    let store = CheckpointStore::open(&dir, 3).unwrap();
    let fleet = SpotFleet::with_workers(
        FleetConfig {
            queue_capacity: 32,
            micro_batch: 8,
        },
        Some(0),
    );
    for i in 0..TENANTS {
        fleet
            .register(tid(i), tenant_config(100 + i as u64))
            .unwrap();
        fleet.learn(&tid(i), &training(64, i as u64)).unwrap();
    }
    fleet
        .enable_wal(dir.join("wal"), WalTuning::default())
        .unwrap();

    let (log, sink) = collecting_sink();
    let config = ServeConfig {
        workers: 12,
        max_connections: 16,
        drain_deadline: Duration::from_secs(2),
        ..ServeConfig::default()
    };
    let server = SpotServer::builder(fleet.clone())
        .config(config)
        .store(store)
        .verdict_sink(sink)
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = server.local_addr();

    // Producers push small batches until the shutdown cuts them off; each
    // returns the admissions the server *acknowledged* (a lower bound —
    // the final in-flight request may have been admitted without a
    // readable response).
    let mut producers = Vec::new();
    for i in 0..TENANTS {
        producers.push(std::thread::spawn(move || {
            let mut client = ServeClient::new(addr).with_policy(RetryPolicy {
                max_attempts: 6,
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(4),
                retry_after_unit: Duration::from_millis(1),
            });
            let id = tid(i);
            let points = stream(POINTS, 100 + i as u64);
            let mut acknowledged = 0u64;
            for chunk in points.chunks(11) {
                match client.ingest(&id, chunk) {
                    Ok(report) => acknowledged += report.enqueued,
                    // Shutdown reached this producer; stop cleanly.
                    Err(_) => break,
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            acknowledged
        }));
    }

    // Shut down mid-soak, while producers are actively pushing.
    std::thread::sleep(Duration::from_millis(150));
    let report = server.shutdown().unwrap();
    assert!(report.generation.is_some(), "final durable checkpoint");
    assert!(report.undrained.is_empty());

    let acknowledged: Vec<u64> = producers
        .into_iter()
        .map(|p| p.join().expect("producer thread must not panic"))
        .collect();

    // Zero admitted points lost: per tenant the sink holds one verdict
    // per admitted point — at least everything acknowledged — and they
    // are bit-identical to direct ingestion of the same prefix.
    let log = log.lock().unwrap();
    let mut admitted_total = 0usize;
    for (i, &acked) in acknowledged.iter().enumerate() {
        let served = log.get(&tid(i)).map(Vec::as_slice).unwrap_or(&[]);
        let admitted = served.len();
        admitted_total += admitted;
        assert!(
            admitted as u64 >= acked,
            "tenant {i}: acknowledged {acked} but only {admitted} verdicts — admitted work was lost"
        );
        assert_eq!(
            fleet.tenant_stats(&tid(i)).unwrap().processed,
            admitted as u64,
            "tenant {i}: drain left admitted points unprocessed"
        );
        let direct = twin_verdicts(i, POINTS, admitted);
        assert_bitwise(&direct, served, &format!("tenant {i}"));
    }
    assert!(
        admitted_total > 0,
        "the soak must have admitted something before the shutdown"
    );

    // The final checkpoint covers everything: a recovery from disk agrees
    // with the sink exactly (nothing to replay, nothing missing).
    drop(fleet);
    let (recovered, scan) = SpotFleet::recover(
        &dir,
        FleetConfig {
            queue_capacity: 32,
            micro_batch: 8,
        },
    )
    .unwrap();
    assert_eq!(scan.total_replayed(), 0, "checkpoint must cover the WAL");
    for i in 0..TENANTS {
        let served = log.get(&tid(i)).map(Vec::as_slice).unwrap_or(&[]);
        assert_eq!(
            recovered.tenant_stats(&tid(i)).unwrap().processed,
            served.len() as u64,
            "tenant {i}: recovery disagrees with the served verdict count"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
