//! Service-plane acceptance suite: status mapping, limits, deadlines,
//! shedding, keep-alive, and the graceful shutdown protocol — all
//! exercised over real sockets against a live server.

use spot_runtime::{CheckpointStore, FleetConfig, SpotFleet};
use spot_serve::{
    inject, retry_after_secs, FaultOutcome, HttpLimits, NetFault, RetryPolicy, ServeClient,
    ServeConfig, SpotServer,
};
use spot_types::{DataPoint, TenantId};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

const DIMS: usize = 3;

fn tid(name: &str) -> TenantId {
    TenantId::new(name).expect("valid tenant id")
}

fn training(n: usize, salt: u64) -> Vec<DataPoint> {
    (0..n)
        .map(|i| {
            DataPoint::new(
                (0..DIMS)
                    .map(|d| {
                        let x = (i as u64)
                            .wrapping_mul(d as u64 + 5)
                            .wrapping_add(salt.wrapping_mul(11))
                            % 19;
                        0.35 + (x as f64 / 19.0) * 0.3
                    })
                    .collect(),
            )
        })
        .collect()
}

fn stream(n: usize, salt: u64) -> Vec<DataPoint> {
    (0..n)
        .map(|i| {
            let mut v: Vec<f64> = (0..DIMS)
                .map(|d| {
                    let x = (i as u64)
                        .wrapping_mul(d as u64 + 3)
                        .wrapping_add(salt.wrapping_mul(7))
                        % 23;
                    0.2 + (x as f64 / 23.0) * 0.5
                })
                .collect();
            if i % 11 == 4 {
                v[i % DIMS] = 0.97;
            }
            DataPoint::new(v)
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spot-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A serial (deterministic) fleet with a small queue.
fn serial_fleet(queue_capacity: usize, micro_batch: usize) -> SpotFleet {
    SpotFleet::with_workers(
        FleetConfig {
            queue_capacity,
            micro_batch,
        },
        Some(0),
    )
}

/// Millisecond-scale retry policy so tests finish fast.
fn quick_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 12,
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(40),
        retry_after_unit: Duration::from_millis(1),
    }
}

/// Raw request on a fresh socket; returns (status, body).
fn raw_request(addr: std::net::SocketAddr, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") {
                    // Head complete; read until content-length satisfied.
                    let text = String::from_utf8_lossy(&buf);
                    if let Some(head_end) = text.find("\r\n\r\n") {
                        let len = text
                            .lines()
                            .find_map(|l| l.strip_prefix("content-length: "))
                            .and_then(|v| v.trim().parse::<usize>().ok())
                            .unwrap_or(0);
                        if buf.len() >= head_end + 4 + len {
                            break;
                        }
                    }
                }
            }
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&buf).into_owned();
    let status = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split(' ').next())
        .and_then(|c| c.parse().ok())
        .unwrap_or(0);
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn header_value(text: &str, name: &str) -> Option<String> {
    // Raw responses use lower-case header names.
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name}: ")))
        .map(|v| v.trim().to_string())
}

#[test]
fn health_ready_stats_and_tenant_stats() {
    let fleet = serial_fleet(64, 16);
    let server = SpotServer::builder(fleet.clone())
        .bind("127.0.0.1:0")
        .unwrap();
    let mut client = ServeClient::new(server.local_addr()).with_policy(quick_policy());

    assert!(client.healthy());
    assert!(client.ready());

    let id = tid("alpha");
    client.register(&id, DIMS, 7, &training(64, 1)).unwrap();
    fleet.process_batch(&id, &stream(10, 2)).unwrap();

    let stats = client.stats().unwrap();
    assert!(stats.contains("\"tenants\":1"), "stats: {stats}");
    assert!(stats.contains("\"server\""), "stats: {stats}");

    let tstats = client.tenant_stats(&id).unwrap();
    assert!(
        tstats.contains("\"processed\":10"),
        "tenant stats: {tstats}"
    );
    assert!(
        tstats.contains("\"health\":\"healthy\""),
        "tenant stats: {tstats}"
    );

    server.shutdown().unwrap();
}

#[test]
fn status_code_mapping_over_the_wire() {
    let fleet = serial_fleet(64, 16);
    let server = SpotServer::builder(fleet).bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let mut client = ServeClient::new(addr).with_policy(quick_policy());

    // 404: tenant the registry does not hold.
    let err = client.ingest(&tid("ghost"), &stream(1, 0)).unwrap_err();
    assert!(matches!(
        err,
        spot_serve::ClientError::Status { status: 404, .. }
    ));

    // 201 then 409: duplicate registration.
    let id = tid("beta");
    client.register(&id, DIMS, 3, &training(64, 2)).unwrap();
    let err = client.register(&id, DIMS, 3, &[]).unwrap_err();
    assert!(matches!(
        err,
        spot_serve::ClientError::Status { status: 409, .. }
    ));

    // 400: dimension mismatch rejected before admission.
    let err = client
        .ingest(&id, &[DataPoint::new(vec![0.5; DIMS + 2])])
        .unwrap_err();
    assert!(matches!(
        err,
        spot_serve::ClientError::Status { status: 400, .. }
    ));

    // 400: malformed JSON body.
    let (status, _) = raw_request(
        addr,
        "POST /tenants/beta/ingest HTTP/1.1\r\ncontent-length: 9\r\n\r\n{\"points\"",
    );
    assert_eq!(status, 400);

    // 405: wrong method on a known route; 404: unknown route.
    let (status, _) = raw_request(addr, "POST /healthz HTTP/1.1\r\ncontent-length: 0\r\n\r\n");
    assert_eq!(status, 405);
    let (status, _) = raw_request(addr, "GET /nope HTTP/1.1\r\n\r\n");
    assert_eq!(status, 404);

    // 409: checkpoint admin without a store attached.
    let err = client.checkpoint().unwrap_err();
    assert!(matches!(
        err,
        spot_serve::ClientError::Status { status: 409, .. }
    ));

    // 200 then 404: eviction is terminal.
    client.evict(&id).unwrap();
    let err = client.evict(&id).unwrap_err();
    assert!(matches!(
        err,
        spot_serve::ClientError::Status { status: 404, .. }
    ));

    server.shutdown().unwrap();
}

#[test]
fn backpressure_maps_to_429_with_retry_after() {
    // Pump disabled: the queue only moves when we say so.
    let fleet = serial_fleet(8, 4);
    let server = SpotServer::builder(fleet)
        .pump(false)
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = server.local_addr();
    let mut client = ServeClient::new(addr).with_policy(quick_policy());

    let id = tid("gamma");
    client.register(&id, DIMS, 11, &training(64, 3)).unwrap();

    // 20 points against an 8-slot queue: exactly 8 admitted, then 429.
    let points = stream(20, 4);
    let body = format!(
        "{{\"points\":{}}}",
        serde_json::to_string(&serde::Value::Array(
            points
                .iter()
                .map(|p| serde::Value::Array(
                    p.values().iter().map(|v| serde::Value::F64(*v)).collect()
                ))
                .collect()
        ))
        .unwrap()
    );
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    raw.write_all(
        format!(
            "POST /tenants/gamma/ingest HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
    .unwrap();
    let mut text = String::new();
    let mut chunk = [0u8; 8192];
    loop {
        match raw.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                text.push_str(&String::from_utf8_lossy(&chunk[..n]));
                if text.contains("\"enqueued\"") {
                    break;
                }
            }
        }
    }
    assert!(text.starts_with("HTTP/1.1 429"), "response: {text}");
    assert!(text.contains("\"enqueued\":8"), "response: {text}");
    // Retry-After derives from occupancy: 8 queued / micro_batch 4 = 2s.
    assert_eq!(
        header_value(&text, "retry-after").as_deref(),
        Some("2"),
        "response: {text}"
    );
    assert_eq!(retry_after_secs(8, 4), 2);

    // Drain server-side, resume the tail from the reported offset: with
    // the pump off every admission is accounted deterministically.
    client.drain(&id).unwrap();
    let report = client.ingest(&id, &points[8..16]).unwrap();
    assert_eq!(report.enqueued, 8);
    client.drain(&id).unwrap();
    let report = client.ingest(&id, &points[16..]).unwrap();
    assert_eq!(report.enqueued, 4);
    client.drain(&id).unwrap();
    let tstats = client.tenant_stats(&id).unwrap();
    assert!(
        tstats.contains("\"processed\":20"),
        "tenant stats: {tstats}"
    );

    server.shutdown().unwrap();
}

#[test]
fn client_rides_out_backpressure_with_pump() {
    let fleet = serial_fleet(8, 4);
    let server = SpotServer::builder(fleet.clone())
        .bind("127.0.0.1:0")
        .unwrap();
    let mut client = ServeClient::new(server.local_addr()).with_policy(RetryPolicy {
        max_attempts: 64,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(10),
        retry_after_unit: Duration::from_millis(1),
    });

    let id = tid("delta");
    client.register(&id, DIMS, 13, &training(64, 5)).unwrap();

    let points = stream(200, 6);
    let report = client.ingest(&id, &points).unwrap();
    assert_eq!(report.enqueued, 200, "report: {report:?}");
    assert!(
        report.backpressure_hits > 0,
        "a 25x oversubscribed queue must push back at least once: {report:?}"
    );

    client.drain(&id).unwrap();
    let stats = fleet.tenant_stats(&id).unwrap();
    assert_eq!(stats.processed, 200);

    server.shutdown().unwrap();
}

#[test]
fn oversized_frames_and_protocol_violations() {
    let fleet = serial_fleet(64, 16);
    let config = ServeConfig {
        limits: HttpLimits {
            max_request_line: 512,
            max_head_bytes: 1024,
            max_headers: 16,
            max_body_bytes: 2048,
        },
        ..ServeConfig::default()
    };
    let server = SpotServer::builder(fleet)
        .config(config)
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = server.local_addr();

    // 413: body larger than the limit, rejected from the declared length
    // alone (the server never buffers the payload).
    let (status, _) = raw_request(
        addr,
        "POST /tenants/x/ingest HTTP/1.1\r\ncontent-length: 1000000\r\n\r\n",
    );
    assert_eq!(status, 413);

    // 411: body-bearing method without a length.
    let (status, _) = raw_request(addr, "POST /tenants/x/ingest HTTP/1.1\r\n\r\n");
    assert_eq!(status, 411);

    // 431: oversized header block.
    let huge = format!(
        "GET /healthz HTTP/1.1\r\nx-pad: {}\r\n\r\n",
        "a".repeat(4096)
    );
    let (status, _) = raw_request(addr, &huge);
    assert_eq!(status, 431);

    // 501: method this plane does not implement.
    let (status, _) = raw_request(addr, "PATCH /healthz HTTP/1.1\r\ncontent-length: 0\r\n\r\n");
    assert_eq!(status, 501);

    // 400: bytes that are not HTTP.
    let outcome = inject(addr, &NetFault::Garbage, Duration::from_secs(2)).unwrap();
    assert_eq!(outcome, FaultOutcome::Status(400));

    // The server survives all of it.
    let mut client = ServeClient::new(addr).with_policy(quick_policy());
    assert!(client.healthy());
    server.shutdown().unwrap();
}

#[test]
fn slow_loris_trips_the_read_deadline() {
    let fleet = serial_fleet(64, 16);
    let config = ServeConfig {
        read_timeout: Duration::from_millis(80),
        ..ServeConfig::default()
    };
    let server = SpotServer::builder(fleet)
        .config(config)
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = server.local_addr();

    // Partial head, then silence well past the deadline: the worker must
    // answer 408 (or close) instead of staying pinned.
    let outcome = inject(
        addr,
        &NetFault::StalledRead {
            hold: Duration::from_millis(300),
        },
        Duration::from_secs(2),
    )
    .unwrap();
    assert_eq!(outcome, FaultOutcome::Status(408), "stall must trip 408");

    let mut client = ServeClient::new(addr).with_policy(quick_policy());
    assert!(client.healthy(), "server must survive the slow loris");
    let report = server.shutdown().unwrap();
    assert!(report.requests >= 1);
}

#[test]
fn torn_and_midbody_disconnects_admit_nothing() {
    let fleet = serial_fleet(64, 16);
    let server = SpotServer::builder(fleet.clone())
        .pump(false)
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = server.local_addr();
    let mut client = ServeClient::new(addr).with_policy(quick_policy());

    let id = tid("epsilon");
    client.register(&id, DIMS, 17, &training(64, 7)).unwrap();

    for _ in 0..5 {
        let outcome = inject(addr, &NetFault::TornRequestLine, Duration::from_secs(2)).unwrap();
        assert_eq!(outcome, FaultOutcome::ClosedSilently);
        let outcome = inject(
            addr,
            &NetFault::MidBodyDisconnect {
                content_length: 512,
                sent: 100,
            },
            Duration::from_secs(2),
        )
        .unwrap();
        assert_eq!(outcome, FaultOutcome::ClosedSilently);
    }

    // Nothing was admitted anywhere, and the plane still serves.
    assert_eq!(fleet.stats().queued, 0);
    assert_eq!(fleet.stats().processed, 0);
    assert!(client.healthy());
    server.shutdown().unwrap();
}

#[test]
fn connection_cap_sheds_with_503_at_accept() {
    let fleet = serial_fleet(64, 16);
    let config = ServeConfig {
        workers: 2,
        max_connections: 2,
        ..ServeConfig::default()
    };
    let server = SpotServer::builder(fleet)
        .config(config)
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = server.local_addr();

    // Two idle connections occupy the whole cap...
    let hold_a = TcpStream::connect(addr).unwrap();
    let hold_b = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // ...so the third is shed at accept time with a best-effort 503.
    let mut shed = TcpStream::connect(addr).unwrap();
    shed.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match shed.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    let text = String::from_utf8_lossy(&buf);
    assert!(
        text.starts_with("HTTP/1.1 503"),
        "expected accept-time shed, got: {text:?}"
    );
    assert!(server.stats().shed_connections >= 1);

    // Capacity frees up once the holders leave.
    drop(hold_a);
    drop(hold_b);
    std::thread::sleep(Duration::from_millis(100));
    let mut client = ServeClient::new(addr).with_policy(quick_policy());
    assert!(client.healthy());

    server.shutdown().unwrap();
}

#[test]
fn keep_alive_serves_sequential_and_pipelined_requests() {
    let fleet = serial_fleet(64, 16);
    let server = SpotServer::builder(fleet).bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // Two pipelined requests in one write; both must answer on the same
    // connection, in order.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\n\r\nGET /readyz HTTP/1.1\r\n\r\n")
        .unwrap();
    let mut text = String::new();
    let mut chunk = [0u8; 4096];
    while text.matches("HTTP/1.1 200").count() < 2 {
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "connection closed early: {text:?}");
        text.push_str(&String::from_utf8_lossy(&chunk[..n]));
    }
    assert!(text.contains("\"ok\""), "responses: {text}");
    assert!(text.contains("\"ready\""), "responses: {text}");

    // A third request on the same (kept-alive) socket still works; asking
    // to close closes.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n")
        .unwrap();
    let mut rest = Vec::new();
    let mut n = stream.read(&mut chunk).unwrap();
    while n > 0 {
        rest.extend_from_slice(&chunk[..n]);
        n = stream.read(&mut chunk).unwrap_or(0);
    }
    let rest = String::from_utf8_lossy(&rest);
    assert!(rest.starts_with("HTTP/1.1 200"), "response: {rest}");
    assert!(rest.contains("connection: close"), "response: {rest}");

    server.shutdown().unwrap();
}

#[test]
fn delta_checkpoint_endpoint_chains_onto_the_full_generation() {
    let dir = temp_dir("delta-endpoint");
    let store = CheckpointStore::open(&dir, 4).unwrap();
    let fleet = serial_fleet(64, 16);
    let server = SpotServer::builder(fleet.clone())
        .store(store)
        .pump(false)
        .bind("127.0.0.1:0")
        .unwrap();
    let mut client = ServeClient::new(server.local_addr()).with_policy(quick_policy());

    let id = tid("chained");
    client.register(&id, DIMS, 31, &training(64, 3)).unwrap();
    client.ingest(&id, &stream(20, 4)).unwrap();
    client.drain(&id).unwrap();

    // With no chain armed, mode=delta falls back to a full checkpoint.
    let body = client.checkpoint_delta().unwrap().text();
    assert!(body.contains("\"generation\":1"), "body: {body}");
    assert!(body.contains("\"delta\":false"), "body: {body}");

    // Now the chain is armed: the next delta request writes a `.dck`.
    client.ingest(&id, &stream(10, 5)).unwrap();
    client.drain(&id).unwrap();
    let body = client.checkpoint_delta().unwrap().text();
    assert!(body.contains("\"generation\":2"), "body: {body}");
    assert!(body.contains("\"delta\":true"), "body: {body}");

    // An unknown mode is a client error, not a silent full checkpoint.
    let response = client
        .request("POST", "/admin/checkpoint?mode=sideways", Some("{}"))
        .unwrap();
    assert_eq!(response.status, 400);

    // /stats carries the WAL prune-failure counter (zero on this box).
    let stats = client.stats().unwrap();
    assert!(stats.contains("\"wal_prune_failures\":0"), "stats: {stats}");

    server.shutdown().unwrap();

    // The chain resolves from disk: generation 2 is a delta whose
    // resolution matches the live fleet at the time it was taken.
    let store = CheckpointStore::open(&dir, 4).unwrap();
    assert!(store.is_delta(2).unwrap());
    let resolved = store.load(2).unwrap();
    assert!(resolved.get(&id).is_some());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_drains_queues_and_checkpoints() {
    let dir = temp_dir("shutdown");
    let store = CheckpointStore::open(&dir, 3).unwrap();
    let fleet = serial_fleet(64, 16);
    let server = SpotServer::builder(fleet.clone())
        .store(store)
        .pump(false)
        .bind("127.0.0.1:0")
        .unwrap();
    let mut client = ServeClient::new(server.local_addr()).with_policy(quick_policy());

    let id = tid("zeta");
    client.register(&id, DIMS, 19, &training(64, 8)).unwrap();
    let report = client.ingest(&id, &stream(30, 9)).unwrap();
    assert_eq!(report.enqueued, 30);
    assert_eq!(fleet.stats().queued, 30, "pump is off; backlog must sit");

    let report = server.shutdown().unwrap();
    assert_eq!(report.drained, 30, "the frozen backlog drains in full");
    assert!(report.generation.is_some(), "final durable checkpoint");
    assert!(report.undrained.is_empty());

    // Admission re-opens for the in-process fleet after the server exits,
    // and the drained work is visible.
    assert_eq!(fleet.tenant_stats(&id).unwrap().processed, 30);
    assert!(fleet.try_ingest(&id, stream(1, 10).pop().unwrap()).unwrap());

    // The checkpoint is loadable and holds the drained state.
    let store = CheckpointStore::open(&dir, 3).unwrap();
    let scan = store.load_latest().unwrap();
    let (_, checkpoint) = scan.recovered.expect("valid generation");
    assert!(checkpoint.get(&id).is_some());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn draining_server_refuses_new_work_with_503() {
    // The admission gate itself (SpotError::ShuttingDown → 503) is pinned
    // here without a race: gate the fleet directly, then hit the running
    // server.
    let fleet = serial_fleet(64, 16);
    let server = SpotServer::builder(fleet.clone())
        .bind("127.0.0.1:0")
        .unwrap();
    let mut client = ServeClient::new(server.local_addr()).with_policy(RetryPolicy {
        max_attempts: 2,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(2),
        retry_after_unit: Duration::from_millis(1),
    });

    let id = tid("eta");
    client.register(&id, DIMS, 23, &training(64, 11)).unwrap();

    fleet.begin_shutdown();
    let err = client.ingest(&id, &stream(5, 12)).unwrap_err();
    match err {
        spot_serve::ClientError::RetriesExhausted { status, body } => {
            assert_eq!(status, 503);
            assert!(body.contains("shutting down"), "body: {body}");
        }
        other => panic!("expected retries exhausted on 503, got {other}"),
    }
    fleet.end_shutdown();
    let report = client.ingest(&id, &stream(5, 12)).unwrap();
    assert_eq!(report.enqueued, 5);

    server.shutdown().unwrap();
}
