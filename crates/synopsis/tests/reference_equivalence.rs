//! Behavioural equivalence of the packed-key stores against the seed's
//! boxed-coordinate-slice semantics.
//!
//! The reference model below mirrors the pre-refactor implementation: cells
//! keyed by their literal `Vec<u16>` coordinate slices in an ordered map,
//! decayed `D/LS/SS` per cell, PCS derived with the same arithmetic in the
//! same operation order. Equality is asserted on the *bits* of the derived
//! RD/IRSD and base counts — the packed keys must change addressing only,
//! never a number.

use spot_stream::TimeModel;
use spot_subspace::Subspace;
use spot_synopsis::{Grid, Pcs, ProjectedStore};
use spot_types::{DataPoint, DomainBounds};
use std::collections::BTreeMap;

/// Seed-style projected store: boxed coordinate keys, separate update and
/// query passes.
/// (d, ls, ss, last_tick) of one reference cell.
type RefCell = (f64, Vec<f64>, Vec<f64>, u64);

struct ReferenceStore {
    subspace: Subspace,
    cells: BTreeMap<Vec<u16>, RefCell>,
    cell_count: f64,
    uniform_sigma: f64,
}

impl ReferenceStore {
    fn new(grid: &Grid, subspace: Subspace) -> Self {
        ReferenceStore {
            subspace,
            cells: BTreeMap::new(),
            cell_count: grid.cell_count_in(&subspace),
            uniform_sigma: grid.uniform_sigma_in(&subspace),
        }
    }

    fn project(&self, base: &[u16]) -> Vec<u16> {
        self.subspace.dims().map(|d| base[d]).collect()
    }

    fn update(&mut self, model: &TimeModel, now: u64, base: &[u16], p: &DataPoint) {
        let card = self.subspace.cardinality();
        let coords = self.project(base);
        let (d, ls, ss, last) = self
            .cells
            .entry(coords)
            .or_insert_with(|| (0.0, vec![0.0; card], vec![0.0; card], now));
        let f = model.decay_between(*last, now);
        if f != 1.0 {
            *d *= f;
            for v in ls.iter_mut() {
                *v *= f;
            }
            for v in ss.iter_mut() {
                *v *= f;
            }
        }
        *last = now;
        *d += 1.0;
        for (i, dim) in self.subspace.dims().enumerate() {
            let v = p.value(dim);
            ls[i] += v;
            ss[i] += v * v;
        }
    }

    fn pcs(&self, model: &TimeModel, now: u64, base: &[u16], total: f64) -> Pcs {
        let coords = self.project(base);
        let Some((d0, ls, ss, last)) = self.cells.get(&coords) else {
            return Pcs::EMPTY;
        };
        let d = d0 * model.decay_between(*last, now);
        let rd = if total > f64::EPSILON {
            d * self.cell_count / total
        } else {
            0.0
        };
        let irsd = if d < 2.0 {
            0.0
        } else {
            // Seed semantics: σ comes from the stored (self-consistent)
            // D/LS/SS triple — it is decay-invariant, so the stored values
            // are exact regardless of the query tick.
            let sigma = {
                let mut acc = 0.0;
                for i in 0..ls.len() {
                    let m = ls[i] / d0;
                    acc += (ss[i] / d0 - m * m).max(0.0);
                }
                acc.sqrt()
            };
            if *d0 <= f64::EPSILON {
                0.0
            } else if sigma > f64::EPSILON {
                self.uniform_sigma / sigma
            } else {
                f64::MAX
            }
        };
        Pcs { rd, irsd }
    }
}

/// Deterministic pseudo-stream without pulling in the rand stub.
fn stream(n: usize, dims: usize, seed: u64) -> Vec<DataPoint> {
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| DataPoint::new((0..dims).map(|_| next()).collect()))
        .collect()
}

fn assert_equivalent(dims: usize, granularity: u16, subspaces: &[Subspace], n: usize) {
    let grid = Grid::new(DomainBounds::unit(dims), granularity).unwrap();
    let tm = TimeModel::new(64, 0.05).unwrap();
    let mut packed: Vec<ProjectedStore> = subspaces
        .iter()
        .map(|&s| ProjectedStore::new(&grid, s))
        .collect();
    let mut reference: Vec<ReferenceStore> = subspaces
        .iter()
        .map(|&s| ReferenceStore::new(&grid, s))
        .collect();

    for (i, p) in stream(n, dims, 0xC0FFEE ^ dims as u64).iter().enumerate() {
        let now = i as u64;
        let total = (i + 1) as f64;
        let base = grid.base_coords(p).unwrap();
        for (ps, rs) in packed.iter_mut().zip(reference.iter_mut()) {
            let (got, occ) = ps.update_and_pcs(&grid, &tm, now, &base, p, total);
            rs.update(&tm, now, &base, p);
            let want = rs.pcs(&tm, now, &base, total);
            assert_eq!(
                got.rd.to_bits(),
                want.rd.to_bits(),
                "rd diverged: dims={dims} m={granularity} point={i} s={}",
                ps.subspace()
            );
            assert_eq!(
                got.irsd.to_bits(),
                want.irsd.to_bits(),
                "irsd diverged: dims={dims} m={granularity} point={i} s={}",
                ps.subspace()
            );
            assert!(occ > 0.0);

            // Stale query: read the same cell again at a later tick with no
            // intervening update. RD decays; IRSD must stay invariant (σ is
            // derived from the stored triple). This is the regression guard
            // for mixing renormalized counts with undecayed moment sums.
            for lag in [7u64, 40] {
                let later = now + lag;
                let got_late = ps.pcs(&grid, &tm, later, &base, total);
                let want_late = rs.pcs(&tm, later, &base, total);
                assert_eq!(
                    got_late.rd.to_bits(),
                    want_late.rd.to_bits(),
                    "stale rd diverged: point={i} lag={lag}"
                );
                assert_eq!(
                    got_late.irsd.to_bits(),
                    want_late.irsd.to_bits(),
                    "stale irsd diverged: point={i} lag={lag}"
                );
            }
        }
    }
    for (ps, rs) in packed.iter().zip(reference.iter()) {
        assert_eq!(ps.len(), rs.cells.len(), "cell population diverged");
    }
}

#[test]
fn packed_matches_reference_small_granularities() {
    for m in [2u16, 3] {
        let subs = [
            Subspace::from_dims([0]).unwrap(),
            Subspace::from_dims([1, 3]).unwrap(),
            Subspace::from_dims([0, 2, 4]).unwrap(),
        ];
        assert_equivalent(5, m, &subs, 400);
    }
}

#[test]
fn packed_matches_reference_wide_granularities() {
    // m=255 → 8 bits/dim; m=1024 → 10 bits/dim. Both exactly packed at
    // these cardinalities.
    for m in [255u16, 1024] {
        let subs = [
            Subspace::from_dims([0, 1]).unwrap(),
            Subspace::from_dims([2, 3, 4, 5]).unwrap(),
        ];
        assert_equivalent(6, m, &subs, 400);
    }
}

#[test]
fn packed_matches_reference_wide_phi_fallback() {
    // ϕ=40 at m=10 needs 160 bits for the base key — the fingerprint
    // fallback regime. Projected keys here are still exact; the base store
    // equivalence below covers the fingerprinted path.
    let subs = [
        Subspace::from_dims([0, 7, 19]).unwrap(),
        Subspace::from_dims([3, 11, 24, 38]).unwrap(),
    ];
    assert_equivalent(40, 10, &subs, 300);

    // Base store: fingerprinted keys vs literal coordinate slices.
    let grid = Grid::new(DomainBounds::unit(40), 10).unwrap();
    assert!(!grid.codec().base_is_exact());
    let tm = TimeModel::new(64, 0.05).unwrap();
    let mut store = spot_synopsis::BaseStore::new();
    let mut reference: BTreeMap<Vec<u16>, f64> = BTreeMap::new();
    for (i, p) in stream(500, 40, 7).iter().enumerate() {
        let now = i as u64;
        let (_, _prior) = store.insert(&grid, &tm, now, p).unwrap();
        let coords = grid.base_coords(p).unwrap();
        let entry = reference.entry(coords).or_insert(0.0);
        *entry += 1.0; // same-tick inserts only matter for the census below
        let _ = now;
    }
    assert_eq!(
        store.len(),
        reference.len(),
        "fingerprint collision detected"
    );
}

#[test]
fn wide_subspace_projected_keys_also_fall_back() {
    // A 20-dimensional subspace at m=1024 (10 bits/dim) needs 200 bits:
    // even the projected key takes the fingerprint path.
    let dims = 24;
    let grid = Grid::new(DomainBounds::unit(dims), 1024).unwrap();
    let s = Subspace::from_dims(0..20).unwrap();
    assert!(!grid.codec().is_exact(s.cardinality()));
    let tm = TimeModel::new(64, 0.05).unwrap();
    let mut packed = ProjectedStore::new(&grid, s);
    let mut reference = ReferenceStore::new(&grid, s);
    for (i, p) in stream(300, dims, 99).iter().enumerate() {
        let now = i as u64;
        let total = (i + 1) as f64;
        let base = grid.base_coords(p).unwrap();
        let (got, _) = packed.update_and_pcs(&grid, &tm, now, &base, p, total);
        reference.update(&tm, now, &base, p);
        let want = reference.pcs(&tm, now, &base, total);
        assert_eq!(got.rd.to_bits(), want.rd.to_bits(), "point {i}");
        assert_eq!(got.irsd.to_bits(), want.irsd.to_bits(), "point {i}");
    }
    assert_eq!(packed.len(), reference.cells.len());
}
