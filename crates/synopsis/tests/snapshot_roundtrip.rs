//! Snapshot v2 round-trip pins for the synopsis layer: serializing and
//! restoring any populated `BaseStore` / `SynopsisManager` must be
//! bit-exact — keys, SoA columns, decay weights, registration order —
//! including the wide-ϕ fingerprint-key fallback.

use proptest::prelude::*;
use serde::Value;
use spot_stream::TimeModel;
use spot_subspace::Subspace;
use spot_synopsis::{Grid, SynopsisManager};
use spot_types::{DataPoint, DomainBounds, DurableState, StateReader, StateWriter};

fn capture(c: &dyn DurableState) -> Value {
    let mut w = StateWriter::new();
    c.capture(&mut w);
    w.finish()
}

/// Captures `mgr`, restores into a fresh manager of the same grid/model
/// (no subspaces pre-registered — registration order must come from the
/// snapshot), and checks the restored state is bit-exact.
fn roundtrip_and_check(mgr: &SynopsisManager, now: u64, probes: &[DataPoint]) {
    let state = mgr.capture_state();
    let mut restored = SynopsisManager::new(mgr.grid().clone(), *mgr.model());
    restored
        .restore_state(&StateReader::new(&state).unwrap())
        .unwrap();

    // Registration order (= per-point result order) is preserved.
    let order: Vec<u64> = mgr.subspaces().map(|s| s.mask()).collect();
    let restored_order: Vec<u64> = restored.subspaces().map(|s| s.mask()).collect();
    assert_eq!(order, restored_order);

    // Logical state is bit-exact.
    assert_eq!(mgr.live_cells(), restored.live_cells());
    assert_eq!(mgr.approx_bytes(), restored.approx_bytes());
    assert_eq!(
        mgr.total_weight(now).to_bits(),
        restored.total_weight(now).to_bits()
    );
    for p in probes {
        let base = mgr.grid().base_coords(p).unwrap();
        assert_eq!(
            mgr.base_count_for(now, p).unwrap().to_bits(),
            restored.base_count_for(now, p).unwrap().to_bits()
        );
        for s in mgr.subspaces() {
            let a = mgr.pcs(now, &base, &s).unwrap();
            let b = restored.pcs(now, &base, &s).unwrap();
            assert_eq!(a.rd.to_bits(), b.rd.to_bits(), "rd in {s}");
            assert_eq!(a.irsd.to_bits(), b.irsd.to_bits(), "irsd in {s}");
        }
    }

    // Per-store columns are captured verbatim, slot order included.
    for s in mgr.subspaces() {
        let a = mgr.projected_store(&s).unwrap();
        let b = restored.projected_store(&s).unwrap();
        let cells_a: Vec<_> = a
            .iter()
            .map(|(k, c)| (k, c.count_at(mgr.model(), now).to_bits()))
            .collect();
        let cells_b: Vec<_> = b
            .iter()
            .map(|(k, c)| (k, c.count_at(mgr.model(), now).to_bits()))
            .collect();
        assert_eq!(cells_a, cells_b, "slot layout of {s}");
    }

    // A second capture is byte-identical: capture → restore → capture is a
    // fixed point (the base store's sorted columns make the encoding
    // independent of hash-map history).
    let again = restored.capture_state();
    assert_eq!(
        serde_json::to_string(&state).unwrap(),
        serde_json::to_string(&again).unwrap()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn populated_manager_roundtrips_bit_exactly(
        raw in proptest::collection::vec(0.0f64..1.0, 24..240),
        granularity in 3u16..12,
        omega in 20u64..400,
        prune_at in 10u64..120,
    ) {
        let dims = 4;
        let grid = Grid::new(DomainBounds::unit(dims), granularity).unwrap();
        let model = TimeModel::new(omega, 0.01).unwrap();
        let mut mgr = SynopsisManager::new(grid, model);
        for d in 0..dims {
            mgr.add_subspace(Subspace::from_dims([d]).unwrap());
        }
        mgr.add_subspace(Subspace::from_dims([0, 1]).unwrap());
        mgr.add_subspace(Subspace::from_dims([2, 3]).unwrap());
        // Exercise removal so registration ordinals have real history.
        mgr.remove_subspace(&Subspace::from_dims([1]).unwrap());

        let points: Vec<DataPoint> = raw
            .chunks_exact(dims)
            .map(|c| DataPoint::new(c.to_vec()))
            .collect();
        let mut now = 0;
        for (i, p) in points.iter().enumerate() {
            now = 1 + i as u64 * 3; // gaps, so decay factors vary
            mgr.update(now, p).unwrap();
            // Fires for some streams only (prune_at beyond short streams).
            if i as u64 == prune_at {
                mgr.prune(now, 1e-3);
            }
        }
        roundtrip_and_check(&mgr, now, &points);
    }

    #[test]
    fn base_store_column_roundtrip_is_bit_exact(
        raw in proptest::collection::vec(0.0f64..1.0, 9..90),
    ) {
        let dims = 3;
        let grid = Grid::new(DomainBounds::unit(dims), 5).unwrap();
        let model = TimeModel::new(50, 0.01).unwrap();
        let mut store = spot_synopsis::BaseStore::new();
        let points: Vec<DataPoint> = raw
            .chunks_exact(dims)
            .map(|c| DataPoint::new(c.to_vec()))
            .collect();
        for (i, p) in points.iter().enumerate() {
            store.insert(&grid, &model, i as u64, p).unwrap();
        }
        let state = capture(&store);
        let mut restored = spot_synopsis::BaseStore::new();
        restored.restore(&StateReader::new(&state).unwrap()).unwrap();
        prop_assert_eq!(store.len(), restored.len());
        let now = points.len() as u64 + 7;
        for (key, cell) in store.iter() {
            let other = restored.get(key).expect("restored cell");
            prop_assert_eq!(cell.count_at(&model, now).to_bits(), other.count_at(&model, now).to_bits());
            prop_assert_eq!(cell.last_tick(), other.last_tick());
            let (ls_a, ss_a) = cell.moments();
            let (ls_b, ss_b) = other.moments();
            for (a, b) in ls_a.iter().zip(ls_b).chain(ss_a.iter().zip(ss_b)) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}

#[test]
fn wide_phi_fingerprint_keys_roundtrip() {
    // ϕ = 40 at m = 10 needs 160 bits: base keys take the fingerprint
    // fallback. A 33-dim monitored subspace (> 128/4 packed-bit budget)
    // forces fingerprinted *projected* keys too.
    let dims = 40usize;
    let grid = Grid::new(DomainBounds::unit(dims), 10).unwrap();
    assert!(
        !grid.codec().base_is_exact(),
        "test premise: wide base keys"
    );
    let model = TimeModel::new(120, 0.01).unwrap();
    let mut mgr = SynopsisManager::new(grid, model);
    mgr.add_subspace(Subspace::from_dims([0]).unwrap());
    mgr.add_subspace(Subspace::from_dims([3, 17]).unwrap());
    let wide = Subspace::from_dims(0..33).unwrap();
    assert!(
        !mgr.grid().codec().is_exact(wide.cardinality()),
        "test premise: fingerprinted projected keys"
    );
    mgr.add_subspace(wide);

    let points: Vec<DataPoint> = (0..80)
        .map(|i| {
            DataPoint::new(
                (0..dims)
                    .map(|d| ((i * (d + 3) + 7 * d) % 23) as f64 / 23.0)
                    .collect(),
            )
        })
        .collect();
    let mut now = 0;
    for (i, p) in points.iter().enumerate() {
        now = 1 + i as u64;
        mgr.update(now, p).unwrap();
    }
    roundtrip_and_check(&mgr, now, &points);
}

#[test]
fn corrupt_manager_state_is_rejected() {
    let grid = Grid::new(DomainBounds::unit(2), 4).unwrap();
    let model = TimeModel::new(50, 0.01).unwrap();
    let mut mgr = SynopsisManager::new(grid.clone(), model);
    mgr.add_subspace(Subspace::from_dims([0]).unwrap());
    mgr.update(1, &DataPoint::new(vec![0.2, 0.8])).unwrap();
    let good = mgr.capture_state();
    let json = serde_json::to_string(&good).unwrap();

    // Dropping a required column must fail restore, not panic.
    let broken = json.replace("\"total\"", "\"tot\"");
    let v: Value = serde_json::from_str(&broken).unwrap();
    let mut fresh = SynopsisManager::new(grid, model);
    assert!(fresh.restore_state(&StateReader::new(&v).unwrap()).is_err());
}
