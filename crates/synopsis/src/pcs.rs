//! Projected Cell Summary.

use crate::grid::Grid;
use crate::key::CellKey;
use serde::{Deserialize, Serialize};
use spot_stream::{DecayTable, TimeModel, WeightCache};
use spot_subspace::Subspace;
use spot_types::{DataPoint, DurableState, FxHashMap, PersistError, StateReader, StateWriter};

/// The derived PCS pair of a projected cell: `(RD, IRSD)`.
///
/// * `rd` — **Relative Density**: the cell's decayed count relative to the
///   expected count under a uniform stream, `D · m^{|s|} / N`. `rd < 1`
///   means sparser than uniform.
/// * `irsd` — **Inverse Relative Standard Deviation**: the dispersion of a
///   uniform cell relative to the cell's own dispersion,
///   `σ_uniform(s) / σ(c,s)`. Points scattered across the cell give
///   `irsd ≈ 1`; points spread *more* than uniform give `irsd < 1`.
///
/// Following the paper, *small RD and small IRSD* flag the sparse cells in
/// which projected outliers live.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pcs {
    /// Relative density (≥ 0; 1 = uniform expectation).
    pub rd: f64,
    /// Inverse relative standard deviation (≥ 0).
    pub irsd: f64,
}

impl Pcs {
    /// PCS of a cell nobody has populated: zero density. IRSD is reported
    /// as 0 (maximally sparse) so that threshold tests treat unseen cells
    /// as outlying regions.
    pub const EMPTY: Pcs = Pcs { rd: 0.0, irsd: 0.0 };
}

/// Read-only view of one projected cell's decayed statistics (count +
/// per-dim LS/SS restricted to the subspace's dimensions).
///
/// The store keeps cells in a structure-of-arrays layout — this view is how
/// iteration and tests observe a single cell.
#[derive(Debug, Clone, Copy)]
pub struct PcsCell<'a> {
    d: f64,
    last_tick: u64,
    /// `[ls_0..ls_card, ss_0..ss_card]`.
    moments: &'a [f64],
}

impl PcsCell<'_> {
    /// Decayed count renormalized to `now`.
    #[inline]
    pub fn count_at(&self, model: &TimeModel, now: u64) -> f64 {
        self.d * model.decay_between(self.last_tick, now)
    }

    /// Aggregate standard deviation over the subspace's dimensions
    /// (Euclidean norm of the per-dimension deviations). `None` when the
    /// cell holds less than ~one point of decayed weight.
    pub fn sigma(&self) -> Option<f64> {
        sigma_of(self.d, self.moments)
    }
}

#[inline]
fn sigma_of(d: f64, moments: &[f64]) -> Option<f64> {
    if d <= f64::EPSILON {
        return None;
    }
    let card = moments.len() / 2;
    let (ls, ss) = moments.split_at(card);
    let mut acc = 0.0;
    for i in 0..card {
        let m = ls[i] / d;
        acc += (ss[i] / d - m * m).max(0.0);
    }
    Some(acc.sqrt())
}

/// All populated projected cells of one subspace.
///
/// Cells live in a structure-of-arrays layout: a `CellKey → slot` index
/// plus parallel columns for the decayed count, last-touched tick and the
/// `2·|s|` moment sums. Inserting a point into an existing cell touches no
/// allocator and no variable-length hashing — the steady-state hot path is
/// one integer-keyed map probe plus a contiguous stripe of float updates.
#[derive(Debug, Clone)]
pub struct ProjectedStore {
    subspace: Subspace,
    card: usize,
    index: FxHashMap<CellKey, u32>,
    /// Per-slot cell key (for pruning compaction and iteration).
    keys: Vec<CellKey>,
    /// Per-slot decayed count.
    d: Vec<f64>,
    /// Per-slot last-touched tick.
    last_tick: Vec<u64>,
    /// Conservative lower bound on the oldest `last_tick` among populated
    /// slots (`u64::MAX` when empty) — the prune screen's eviction
    /// horizon. Derived state: tightened exactly during prune scans,
    /// loosened monotonically by upserts, never captured.
    min_last_tick: u64,
    /// Per-slot moment stripe, stride `2·card`: `ls[0..card], ss[0..card]`.
    moments: Vec<f64>,
    /// `m^{|s|}` — precomputed RD multiplier numerator.
    cell_count: f64,
    /// `σ_uniform(s)` — precomputed IRSD numerator.
    uniform_sigma: f64,
    /// Cell count last mirrored into the manager's lock-free counters.
    published_cells: usize,
    /// Byte footprint last mirrored into the manager's lock-free counters.
    published_bytes: usize,
}

impl ProjectedStore {
    /// Empty store for `subspace` over `grid`.
    pub fn new(grid: &Grid, subspace: Subspace) -> Self {
        ProjectedStore {
            subspace,
            card: subspace.cardinality(),
            index: FxHashMap::default(),
            keys: Vec::new(),
            d: Vec::new(),
            last_tick: Vec::new(),
            min_last_tick: u64::MAX,
            moments: Vec::new(),
            cell_count: grid.cell_count_in(&subspace),
            uniform_sigma: grid.uniform_sigma_in(&subspace),
            published_cells: 0,
            published_bytes: 0,
        }
    }

    /// Difference between the store's current (cells, bytes) footprint and
    /// the last published one, marking the current values as published.
    /// The single writer of a shard calls this after mutating the store
    /// and folds the delta into the shared atomic counters — monitoring
    /// readers never need the store itself.
    pub(crate) fn publish_delta(&mut self) -> (isize, isize) {
        let cells = self.len();
        let bytes = self.approx_bytes();
        let delta = (
            cells as isize - self.published_cells as isize,
            bytes as isize - self.published_bytes as isize,
        );
        self.published_cells = cells;
        self.published_bytes = bytes;
        delta
    }

    /// The subspace this store projects onto.
    pub fn subspace(&self) -> Subspace {
        self.subspace
    }

    /// `m^{|s|}`: the number of projected cells of this subspace.
    pub fn cell_count_total(&self) -> f64 {
        self.cell_count
    }

    /// Number of populated projected cells.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when no cell is populated.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    #[inline]
    fn stripe(&self, slot: usize) -> &[f64] {
        &self.moments[slot * 2 * self.card..(slot + 1) * 2 * self.card]
    }

    /// Folds one point into its projected cell at tick `now` and derives
    /// the cell's PCS in the same access — the fused hot path. `base` must
    /// be the point's base-cell coordinates on the same grid; `total` the
    /// stream's global decayed weight at `now` (point included). Returns
    /// the PCS and the cell's decayed occupancy (point included), which
    /// the drift detector consumes as its freshness signal.
    pub fn update_and_pcs(
        &mut self,
        grid: &Grid,
        model: &TimeModel,
        now: u64,
        base: &[u16],
        point: &DataPoint,
        total: f64,
    ) -> (Pcs, f64) {
        let slot = self.upsert_with(grid, now, base, point, |last| {
            model.decay_between(last, now)
        });
        let d = self.d[slot];
        let pcs = self.derive_slot(d, d, self.stripe(slot), total);
        (pcs, d)
    }

    /// [`ProjectedStore::update_and_pcs`] with the cell renormalization
    /// factor served from a per-run decay table (the batch ingestion
    /// path): repeat touches of a cell within the run cost one table load
    /// instead of one `powi`. Bit-identical to the model path.
    // Hot-path signature: the extra argument over `update_and_pcs` is the
    // decay table itself; bundling it with the model would cost a struct
    // build per call site in the shard loop.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn update_and_pcs_run(
        &mut self,
        grid: &Grid,
        model: &TimeModel,
        table: &DecayTable,
        now: u64,
        base: &[u16],
        point: &DataPoint,
        total: f64,
    ) -> (Pcs, f64) {
        let slot = self.upsert_with(grid, now, base, point, |last| {
            table.factor(model, last, now)
        });
        let d = self.d[slot];
        let pcs = self.derive_slot(d, d, self.stripe(slot), total);
        (pcs, d)
    }

    /// Updates the store with one point at tick `now` without deriving the
    /// PCS (replay/warm-up path). `base` must be the point's base-cell
    /// coordinates on the same grid.
    pub fn update(
        &mut self,
        grid: &Grid,
        model: &TimeModel,
        now: u64,
        base: &[u16],
        point: &DataPoint,
    ) {
        self.upsert_with(grid, now, base, point, |last| {
            model.decay_between(last, now)
        });
    }

    /// Inserts the point, returning its slot. Existing cells are decayed to
    /// `now` first — `factor_of(last_tick)` supplies the renormalization
    /// multiplier (straight from the time model, or from a per-run decay
    /// table). New cells extend the columns (the only allocating path,
    /// taken once per distinct populated cell).
    fn upsert_with(
        &mut self,
        grid: &Grid,
        now: u64,
        base: &[u16],
        point: &DataPoint,
        factor_of: impl FnOnce(u64) -> f64,
    ) -> usize {
        let key = grid.project_key(base, &self.subspace);
        let stride = 2 * self.card;
        let slot = match self.index.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let slot = *e.get() as usize;
                let f = factor_of(self.last_tick[slot]);
                if f != 1.0 {
                    self.d[slot] *= f;
                    for v in &mut self.moments[slot * stride..(slot + 1) * stride] {
                        *v *= f;
                    }
                }
                self.last_tick[slot] = now;
                slot
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                let slot = self.keys.len();
                e.insert(slot as u32);
                self.keys.push(key);
                self.d.push(0.0);
                self.last_tick.push(now);
                self.moments.extend(std::iter::repeat_n(0.0, stride));
                slot
            }
        };
        self.min_last_tick = self.min_last_tick.min(now);
        self.d[slot] += 1.0;
        let stripe = &mut self.moments[slot * stride..(slot + 1) * stride];
        let (ls, ss) = stripe.split_at_mut(self.card);
        for (i, d) in self.subspace.dims().enumerate() {
            let v = point.value(d);
            ls[i] += v;
            ss[i] += v * v;
        }
        slot
    }

    /// PCS of the projected cell containing `base`, renormalized to `now`.
    /// `total` is the stream's global decayed weight at `now`. (Query-only
    /// path; the detection hot path uses
    /// [`ProjectedStore::update_and_pcs`].)
    pub fn pcs(&self, grid: &Grid, model: &TimeModel, now: u64, base: &[u16], total: f64) -> Pcs {
        let key = grid.project_key(base, &self.subspace);
        match self.index.get(&key) {
            None => Pcs::EMPTY,
            Some(&slot) => {
                let slot = slot as usize;
                let d_now = self.d[slot] * model.decay_between(self.last_tick[slot], now);
                // σ must come from the *stored* count alongside the stored
                // moments — mixing the renormalized count with undecayed
                // LS/SS sums would inflate the means and corrupt IRSD for
                // any cell queried after its last update. σ is
                // decay-invariant, so the stored triple is exact.
                self.derive_slot(d_now, self.d[slot], self.stripe(slot), total)
            }
        }
    }

    /// Derives the `(RD, IRSD)` pair from a cell's decayed count (`d_now`,
    /// renormalized to the query tick) and its stored count + moment stripe
    /// (`d_stored`, self-consistent with `moments`).
    ///
    /// Cells holding less than two points of decayed weight report
    /// `irsd = 0`: with at most one (weighted) occupant, dispersion carries
    /// no evidence of structure, and the cell is maximally sparse — this is
    /// what lets a lone projected outlier satisfy the paper's
    /// "small RD *and* small IRSD" rule.
    fn derive_slot(&self, d_now: f64, d_stored: f64, moments: &[f64], total: f64) -> Pcs {
        let rd = if total > f64::EPSILON {
            d_now * self.cell_count / total
        } else {
            0.0
        };
        let irsd = if d_now < 2.0 {
            0.0
        } else {
            match sigma_of(d_stored, moments) {
                Some(sigma) if sigma > f64::EPSILON => self.uniform_sigma / sigma,
                // All mass on one spot (σ=0): a maximally concentrated
                // micro-cluster, the opposite of scattered sparsity.
                _ => f64::MAX,
            }
        };
        Pcs { rd, irsd }
    }

    /// Iterates over populated cells as (key, cell view).
    pub fn iter(&self) -> impl Iterator<Item = (CellKey, PcsCell<'_>)> + '_ {
        self.keys.iter().enumerate().map(move |(slot, &key)| {
            (
                key,
                PcsCell {
                    d: self.d[slot],
                    last_tick: self.last_tick[slot],
                    moments: self.stripe(slot),
                },
            )
        })
    }

    /// Removes cells whose decayed count at `now` fell below `floor`.
    /// Returns the number of evicted cells. This is what bounds the
    /// synopsis memory on an unbounded stream. A linear sweep over the
    /// contiguous columns with swap-remove compaction — cheap enough to
    /// call on a short cadence.
    pub fn prune(&mut self, model: &TimeModel, now: u64, floor: f64) -> usize {
        self.prune_impl(now, floor, |last| model.decay_between(last, now))
    }

    /// [`ProjectedStore::prune`] with decay factors served from a shared
    /// [`WeightCache`] — bit-identical eviction decisions (the cache
    /// memoizes exact `weight_after` results), one `powi` per *distinct
    /// age* instead of one per cell. Safe to run on store shards in
    /// parallel: the cache is read-only here.
    pub fn prune_cached(
        &mut self,
        model: &TimeModel,
        weights: &WeightCache,
        now: u64,
        floor: f64,
    ) -> usize {
        self.prune_impl(now, floor, |last| weights.decay_between(model, last, now))
    }

    fn prune_impl(&mut self, _now: u64, floor: f64, factor: impl Fn(u64) -> f64) -> usize {
        // Eviction-horizon screen: every slot carries weight >= 1 at its
        // own `last_tick` (each upsert adds exactly 1 after decaying), so
        // its decayed count is at least `factor(min_last_tick)`. When even
        // that lower bound clears the floor, the sweep would evict nothing
        // - and a sweep that evicts nothing mutates nothing, so skipping
        // it is bit-identical.
        if self.min_last_tick == u64::MAX || factor(self.min_last_tick) >= floor {
            return 0;
        }
        let stride = 2 * self.card;
        let before = self.keys.len();
        let mut min_last = u64::MAX;
        let mut slot = 0usize;
        while slot < self.keys.len() {
            let live = self.d[slot] * factor(self.last_tick[slot]) >= floor;
            if live {
                min_last = min_last.min(self.last_tick[slot]);
                slot += 1;
                continue;
            }
            let last = self.keys.len() - 1;
            self.index.remove(&self.keys[slot]);
            if slot != last {
                self.keys.swap(slot, last);
                self.d.swap(slot, last);
                self.last_tick.swap(slot, last);
                for i in 0..stride {
                    self.moments.swap(slot * stride + i, last * stride + i);
                }
                *self
                    .index
                    .get_mut(&self.keys[slot])
                    .expect("moved key is indexed") = slot as u32;
            }
            self.keys.pop();
            self.d.pop();
            self.last_tick.pop();
            self.moments.truncate(last * stride);
        }
        self.min_last_tick = min_last;
        before - self.keys.len()
    }

    /// Approximate heap footprint in bytes. Accounted from the *content*
    /// (live cells), not `Vec` capacities — allocator history is neither
    /// restorable nor comparable, and the footprint must be a pure
    /// function of the synopsis content so a checkpoint-restored store
    /// reports exactly what the uninterrupted one does.
    pub fn approx_bytes(&self) -> usize {
        let cells = self.keys.len();
        std::mem::size_of::<Self>()
            + cells * std::mem::size_of::<CellKey>()
            + cells * std::mem::size_of::<f64>()
            + cells * std::mem::size_of::<u64>()
            + cells * 2 * self.card * std::mem::size_of::<f64>()
            + cells * (std::mem::size_of::<CellKey>() + std::mem::size_of::<u32>())
    }
}

impl DurableState for ProjectedStore {
    /// The SoA columns are captured verbatim in slot order — restoring
    /// reproduces the exact slot layout (and with it iteration and
    /// pruning-compaction order), not just the logical cell map.
    fn capture(&self, w: &mut StateWriter) {
        w.u64("mask", self.subspace.mask());
        w.u128_col("keys", self.keys.iter().map(|k| k.0));
        w.f64_bits_col("d", self.d.iter().copied());
        w.u64_col("last", self.last_tick.iter().copied());
        w.f64_bits_col("moments", self.moments.iter().copied());
    }

    /// Restores the columns into a store already constructed for the same
    /// grid and subspace (`ProjectedStore::new` supplies the derived
    /// RD/IRSD numerators; the snapshot supplies the cells).
    fn restore(&mut self, r: &StateReader<'_>) -> Result<(), PersistError> {
        let mask = r.u64("mask")?;
        if mask != self.subspace.mask() {
            return Err(PersistError::custom(format!(
                "store subspace mismatch: snapshot has {mask:#x}, store is {:#x}",
                self.subspace.mask()
            )));
        }
        let keys = r.u128_col("keys")?;
        let d = r.f64_bits_col("d")?;
        let last = r.u64_col("last")?;
        let moments = r.f64_bits_col("moments")?;
        let n = keys.len();
        let stride = 2 * self.card;
        if d.len() != n || last.len() != n || moments.len() != n * stride {
            return Err(PersistError::custom(format!(
                "projected store columns disagree: {n} keys, {} d, {} last, {} moments \
                 (cardinality {})",
                d.len(),
                last.len(),
                moments.len(),
                self.card
            )));
        }
        self.index.clear();
        self.index.reserve(n);
        for (slot, &key) in keys.iter().enumerate() {
            if self.index.insert(CellKey(key), slot as u32).is_some() {
                return Err(PersistError::custom(format!(
                    "duplicate projected cell key at slot {slot}"
                )));
            }
        }
        self.keys = keys.into_iter().map(CellKey).collect();
        self.d = d;
        self.min_last_tick = last.iter().copied().min().unwrap_or(u64::MAX);
        self.last_tick = last;
        self.moments = moments;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spot_types::DomainBounds;

    fn setup(dims: usize, m: u16) -> (Grid, TimeModel) {
        (
            Grid::new(DomainBounds::unit(dims), m).unwrap(),
            TimeModel::new(100, 0.01).unwrap(),
        )
    }

    fn update(store: &mut ProjectedStore, grid: &Grid, tm: &TimeModel, now: u64, p: &DataPoint) {
        let base = grid.base_coords(p).unwrap();
        store.update(grid, tm, now, &base, p);
    }

    #[test]
    fn horizon_screen_skips_only_no_op_prunes() {
        // TimeModel(100, 0.01): a lone point falls below floor=1e-3 once
        // 0.01^(age/100) < 1e-3, i.e. strictly after age 150.
        let (grid, tm) = setup(2, 4);
        let s = Subspace::from_dims([0, 1]).unwrap();
        let mut store = ProjectedStore::new(&grid, s);
        update(&mut store, &grid, &tm, 10, &DataPoint::new(vec![0.1, 0.1]));
        for _ in 0..5 {
            update(&mut store, &grid, &tm, 100, &DataPoint::new(vec![0.9, 0.9]));
        }
        // Inside the horizon: screened out, nothing touched.
        assert_eq!(store.prune(&tm, 120, 1e-3), 0);
        assert_eq!(store.len(), 2);
        // Past the lone cell's horizon: the sweep runs and evicts it, and
        // the recomputed horizon screens the immediate re-prune.
        assert_eq!(store.prune(&tm, 200, 1e-3), 1);
        assert_eq!(store.len(), 1);
        assert_eq!(store.prune(&tm, 200, 1e-3), 0);
        // The survivor eventually decays out too.
        assert_eq!(store.prune(&tm, 500, 1e-3), 1);
        assert_eq!(store.len(), 0);
        // Empty store: screened out.
        assert_eq!(store.prune(&tm, 600, 1e-3), 0);
    }

    #[test]
    fn rd_is_one_for_uniform_occupancy() {
        // 2 dims, m=2 → 4 projected cells in the 2-dim subspace. Put one
        // point in each cell: RD of every cell must be 1.
        let (grid, tm) = setup(2, 2);
        let s = Subspace::from_dims([0, 1]).unwrap();
        let mut store = ProjectedStore::new(&grid, s);
        let pts = [[0.25, 0.25], [0.25, 0.75], [0.75, 0.25], [0.75, 0.75]];
        for v in &pts {
            update(&mut store, &grid, &tm, 0, &DataPoint::new(v.to_vec()));
        }
        let total = 4.0;
        for v in &pts {
            let p = DataPoint::new(v.to_vec());
            let base = grid.base_coords(&p).unwrap();
            let pcs = store.pcs(&grid, &tm, 0, &base, total);
            assert!((pcs.rd - 1.0).abs() < 1e-9, "rd={}", pcs.rd);
        }
    }

    #[test]
    fn sparse_cell_has_low_rd() {
        let (grid, tm) = setup(2, 4);
        let s = Subspace::from_dims([0]).unwrap();
        let mut store = ProjectedStore::new(&grid, s);
        // 99 points in interval 0 of dim 0, 1 point in interval 3.
        for i in 0..99 {
            update(
                &mut store,
                &grid,
                &tm,
                0,
                &DataPoint::new(vec![0.1, (i % 10) as f64 / 10.0]),
            );
        }
        let lone = DataPoint::new(vec![0.9, 0.5]);
        update(&mut store, &grid, &tm, 0, &lone);
        let total = 100.0;
        let base = grid.base_coords(&lone).unwrap();
        let sparse = store.pcs(&grid, &tm, 0, &base, total);
        assert!(sparse.rd < 0.1, "rd={}", sparse.rd);
        let crowded = DataPoint::new(vec![0.1, 0.5]);
        let base = grid.base_coords(&crowded).unwrap();
        let dense = store.pcs(&grid, &tm, 0, &base, total);
        assert!(dense.rd > 1.0, "rd={}", dense.rd);
    }

    #[test]
    fn fused_update_matches_separate_query() {
        let (grid, tm) = setup(3, 8);
        let s = Subspace::from_dims([0, 2]).unwrap();
        let mut fused = ProjectedStore::new(&grid, s);
        let mut split = ProjectedStore::new(&grid, s);
        let pts: Vec<DataPoint> = (0..200)
            .map(|i| {
                DataPoint::new(vec![
                    (i % 13) as f64 / 13.0,
                    0.5,
                    ((i * 7) % 11) as f64 / 11.0,
                ])
            })
            .collect();
        for (i, p) in pts.iter().enumerate() {
            let now = i as u64;
            let total = (i + 1) as f64;
            let base = grid.base_coords(p).unwrap();
            let (pcs_fused, occ) = fused.update_and_pcs(&grid, &tm, now, &base, p, total);
            split.update(&grid, &tm, now, &base, p);
            let pcs_split = split.pcs(&grid, &tm, now, &base, total);
            assert_eq!(pcs_fused, pcs_split, "point {i}");
            assert!(occ > 0.0);
        }
    }

    #[test]
    fn tabled_update_matches_model_update_bitwise() {
        let (grid, tm) = setup(3, 8);
        let s = Subspace::from_dims([0, 2]).unwrap();
        let mut by_model = ProjectedStore::new(&grid, s);
        let mut by_table = ProjectedStore::new(&grid, s);
        let mut table = DecayTable::new();
        let pts: Vec<DataPoint> = (0..120)
            .map(|i| DataPoint::new(vec![(i % 5) as f64 / 5.0, 0.5, ((i * 3) % 4) as f64 / 4.0]))
            .collect();
        // Runs with gaps: in-run repeat touches hit the table, first
        // touches of stale cells take the powi fallback.
        for (run_idx, run) in pts.chunks(40).enumerate() {
            let start = 1 + run_idx as u64 * 100;
            table.fill(&tm, start, run.len());
            for (i, p) in run.iter().enumerate() {
                let now = start + i as u64;
                let total = (run_idx * 40 + i + 1) as f64;
                let base = grid.base_coords(p).unwrap();
                let (pa, occ_a) = by_model.update_and_pcs(&grid, &tm, now, &base, p, total);
                let (pb, occ_b) =
                    by_table.update_and_pcs_run(&grid, &tm, &table, now, &base, p, total);
                assert_eq!(pa.rd.to_bits(), pb.rd.to_bits(), "rd at point {i}");
                assert_eq!(pa.irsd.to_bits(), pb.irsd.to_bits(), "irsd at point {i}");
                assert_eq!(occ_a.to_bits(), occ_b.to_bits(), "occupancy at point {i}");
            }
        }
        assert_eq!(by_model.len(), by_table.len());
        for ((ka, ca), (kb, cb)) in by_model.iter().zip(by_table.iter()) {
            assert_eq!(ka, kb);
            assert_eq!(
                ca.count_at(&tm, 500).to_bits(),
                cb.count_at(&tm, 500).to_bits()
            );
        }
    }

    #[test]
    fn publish_delta_tracks_growth_and_pruning() {
        let (grid, tm) = setup(1, 4);
        let s = Subspace::from_dims([0]).unwrap();
        let mut store = ProjectedStore::new(&grid, s);
        let (c0, b0) = store.publish_delta();
        assert_eq!(c0, 0);
        assert!(b0 >= 0);
        update(&mut store, &grid, &tm, 0, &DataPoint::new(vec![0.1]));
        update(&mut store, &grid, &tm, 0, &DataPoint::new(vec![0.9]));
        let (dc, db) = store.publish_delta();
        assert_eq!(dc, 2);
        assert!(db > 0);
        assert_eq!(store.publish_delta(), (0, 0), "no change, no delta");
        store.prune(&tm, 100 * 20, 1e-6);
        let (dc, _) = store.publish_delta();
        assert_eq!(dc, -2);
    }

    #[test]
    fn empty_cell_yields_empty_pcs() {
        let (grid, tm) = setup(2, 4);
        let s = Subspace::from_dims([0, 1]).unwrap();
        let store = ProjectedStore::new(&grid, s);
        let p = DataPoint::new(vec![0.5, 0.5]);
        let base = grid.base_coords(&p).unwrap();
        assert_eq!(store.pcs(&grid, &tm, 0, &base, 10.0), Pcs::EMPTY);
    }

    #[test]
    fn irsd_distinguishes_tight_from_scattered() {
        let (grid, tm) = setup(1, 2);
        let s = Subspace::from_dims([0]).unwrap();

        // Tight cluster inside interval 0 ([0, 0.5)).
        let mut tight = ProjectedStore::new(&grid, s);
        for i in 0..50 {
            let v = 0.25 + (i as f64 - 25.0) * 1e-4;
            update(&mut tight, &grid, &tm, 0, &DataPoint::new(vec![v]));
        }
        // Scattered across the full interval.
        let mut scattered = ProjectedStore::new(&grid, s);
        for i in 0..50 {
            let v = 0.5 * (i as f64 + 0.5) / 50.0;
            update(&mut scattered, &grid, &tm, 0, &DataPoint::new(vec![v]));
        }
        let probe = DataPoint::new(vec![0.25]);
        let base = grid.base_coords(&probe).unwrap();
        let t = tight.pcs(&grid, &tm, 0, &base, 50.0);
        let sc = scattered.pcs(&grid, &tm, 0, &base, 50.0);
        assert!(
            t.irsd > sc.irsd,
            "tight {} vs scattered {}",
            t.irsd,
            sc.irsd
        );
        // Uniform scatter has IRSD near 1.
        assert!((sc.irsd - 1.0).abs() < 0.2, "irsd={}", sc.irsd);
    }

    #[test]
    fn singleton_cell_is_maximally_sparse() {
        let (grid, tm) = setup(1, 2);
        let s = Subspace::from_dims([0]).unwrap();
        let mut store = ProjectedStore::new(&grid, s);
        update(&mut store, &grid, &tm, 0, &DataPoint::new(vec![0.3]));
        let base = grid.base_coords(&DataPoint::new(vec![0.3])).unwrap();
        let pcs = store.pcs(&grid, &tm, 0, &base, 100.0);
        assert_eq!(pcs.irsd, 0.0, "lone occupant must read as sparse");
        assert!(pcs.rd < 0.1);
    }

    #[test]
    fn identical_points_saturate_irsd() {
        let (grid, tm) = setup(1, 2);
        let s = Subspace::from_dims([0]).unwrap();
        let mut store = ProjectedStore::new(&grid, s);
        for _ in 0..5 {
            update(&mut store, &grid, &tm, 0, &DataPoint::new(vec![0.3]));
        }
        let base = grid.base_coords(&DataPoint::new(vec![0.3])).unwrap();
        let pcs = store.pcs(&grid, &tm, 0, &base, 5.0);
        assert_eq!(pcs.irsd, f64::MAX);
    }

    #[test]
    fn stale_query_keeps_irsd_invariant() {
        // σ (and hence IRSD) is derived from the self-consistent stored
        // D/LS/SS triple, so querying a cell long after its last update
        // must decay RD but leave IRSD exactly where it was — regression
        // guard against mixing the renormalized count with undecayed
        // moment sums (which drove σ→0 and IRSD→f64::MAX).
        let (grid, tm) = setup(1, 2);
        let s = Subspace::from_dims([0]).unwrap();
        let mut store = ProjectedStore::new(&grid, s);
        for i in 0..100 {
            let v = 0.5 * (i as f64 + 0.5) / 100.0; // spread over interval 0
            update(&mut store, &grid, &tm, 0, &DataPoint::new(vec![v]));
        }
        let base = grid.base_coords(&DataPoint::new(vec![0.25])).unwrap();
        let fresh = store.pcs(&grid, &tm, 0, &base, 100.0);
        let stale = store.pcs(&grid, &tm, 32, &base, 100.0);
        assert!(fresh.irsd.is_finite() && fresh.irsd > 0.0);
        assert_eq!(
            stale.irsd.to_bits(),
            fresh.irsd.to_bits(),
            "IRSD must be query-tick-invariant: fresh={} stale={}",
            fresh.irsd,
            stale.irsd
        );
        assert!(stale.rd < fresh.rd, "RD must decay with the cell count");
        // Once the decayed occupancy drops below 2, the cell reads as
        // maximally sparse again (matching the seed's d<2 rule).
        let ancient = store.pcs(&grid, &tm, 100 * 6, &base, 100.0);
        assert_eq!(ancient.irsd, 0.0);
    }

    #[test]
    fn pruning_evicts_stale_cells() {
        let (grid, tm) = setup(1, 4);
        let s = Subspace::from_dims([0]).unwrap();
        let mut store = ProjectedStore::new(&grid, s);
        update(&mut store, &grid, &tm, 0, &DataPoint::new(vec![0.1]));
        update(&mut store, &grid, &tm, 0, &DataPoint::new(vec![0.9]));
        assert_eq!(store.len(), 2);
        // After many omega windows both cells hold ~nothing.
        let evicted = store.prune(&tm, 100 * 20, 1e-6);
        assert_eq!(evicted, 2);
        assert!(store.is_empty());
    }

    #[test]
    fn pruning_keeps_fresh_cells() {
        let (grid, tm) = setup(1, 4);
        let s = Subspace::from_dims([0]).unwrap();
        let mut store = ProjectedStore::new(&grid, s);
        update(&mut store, &grid, &tm, 1000, &DataPoint::new(vec![0.1]));
        assert_eq!(store.prune(&tm, 1000, 0.5), 0);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn pruning_compaction_keeps_survivors_queryable() {
        let (grid, tm) = setup(1, 8);
        let s = Subspace::from_dims([0]).unwrap();
        let mut store = ProjectedStore::new(&grid, s);
        // Four old cells, then refresh two of them much later.
        for i in 0..4 {
            update(
                &mut store,
                &grid,
                &tm,
                0,
                &DataPoint::new(vec![i as f64 / 8.0 + 0.01]),
            );
        }
        let now = 5000;
        let fresh = [0.01, 0.26];
        for v in fresh {
            update(&mut store, &grid, &tm, now, &DataPoint::new(vec![v]));
        }
        let evicted = store.prune(&tm, now, 0.5);
        assert_eq!(evicted, 2);
        assert_eq!(store.len(), 2);
        for v in fresh {
            let base = grid.base_coords(&DataPoint::new(vec![v])).unwrap();
            let pcs = store.pcs(&grid, &tm, now, &base, 2.0);
            assert!(pcs.rd > 0.0, "survivor at {v} lost its cell");
        }
        // Index stays consistent with the compacted columns.
        for (key, cell) in store.iter() {
            assert!(cell.count_at(&tm, now) >= 0.5);
            let _ = key;
        }
    }

    #[test]
    fn decayed_counts_follow_time_model() {
        let (grid, tm) = setup(1, 2);
        let s = Subspace::from_dims([0]).unwrap();
        let mut store = ProjectedStore::new(&grid, s);
        let p = DataPoint::new(vec![0.25]);
        update(&mut store, &grid, &tm, 0, &p);
        let (_, cell) = store.iter().next().unwrap();
        let at_omega = cell.count_at(&tm, 100);
        assert!((at_omega - 0.01).abs() < 1e-6); // epsilon at omega
    }
}
