//! Projected Cell Summary.

use crate::grid::{CellCoords, Grid};
use serde::{Deserialize, Serialize};
use spot_stream::TimeModel;
use spot_subspace::Subspace;
use spot_types::{DataPoint, FxHashMap};

/// The derived PCS pair of a projected cell: `(RD, IRSD)`.
///
/// * `rd` — **Relative Density**: the cell's decayed count relative to the
///   expected count under a uniform stream, `D · m^{|s|} / N`. `rd < 1`
///   means sparser than uniform.
/// * `irsd` — **Inverse Relative Standard Deviation**: the dispersion of a
///   uniform cell relative to the cell's own dispersion,
///   `σ_uniform(s) / σ(c,s)`. Points scattered across the cell give
///   `irsd ≈ 1`; points spread *more* than uniform give `irsd < 1`.
///
/// Following the paper, *small RD and small IRSD* flag the sparse cells in
/// which projected outliers live.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pcs {
    /// Relative density (≥ 0; 1 = uniform expectation).
    pub rd: f64,
    /// Inverse relative standard deviation (≥ 0).
    pub irsd: f64,
}

impl Pcs {
    /// PCS of a cell nobody has populated: zero density. IRSD is reported
    /// as 0 (maximally sparse) so that threshold tests treat unseen cells
    /// as outlying regions.
    pub const EMPTY: Pcs = Pcs { rd: 0.0, irsd: 0.0 };
}

/// Per-projected-cell decayed statistics (count + per-dim LS/SS restricted
/// to the subspace's dimensions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcsCell {
    d: f64,
    ls: Vec<f64>,
    ss: Vec<f64>,
    last_tick: u64,
}

impl PcsCell {
    fn new(card: usize, tick: u64) -> Self {
        PcsCell { d: 0.0, ls: vec![0.0; card], ss: vec![0.0; card], last_tick: tick }
    }

    #[inline]
    fn decay_to(&mut self, model: &TimeModel, now: u64) {
        let f = model.decay_between(self.last_tick, now);
        if f != 1.0 {
            self.d *= f;
            for v in &mut self.ls {
                *v *= f;
            }
            for v in &mut self.ss {
                *v *= f;
            }
        }
        self.last_tick = now;
    }

    /// Folds in the projected values of one point at tick `now`.
    fn insert(&mut self, model: &TimeModel, now: u64, projected_values: impl Iterator<Item = f64>) {
        self.decay_to(model, now);
        self.d += 1.0;
        for (i, v) in projected_values.enumerate() {
            self.ls[i] += v;
            self.ss[i] += v * v;
        }
    }

    /// Decayed count renormalized to `now`.
    #[inline]
    pub fn count_at(&self, model: &TimeModel, now: u64) -> f64 {
        self.d * model.decay_between(self.last_tick, now)
    }

    /// Aggregate standard deviation over the subspace's dimensions
    /// (Euclidean norm of the per-dimension deviations). `None` when the
    /// cell holds less than ~one point of decayed weight.
    pub fn sigma(&self) -> Option<f64> {
        if self.d <= f64::EPSILON {
            return None;
        }
        let mut acc = 0.0;
        for i in 0..self.ls.len() {
            let m = self.ls[i] / self.d;
            acc += (self.ss[i] / self.d - m * m).max(0.0);
        }
        Some(acc.sqrt())
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + 2 * self.ls.capacity() * std::mem::size_of::<f64>()
    }
}

/// All populated projected cells of one subspace.
#[derive(Debug, Clone)]
pub struct ProjectedStore {
    subspace: Subspace,
    cells: FxHashMap<CellCoords, PcsCell>,
    /// `m^{|s|}` — precomputed RD multiplier numerator.
    cell_count: f64,
    /// `σ_uniform(s)` — precomputed IRSD numerator.
    uniform_sigma: f64,
}

impl ProjectedStore {
    /// Empty store for `subspace` over `grid`.
    pub fn new(grid: &Grid, subspace: Subspace) -> Self {
        ProjectedStore {
            subspace,
            cells: FxHashMap::default(),
            cell_count: grid.cell_count_in(&subspace),
            uniform_sigma: grid.uniform_sigma_in(&subspace),
        }
    }

    /// The subspace this store projects onto.
    pub fn subspace(&self) -> Subspace {
        self.subspace
    }

    /// Number of populated projected cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when no cell is populated.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Updates the store with one point at tick `now`. `base` must be the
    /// point's base-cell coordinates on the same grid.
    pub fn update(
        &mut self,
        grid: &Grid,
        model: &TimeModel,
        now: u64,
        base: &[u16],
        point: &DataPoint,
    ) {
        let coords = grid.project(base, &self.subspace);
        let card = self.subspace.cardinality();
        let cell =
            self.cells.entry(coords).or_insert_with(|| PcsCell::new(card, now));
        cell.insert(model, now, self.subspace.dims().map(|d| point.value(d)));
    }

    /// PCS of the projected cell containing `base`, renormalized to `now`.
    /// `total` is the stream's global decayed weight at `now`.
    pub fn pcs(
        &self,
        grid: &Grid,
        model: &TimeModel,
        now: u64,
        base: &[u16],
        total: f64,
    ) -> Pcs {
        let coords = grid.project(base, &self.subspace);
        match self.cells.get(&coords) {
            None => Pcs::EMPTY,
            Some(cell) => self.derive(model, now, cell, total),
        }
    }

    /// Derives the `(RD, IRSD)` pair from a stored cell.
    ///
    /// Cells holding less than two points of decayed weight report
    /// `irsd = 0`: with at most one (weighted) occupant, dispersion carries
    /// no evidence of structure, and the cell is maximally sparse — this is
    /// what lets a lone projected outlier satisfy the paper's
    /// "small RD *and* small IRSD" rule.
    pub fn derive(&self, model: &TimeModel, now: u64, cell: &PcsCell, total: f64) -> Pcs {
        let d = cell.count_at(model, now);
        let rd = if total > f64::EPSILON { d * self.cell_count / total } else { 0.0 };
        let irsd = if d < 2.0 {
            0.0
        } else {
            match cell.sigma() {
                Some(sigma) if sigma > f64::EPSILON => self.uniform_sigma / sigma,
                // All mass on one spot (σ=0): a maximally concentrated
                // micro-cluster, the opposite of scattered sparsity.
                _ => f64::MAX,
            }
        };
        Pcs { rd, irsd }
    }

    /// Iterates over populated cells (coords, summary).
    pub fn iter(&self) -> impl Iterator<Item = (&CellCoords, &PcsCell)> {
        self.cells.iter()
    }

    /// Removes cells whose decayed count at `now` fell below `floor`.
    /// Returns the number of evicted cells. This is what bounds the
    /// synopsis memory on an unbounded stream.
    pub fn prune(&mut self, model: &TimeModel, now: u64, floor: f64) -> usize {
        let before = self.cells.len();
        self.cells.retain(|_, cell| cell.count_at(model, now) >= floor);
        before - self.cells.len()
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        let cells: usize = self
            .cells
            .iter()
            .map(|(k, v)| k.len() * std::mem::size_of::<u16>() + v.approx_bytes())
            .sum();
        std::mem::size_of::<Self>() + cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spot_types::DomainBounds;

    fn setup(dims: usize, m: u16) -> (Grid, TimeModel) {
        (Grid::new(DomainBounds::unit(dims), m).unwrap(), TimeModel::new(100, 0.01).unwrap())
    }

    fn update(
        store: &mut ProjectedStore,
        grid: &Grid,
        tm: &TimeModel,
        now: u64,
        p: &DataPoint,
    ) {
        let base = grid.base_coords(p).unwrap();
        store.update(grid, tm, now, &base, p);
    }

    #[test]
    fn rd_is_one_for_uniform_occupancy() {
        // 2 dims, m=2 → 4 projected cells in the 2-dim subspace. Put one
        // point in each cell: RD of every cell must be 1.
        let (grid, tm) = setup(2, 2);
        let s = Subspace::from_dims([0, 1]).unwrap();
        let mut store = ProjectedStore::new(&grid, s);
        let pts = [[0.25, 0.25], [0.25, 0.75], [0.75, 0.25], [0.75, 0.75]];
        for v in &pts {
            update(&mut store, &grid, &tm, 0, &DataPoint::new(v.to_vec()));
        }
        let total = 4.0;
        for v in &pts {
            let p = DataPoint::new(v.to_vec());
            let base = grid.base_coords(&p).unwrap();
            let pcs = store.pcs(&grid, &tm, 0, &base, total);
            assert!((pcs.rd - 1.0).abs() < 1e-9, "rd={}", pcs.rd);
        }
    }

    #[test]
    fn sparse_cell_has_low_rd() {
        let (grid, tm) = setup(2, 4);
        let s = Subspace::from_dims([0]).unwrap();
        let mut store = ProjectedStore::new(&grid, s);
        // 99 points in interval 0 of dim 0, 1 point in interval 3.
        for i in 0..99 {
            update(&mut store, &grid, &tm, 0, &DataPoint::new(vec![0.1, (i % 10) as f64 / 10.0]));
        }
        let lone = DataPoint::new(vec![0.9, 0.5]);
        update(&mut store, &grid, &tm, 0, &lone);
        let total = 100.0;
        let base = grid.base_coords(&lone).unwrap();
        let sparse = store.pcs(&grid, &tm, 0, &base, total);
        assert!(sparse.rd < 0.1, "rd={}", sparse.rd);
        let crowded = DataPoint::new(vec![0.1, 0.5]);
        let base = grid.base_coords(&crowded).unwrap();
        let dense = store.pcs(&grid, &tm, 0, &base, total);
        assert!(dense.rd > 1.0, "rd={}", dense.rd);
    }

    #[test]
    fn empty_cell_yields_empty_pcs() {
        let (grid, tm) = setup(2, 4);
        let s = Subspace::from_dims([0, 1]).unwrap();
        let store = ProjectedStore::new(&grid, s);
        let p = DataPoint::new(vec![0.5, 0.5]);
        let base = grid.base_coords(&p).unwrap();
        assert_eq!(store.pcs(&grid, &tm, 0, &base, 10.0), Pcs::EMPTY);
    }

    #[test]
    fn irsd_distinguishes_tight_from_scattered() {
        let (grid, tm) = setup(1, 2);
        let s = Subspace::from_dims([0]).unwrap();

        // Tight cluster inside interval 0 ([0, 0.5)).
        let mut tight = ProjectedStore::new(&grid, s);
        for i in 0..50 {
            let v = 0.25 + (i as f64 - 25.0) * 1e-4;
            update(&mut tight, &grid, &tm, 0, &DataPoint::new(vec![v]));
        }
        // Scattered across the full interval.
        let mut scattered = ProjectedStore::new(&grid, s);
        for i in 0..50 {
            let v = 0.5 * (i as f64 + 0.5) / 50.0;
            update(&mut scattered, &grid, &tm, 0, &DataPoint::new(vec![v]));
        }
        let probe = DataPoint::new(vec![0.25]);
        let base = grid.base_coords(&probe).unwrap();
        let t = tight.pcs(&grid, &tm, 0, &base, 50.0);
        let sc = scattered.pcs(&grid, &tm, 0, &base, 50.0);
        assert!(t.irsd > sc.irsd, "tight {} vs scattered {}", t.irsd, sc.irsd);
        // Uniform scatter has IRSD near 1.
        assert!((sc.irsd - 1.0).abs() < 0.2, "irsd={}", sc.irsd);
    }

    #[test]
    fn singleton_cell_is_maximally_sparse() {
        let (grid, tm) = setup(1, 2);
        let s = Subspace::from_dims([0]).unwrap();
        let mut store = ProjectedStore::new(&grid, s);
        update(&mut store, &grid, &tm, 0, &DataPoint::new(vec![0.3]));
        let base = grid.base_coords(&DataPoint::new(vec![0.3])).unwrap();
        let pcs = store.pcs(&grid, &tm, 0, &base, 100.0);
        assert_eq!(pcs.irsd, 0.0, "lone occupant must read as sparse");
        assert!(pcs.rd < 0.1);
    }

    #[test]
    fn identical_points_saturate_irsd() {
        let (grid, tm) = setup(1, 2);
        let s = Subspace::from_dims([0]).unwrap();
        let mut store = ProjectedStore::new(&grid, s);
        for _ in 0..5 {
            update(&mut store, &grid, &tm, 0, &DataPoint::new(vec![0.3]));
        }
        let base = grid.base_coords(&DataPoint::new(vec![0.3])).unwrap();
        let pcs = store.pcs(&grid, &tm, 0, &base, 5.0);
        assert_eq!(pcs.irsd, f64::MAX);
    }

    #[test]
    fn pruning_evicts_stale_cells() {
        let (grid, tm) = setup(1, 4);
        let s = Subspace::from_dims([0]).unwrap();
        let mut store = ProjectedStore::new(&grid, s);
        update(&mut store, &grid, &tm, 0, &DataPoint::new(vec![0.1]));
        update(&mut store, &grid, &tm, 0, &DataPoint::new(vec![0.9]));
        assert_eq!(store.len(), 2);
        // After many omega windows both cells hold ~nothing.
        let evicted = store.prune(&tm, 100 * 20, 1e-6);
        assert_eq!(evicted, 2);
        assert!(store.is_empty());
    }

    #[test]
    fn pruning_keeps_fresh_cells() {
        let (grid, tm) = setup(1, 4);
        let s = Subspace::from_dims([0]).unwrap();
        let mut store = ProjectedStore::new(&grid, s);
        update(&mut store, &grid, &tm, 1000, &DataPoint::new(vec![0.1]));
        assert_eq!(store.prune(&tm, 1000, 0.5), 0);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn decayed_counts_follow_time_model() {
        let (grid, tm) = setup(1, 2);
        let s = Subspace::from_dims([0]).unwrap();
        let mut store = ProjectedStore::new(&grid, s);
        let p = DataPoint::new(vec![0.25]);
        update(&mut store, &grid, &tm, 0, &p);
        let (_, cell) = store.iter().next().unwrap();
        let at_omega = cell.count_at(&tm, 100);
        assert!((at_omega - 0.01).abs() < 1e-6); // epsilon at omega
    }
}
