//! The synopsis manager: base store + one projected store per SST subspace.

use crate::grid::{CellCoords, Grid};
use crate::pcs::{Pcs, ProjectedStore};
use crate::store::BaseStore;
use spot_stream::{DecayedCounter, TimeModel};
use spot_subspace::Subspace;
use spot_types::{DataPoint, FxHashMap, Result, SpotError};

/// Bundles every decayed synopsis SPOT maintains online.
///
/// `update` is the per-point hot path of the detection stage: one base-cell
/// insertion plus one projected-cell insertion per monitored subspace, each
/// O(|s|) — no scan of historical data, as the one-pass constraint demands.
#[derive(Debug, Clone)]
pub struct SynopsisManager {
    grid: Grid,
    model: TimeModel,
    base: BaseStore,
    projected: FxHashMap<Subspace, ProjectedStore>,
    total: DecayedCounter,
}

/// Everything the detection logic needs to know after one update.
#[derive(Debug, Clone)]
pub struct UpdateOutcome {
    /// The point's base-cell coordinates (reused for PCS queries).
    pub base_coords: CellCoords,
    /// Decayed count of the base cell before this point arrived — the
    /// novelty signal used by the concept-drift detector.
    pub prior_base_count: f64,
    /// Global decayed weight after this point arrived.
    pub total_weight: f64,
}

impl SynopsisManager {
    /// Creates a manager with no monitored subspaces yet.
    pub fn new(grid: Grid, model: TimeModel) -> Self {
        SynopsisManager {
            grid,
            model,
            base: BaseStore::new(),
            projected: FxHashMap::default(),
            total: DecayedCounter::new(),
        }
    }

    /// The grid the synopses quantize over.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The time model driving decay.
    pub fn model(&self) -> &TimeModel {
        &self.model
    }

    /// Starts maintaining a projected store for `subspace`. No-op when
    /// already monitored. Returns `true` when newly added.
    pub fn add_subspace(&mut self, subspace: Subspace) -> bool {
        if self.projected.contains_key(&subspace) {
            return false;
        }
        let store = ProjectedStore::new(&self.grid, subspace);
        self.projected.insert(subspace, store);
        true
    }

    /// Stops maintaining `subspace`; returns `true` when it was monitored.
    pub fn remove_subspace(&mut self, subspace: &Subspace) -> bool {
        self.projected.remove(subspace).is_some()
    }

    /// Currently monitored subspaces (arbitrary order).
    pub fn subspaces(&self) -> impl Iterator<Item = Subspace> + '_ {
        self.projected.keys().copied()
    }

    /// Number of monitored subspaces.
    pub fn subspace_count(&self) -> usize {
        self.projected.len()
    }

    /// Ingests one point at tick `now`: updates the global weight, the base
    /// store and every monitored projected store.
    pub fn update(&mut self, now: u64, p: &DataPoint) -> Result<UpdateOutcome> {
        let (base_coords, prior_base_count) = self.base.insert(&self.grid, &self.model, now, p)?;
        self.total.add(&self.model, now, 1.0);
        for store in self.projected.values_mut() {
            store.update(&self.grid, &self.model, now, &base_coords, p);
        }
        Ok(UpdateOutcome {
            base_coords,
            prior_base_count,
            total_weight: self.total.value_at(&self.model, now),
        })
    }

    /// Warms the projected store of `subspace` by replaying timestamped
    /// points (e.g. the detector's reservoir sample) into it. Points must be
    /// supplied in non-decreasing tick order; the base store and global
    /// weight are *not* touched — those already absorbed the points when
    /// they originally arrived.
    ///
    /// Used when SST self-evolution introduces a subspace mid-stream: a
    /// brand-new store would report every cell as empty (maximally sparse)
    /// and flood the detector with false alarms.
    pub fn replay_into(&mut self, subspace: &Subspace, points: &[(u64, DataPoint)]) -> Result<()> {
        let Some(store) = self.projected.get_mut(subspace) else {
            return Err(SpotError::InvalidConfig(format!(
                "subspace {subspace} is not monitored"
            )));
        };
        for (tick, p) in points {
            let base = self.grid.base_coords(p)?;
            store.update(&self.grid, &self.model, *tick, &base, p);
        }
        Ok(())
    }

    /// PCS of the cell containing `base_coords` in `subspace` at tick
    /// `now`. Returns `None` when the subspace is not monitored.
    pub fn pcs(&self, now: u64, base_coords: &[u16], subspace: &Subspace) -> Option<Pcs> {
        let store = self.projected.get(subspace)?;
        let total = self.total.value_at(&self.model, now);
        Some(store.pcs(&self.grid, &self.model, now, base_coords, total))
    }

    /// Global decayed stream weight at tick `now`.
    pub fn total_weight(&self, now: u64) -> f64 {
        self.total.value_at(&self.model, now)
    }

    /// Decayed count of the base cell containing `p`.
    pub fn base_count_for(&self, now: u64, p: &DataPoint) -> Result<f64> {
        self.base.count_for(&self.grid, &self.model, now, p)
    }

    /// Prunes every store, evicting cells whose decayed count fell below
    /// `floor`. Returns the total number of evicted cells.
    pub fn prune(&mut self, now: u64, floor: f64) -> usize {
        let mut evicted = self.base.prune(&self.model, now, floor);
        for store in self.projected.values_mut() {
            evicted += store.prune(&self.model, now, floor);
        }
        evicted
    }

    /// Live cell count: (base cells, projected cells over all subspaces).
    pub fn live_cells(&self) -> (usize, usize) {
        let proj = self.projected.values().map(ProjectedStore::len).sum();
        (self.base.len(), proj)
    }

    /// Approximate heap footprint of all synopses, in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.base.approx_bytes()
            + self.projected.values().map(ProjectedStore::approx_bytes).sum::<usize>()
    }

    /// Read access to one projected store (experiments and self-evolution
    /// scoring).
    pub fn projected_store(&self, subspace: &Subspace) -> Option<&ProjectedStore> {
        self.projected.get(subspace)
    }

    /// Read access to the base store.
    pub fn base_store(&self) -> &BaseStore {
        &self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spot_types::DomainBounds;

    fn manager(dims: usize, m: u16) -> SynopsisManager {
        let grid = Grid::new(DomainBounds::unit(dims), m).unwrap();
        SynopsisManager::new(grid, TimeModel::new(100, 0.01).unwrap())
    }

    #[test]
    fn add_remove_subspaces() {
        let mut mgr = manager(3, 4);
        let s01 = Subspace::from_dims([0, 1]).unwrap();
        let s2 = Subspace::from_dims([2]).unwrap();
        assert!(mgr.add_subspace(s01));
        assert!(!mgr.add_subspace(s01));
        assert!(mgr.add_subspace(s2));
        assert_eq!(mgr.subspace_count(), 2);
        assert!(mgr.remove_subspace(&s2));
        assert!(!mgr.remove_subspace(&s2));
        assert_eq!(mgr.subspace_count(), 1);
    }

    #[test]
    fn update_touches_all_stores() {
        let mut mgr = manager(2, 4);
        let s0 = Subspace::from_dims([0]).unwrap();
        let s01 = Subspace::from_dims([0, 1]).unwrap();
        mgr.add_subspace(s0);
        mgr.add_subspace(s01);
        let p = DataPoint::new(vec![0.3, 0.7]);
        let out = mgr.update(1, &p).unwrap();
        assert_eq!(out.prior_base_count, 0.0);
        assert!((out.total_weight - 1.0).abs() < 1e-12);
        let (base_cells, proj_cells) = mgr.live_cells();
        assert_eq!(base_cells, 1);
        assert_eq!(proj_cells, 2);
        // PCS visible in both monitored subspaces.
        let pcs = mgr.pcs(1, &out.base_coords, &s0).unwrap();
        assert!(pcs.rd > 0.0);
        assert!(mgr.pcs(1, &out.base_coords, &Subspace::from_dims([1]).unwrap()).is_none());
    }

    #[test]
    fn rd_reflects_relative_crowding() {
        let mut mgr = manager(2, 4);
        let s0 = Subspace::from_dims([0]).unwrap();
        mgr.add_subspace(s0);
        // 90% of points in one interval of dim 0, 10% in another,
        // interleaved so decay weights both cells alike (recency-skewed
        // arrival orders shift RD by design — that is the time model
        // working, not the property under test).
        for i in 0..100u64 {
            let x = if i % 10 == 9 { 0.9 } else { 0.1 };
            mgr.update(i, &DataPoint::new(vec![x, (i % 7) as f64 / 7.0])).unwrap();
        }
        let crowded = DataPoint::new(vec![0.1, 0.5]);
        let sparse = DataPoint::new(vec![0.9, 0.5]);
        let now = 100;
        let bc = mgr.grid().base_coords(&crowded).unwrap();
        let bs = mgr.grid().base_coords(&sparse).unwrap();
        let rd_crowded = mgr.pcs(now, &bc, &s0).unwrap().rd;
        let rd_sparse = mgr.pcs(now, &bs, &s0).unwrap().rd;
        assert!(rd_crowded > rd_sparse);
        assert!(rd_sparse < 1.0);
    }

    #[test]
    fn prune_shrinks_all_stores() {
        let mut mgr = manager(2, 4);
        mgr.add_subspace(Subspace::from_dims([0]).unwrap());
        for i in 0..4 {
            let p = DataPoint::new(vec![(i as f64 + 0.5) / 4.0, 0.5]);
            mgr.update(0, &p).unwrap();
        }
        let (b0, p0) = mgr.live_cells();
        assert_eq!((b0, p0), (4, 4));
        let evicted = mgr.prune(10_000, 1e-6);
        assert_eq!(evicted, 8);
        assert_eq!(mgr.live_cells(), (0, 0));
    }

    #[test]
    fn total_weight_decays() {
        let mut mgr = manager(1, 4);
        mgr.update(0, &DataPoint::new(vec![0.5])).unwrap();
        let w0 = mgr.total_weight(0);
        let w100 = mgr.total_weight(100);
        assert!((w0 - 1.0).abs() < 1e-12);
        assert!((w100 - 0.01).abs() < 1e-6);
    }

    #[test]
    fn replay_warms_a_new_store() {
        let mut mgr = manager(2, 4);
        let p = DataPoint::new(vec![0.5, 0.5]);
        mgr.update(1, &p).unwrap();
        mgr.update(2, &p).unwrap();
        let s = Subspace::from_dims([1]).unwrap();
        mgr.add_subspace(s);
        mgr.replay_into(&s, &[(1, p.clone()), (2, p.clone())]).unwrap();
        let base = mgr.grid().base_coords(&p).unwrap();
        let pcs = mgr.pcs(2, &base, &s).unwrap();
        assert!(pcs.rd > 0.0, "replayed store must not look empty");
        // Unknown subspace errors.
        let other = Subspace::from_dims([0]).unwrap();
        assert!(mgr.replay_into(&other, &[]).is_err());
    }

    #[test]
    fn late_added_subspace_starts_empty() {
        let mut mgr = manager(2, 4);
        mgr.update(0, &DataPoint::new(vec![0.5, 0.5])).unwrap();
        let s = Subspace::from_dims([1]).unwrap();
        mgr.add_subspace(s);
        let p = DataPoint::new(vec![0.5, 0.5]);
        let base = mgr.grid().base_coords(&p).unwrap();
        // The store was added after the first point: its cells are empty.
        assert_eq!(mgr.pcs(0, &base, &s).unwrap(), Pcs::EMPTY);
    }
}
