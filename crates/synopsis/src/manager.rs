//! The synopsis manager: base store + one projected store per SST subspace.

use crate::grid::Grid;
use crate::key::CellKey;
use crate::pcs::{Pcs, ProjectedStore};
use crate::store::BaseStore;
use spot_stream::{DecayedCounter, TimeModel};
use spot_subspace::Subspace;
use spot_types::{DataPoint, FxHashMap, Result, SpotError};

/// Bundles every decayed synopsis SPOT maintains online.
///
/// [`SynopsisManager::update_and_query`] is the per-point hot path of the
/// detection stage: one base-cell insertion plus one projected-cell
/// insertion per monitored subspace, each O(|s|) — and the PCS of every
/// touched projected cell is derived *in the same cell access*, so the
/// detector never projects or hashes the same coordinates twice. On the
/// steady state (no new cells) the whole path performs zero heap
/// allocations: coordinates land in a reused scratch buffer, keys are
/// `Copy` integers, and results go into a caller-reused sink.
#[derive(Debug, Clone)]
pub struct SynopsisManager {
    grid: Grid,
    model: TimeModel,
    base: BaseStore,
    projected: FxHashMap<Subspace, ProjectedStore>,
    total: DecayedCounter,
    /// Reused quantization buffer (ϕ entries).
    scratch: Vec<u16>,
    /// Reused batch quantization buffer (n·ϕ entries).
    batch_coords: Vec<u16>,
}

/// Everything the detection logic needs to know after one update.
#[derive(Debug, Clone, Copy)]
pub struct UpdateOutcome {
    /// Key of the point's base cell.
    pub base_cell: CellKey,
    /// Decayed count of the base cell before this point arrived — the
    /// novelty signal used by the concept-drift detector.
    pub prior_base_count: f64,
    /// Global decayed weight after this point arrived.
    pub total_weight: f64,
}

/// One monitored subspace's verdict inputs for the point just ingested.
#[derive(Debug, Clone, Copy)]
pub struct SubspacePcs {
    /// The monitored subspace.
    pub subspace: Subspace,
    /// PCS of the projected cell the point fell into (point included).
    pub pcs: Pcs,
    /// Decayed occupancy of that cell, point included — the projected
    /// freshness signal consumed by the drift detector.
    pub occupancy: f64,
}

/// Borrowed per-batch invariants threaded through the store-update loops.
struct BatchCtx<'a> {
    grid: &'a Grid,
    model: &'a TimeModel,
    start_tick: u64,
    points: &'a [DataPoint],
    /// Flat quantized coordinates, stride ϕ.
    coords: &'a [u16],
    outcomes: &'a [UpdateOutcome],
}

impl SynopsisManager {
    /// Creates a manager with no monitored subspaces yet.
    pub fn new(grid: Grid, model: TimeModel) -> Self {
        let scratch = Vec::with_capacity(grid.dims());
        SynopsisManager {
            grid,
            model,
            base: BaseStore::new(),
            projected: FxHashMap::default(),
            total: DecayedCounter::new(),
            scratch,
            batch_coords: Vec::new(),
        }
    }

    /// The grid the synopses quantize over.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The time model driving decay.
    pub fn model(&self) -> &TimeModel {
        &self.model
    }

    /// Starts maintaining a projected store for `subspace`. No-op when
    /// already monitored. Returns `true` when newly added.
    pub fn add_subspace(&mut self, subspace: Subspace) -> bool {
        if self.projected.contains_key(&subspace) {
            return false;
        }
        let store = ProjectedStore::new(&self.grid, subspace);
        self.projected.insert(subspace, store);
        true
    }

    /// Stops maintaining `subspace`; returns `true` when it was monitored.
    pub fn remove_subspace(&mut self, subspace: &Subspace) -> bool {
        self.projected.remove(subspace).is_some()
    }

    /// Currently monitored subspaces (arbitrary order).
    pub fn subspaces(&self) -> impl Iterator<Item = Subspace> + '_ {
        self.projected.keys().copied()
    }

    /// Number of monitored subspaces.
    pub fn subspace_count(&self) -> usize {
        self.projected.len()
    }

    /// Ingests one point at tick `now`: updates the global weight, the base
    /// store and every monitored projected store. Use
    /// [`SynopsisManager::update_and_query`] when the per-subspace PCS is
    /// needed too — it costs no second pass.
    pub fn update(&mut self, now: u64, p: &DataPoint) -> Result<UpdateOutcome> {
        let outcome = self.ingest_base(now, p)?;
        for store in self.projected.values_mut() {
            store.update(&self.grid, &self.model, now, &self.scratch, p);
        }
        Ok(outcome)
    }

    /// Single-pass update **and** query: ingests one point and pushes the
    /// PCS of the point's cell in every monitored subspace into `sink`
    /// (cleared first; reuse it across calls to keep the path
    /// allocation-free). The PCS is derived from the same cell access that
    /// inserted the point.
    pub fn update_and_query(
        &mut self,
        now: u64,
        p: &DataPoint,
        sink: &mut Vec<SubspacePcs>,
    ) -> Result<UpdateOutcome> {
        sink.clear();
        let outcome = self.ingest_base(now, p)?;
        sink.reserve(self.projected.len());
        for store in self.projected.values_mut() {
            let (pcs, occupancy) = store.update_and_pcs(
                &self.grid,
                &self.model,
                now,
                &self.scratch,
                p,
                outcome.total_weight,
            );
            sink.push(SubspacePcs {
                subspace: store.subspace(),
                pcs,
                occupancy,
            });
        }
        Ok(outcome)
    }

    /// Quantizes the point (into the reused scratch), feeds the base store
    /// and the global weight.
    fn ingest_base(&mut self, now: u64, p: &DataPoint) -> Result<UpdateOutcome> {
        self.grid.base_coords_into(p, &mut self.scratch)?;
        let key = self.grid.base_key(&self.scratch);
        let prior_base_count = self
            .base
            .insert_at(key, self.grid.dims(), &self.model, now, p);
        self.total.add(&self.model, now, 1.0);
        Ok(UpdateOutcome {
            base_cell: key,
            prior_base_count,
            total_weight: self.total.value_at(&self.model, now),
        })
    }

    /// Batch ingestion: points arrive at consecutive ticks
    /// `start_tick, start_tick+1, …`. For each point, `sinks` receives the
    /// same per-subspace PCS list [`SynopsisManager::update_and_query`]
    /// would produce (rows are cleared and refilled; pass the same vector
    /// across batches to amortize its capacity). With the `parallel`
    /// feature the per-subspace store updates fan out across
    /// `std::thread::scope` threads for large SSTs; results are identical
    /// to the serial path because every store is owned by exactly one
    /// thread and processes points in arrival order.
    pub fn update_and_query_batch(
        &mut self,
        start_tick: u64,
        points: &[DataPoint],
        sinks: &mut Vec<Vec<SubspacePcs>>,
        outcomes: &mut Vec<UpdateOutcome>,
    ) -> Result<()> {
        outcomes.clear();
        // Exactly one (cleared) row per point: rows surviving from a larger
        // previous batch are dropped so a caller iterating `sinks` never
        // sees stale entries.
        sinks.truncate(points.len());
        sinks.resize_with(points.len(), Vec::new);
        for sink in sinks.iter_mut() {
            sink.clear();
        }

        // Phase A1: quantize everything into the reused batch buffer. This
        // is also the validation pass — a NaN or dimension mismatch at any
        // position returns before *any* store mutates, so a rejected batch
        // leaves the manager exactly as it was (the same all-or-nothing
        // guarantee the single-point path gives).
        let dims = self.grid.dims();
        let mut coords = std::mem::take(&mut self.batch_coords);
        coords.resize(points.len() * dims, 0);
        for (i, p) in points.iter().enumerate() {
            if let Err(e) = self.grid.base_coords_into(p, &mut self.scratch) {
                self.batch_coords = coords;
                return Err(e);
            }
            coords[i * dims..(i + 1) * dims].copy_from_slice(&self.scratch);
        }

        // Phase A2: feed base store + global weight.
        for (i, p) in points.iter().enumerate() {
            let now = start_tick + i as u64;
            let key = self.grid.base_key(&coords[i * dims..(i + 1) * dims]);
            let prior = self.base.insert_at(key, dims, &self.model, now, p);
            self.total.add(&self.model, now, 1.0);
            outcomes.push(UpdateOutcome {
                base_cell: key,
                prior_base_count: prior,
                total_weight: self.total.value_at(&self.model, now),
            });
        }

        // Phase B: per-store updates (each store sees points in arrival
        // order, so per-store state evolves exactly as under one-by-one
        // ingestion).
        self.update_stores_batch(start_tick, points, &coords, outcomes, sinks);
        self.batch_coords = coords;
        Ok(())
    }

    /// Serial per-store batch loop, shared by the default build and the
    /// `parallel` build's narrow-work fallback (one definition so the two
    /// cfg variants cannot drift apart).
    fn update_stores_serial<'a>(
        ctx: &BatchCtx<'_>,
        stores: impl Iterator<Item = &'a mut ProjectedStore>,
        sinks: &mut [Vec<SubspacePcs>],
    ) {
        let dims = ctx.grid.dims();
        for store in stores {
            let subspace = store.subspace();
            for (i, p) in ctx.points.iter().enumerate() {
                let base = &ctx.coords[i * dims..(i + 1) * dims];
                let (pcs, occupancy) = store.update_and_pcs(
                    ctx.grid,
                    ctx.model,
                    ctx.start_tick + i as u64,
                    base,
                    p,
                    ctx.outcomes[i].total_weight,
                );
                sinks[i].push(SubspacePcs {
                    subspace,
                    pcs,
                    occupancy,
                });
            }
        }
    }

    #[cfg(not(feature = "parallel"))]
    fn update_stores_batch(
        &mut self,
        start_tick: u64,
        points: &[DataPoint],
        coords: &[u16],
        outcomes: &[UpdateOutcome],
        sinks: &mut [Vec<SubspacePcs>],
    ) {
        let ctx = BatchCtx {
            grid: &self.grid,
            model: &self.model,
            start_tick,
            points,
            coords,
            outcomes,
        };
        Self::update_stores_serial(&ctx, self.projected.values_mut(), sinks);
    }

    #[cfg(feature = "parallel")]
    fn update_stores_batch(
        &mut self,
        start_tick: u64,
        points: &[DataPoint],
        coords: &[u16],
        outcomes: &[UpdateOutcome],
        sinks: &mut [Vec<SubspacePcs>],
    ) {
        let ctx = BatchCtx {
            grid: &self.grid,
            model: &self.model,
            start_tick,
            points,
            coords,
            outcomes,
        };
        let mut stores: Vec<&mut ProjectedStore> = self.projected.values_mut().collect();
        let n_stores = stores.len();
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        // Fan out only when the work is wide enough to pay for the scope.
        if n_stores < 8 || points.len() < 8 || threads < 2 {
            Self::update_stores_serial(&ctx, stores.into_iter(), sinks);
            return;
        }

        let dims = ctx.grid.dims();
        let chunk = n_stores.div_ceil(threads.min(n_stores));
        let mut results: Vec<Vec<(Subspace, Pcs, f64)>> = Vec::new();
        results.resize_with(n_stores, || Vec::with_capacity(points.len()));
        let ctx = &ctx;
        std::thread::scope(|scope| {
            for (store_chunk, result_chunk) in
                stores.chunks_mut(chunk).zip(results.chunks_mut(chunk))
            {
                scope.spawn(move || {
                    for (store, row) in store_chunk.iter_mut().zip(result_chunk) {
                        let subspace = store.subspace();
                        for (i, p) in ctx.points.iter().enumerate() {
                            let base = &ctx.coords[i * dims..(i + 1) * dims];
                            let (pcs, occupancy) = store.update_and_pcs(
                                ctx.grid,
                                ctx.model,
                                ctx.start_tick + i as u64,
                                base,
                                p,
                                ctx.outcomes[i].total_weight,
                            );
                            row.push((subspace, pcs, occupancy));
                        }
                    }
                });
            }
        });
        for row in results {
            for (i, (subspace, pcs, occupancy)) in row.into_iter().enumerate() {
                sinks[i].push(SubspacePcs {
                    subspace,
                    pcs,
                    occupancy,
                });
            }
        }
    }

    /// Warms the projected store of `subspace` by replaying timestamped
    /// points (e.g. the detector's reservoir sample) into it. Points must be
    /// supplied in non-decreasing tick order; the base store and global
    /// weight are *not* touched — those already absorbed the points when
    /// they originally arrived.
    ///
    /// Used when SST self-evolution introduces a subspace mid-stream: a
    /// brand-new store would report every cell as empty (maximally sparse)
    /// and flood the detector with false alarms.
    pub fn replay_into(&mut self, subspace: &Subspace, points: &[(u64, DataPoint)]) -> Result<()> {
        let Some(store) = self.projected.get_mut(subspace) else {
            return Err(SpotError::InvalidConfig(format!(
                "subspace {subspace} is not monitored"
            )));
        };
        for (tick, p) in points {
            self.grid.base_coords_into(p, &mut self.scratch)?;
            store.update(&self.grid, &self.model, *tick, &self.scratch, p);
        }
        Ok(())
    }

    /// PCS of the cell containing `base_coords` in `subspace` at tick
    /// `now`. Returns `None` when the subspace is not monitored.
    /// (Query-only path for tools and tests; the detection loop gets its
    /// PCS from [`SynopsisManager::update_and_query`] for free.)
    pub fn pcs(&self, now: u64, base_coords: &[u16], subspace: &Subspace) -> Option<Pcs> {
        let store = self.projected.get(subspace)?;
        let total = self.total.value_at(&self.model, now);
        Some(store.pcs(&self.grid, &self.model, now, base_coords, total))
    }

    /// Global decayed stream weight at tick `now`.
    pub fn total_weight(&self, now: u64) -> f64 {
        self.total.value_at(&self.model, now)
    }

    /// Decayed count of the base cell containing `p`.
    pub fn base_count_for(&self, now: u64, p: &DataPoint) -> Result<f64> {
        self.base.count_for(&self.grid, &self.model, now, p)
    }

    /// Prunes every store, evicting cells whose decayed count fell below
    /// `floor`. Returns the total number of evicted cells.
    pub fn prune(&mut self, now: u64, floor: f64) -> usize {
        let mut evicted = self.base.prune(&self.model, now, floor);
        for store in self.projected.values_mut() {
            evicted += store.prune(&self.model, now, floor);
        }
        evicted
    }

    /// Live cell count: (base cells, projected cells over all subspaces).
    pub fn live_cells(&self) -> (usize, usize) {
        let proj = self.projected.values().map(ProjectedStore::len).sum();
        (self.base.len(), proj)
    }

    /// Approximate heap footprint of all synopses, in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.base.approx_bytes()
            + self
                .projected
                .values()
                .map(ProjectedStore::approx_bytes)
                .sum::<usize>()
    }

    /// Read access to one projected store (experiments and self-evolution
    /// scoring).
    pub fn projected_store(&self, subspace: &Subspace) -> Option<&ProjectedStore> {
        self.projected.get(subspace)
    }

    /// Read access to the base store.
    pub fn base_store(&self) -> &BaseStore {
        &self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spot_types::DomainBounds;

    fn manager(dims: usize, m: u16) -> SynopsisManager {
        let grid = Grid::new(DomainBounds::unit(dims), m).unwrap();
        SynopsisManager::new(grid, TimeModel::new(100, 0.01).unwrap())
    }

    #[test]
    fn add_remove_subspaces() {
        let mut mgr = manager(3, 4);
        let s01 = Subspace::from_dims([0, 1]).unwrap();
        let s2 = Subspace::from_dims([2]).unwrap();
        assert!(mgr.add_subspace(s01));
        assert!(!mgr.add_subspace(s01));
        assert!(mgr.add_subspace(s2));
        assert_eq!(mgr.subspace_count(), 2);
        assert!(mgr.remove_subspace(&s2));
        assert!(!mgr.remove_subspace(&s2));
        assert_eq!(mgr.subspace_count(), 1);
    }

    #[test]
    fn update_touches_all_stores() {
        let mut mgr = manager(2, 4);
        let s0 = Subspace::from_dims([0]).unwrap();
        let s01 = Subspace::from_dims([0, 1]).unwrap();
        mgr.add_subspace(s0);
        mgr.add_subspace(s01);
        let p = DataPoint::new(vec![0.3, 0.7]);
        let mut sink = Vec::new();
        let out = mgr.update_and_query(1, &p, &mut sink).unwrap();
        assert_eq!(out.prior_base_count, 0.0);
        assert!((out.total_weight - 1.0).abs() < 1e-12);
        let (base_cells, proj_cells) = mgr.live_cells();
        assert_eq!(base_cells, 1);
        assert_eq!(proj_cells, 2);
        // PCS visible in both monitored subspaces.
        assert_eq!(sink.len(), 2);
        assert!(sink.iter().all(|e| e.pcs.rd > 0.0));
        assert!(sink.iter().any(|e| e.subspace == s0));
        assert!(sink.iter().any(|e| e.subspace == s01));
    }

    #[test]
    fn fused_query_matches_separate_pcs_lookup() {
        let mut mgr = manager(3, 5);
        let subs = [
            Subspace::from_dims([0]).unwrap(),
            Subspace::from_dims([1, 2]).unwrap(),
            Subspace::from_dims([0, 1, 2]).unwrap(),
        ];
        for s in subs {
            mgr.add_subspace(s);
        }
        let mut sink = Vec::new();
        for i in 0..300u64 {
            let p = DataPoint::new(vec![
                (i % 7) as f64 / 7.0,
                ((i * 3) % 5) as f64 / 5.0,
                ((i * 11) % 13) as f64 / 13.0,
            ]);
            let _ = mgr.update_and_query(i, &p, &mut sink).unwrap();
            let base = mgr.grid().base_coords(&p).unwrap();
            for entry in &sink {
                let direct = mgr.pcs(i, &base, &entry.subspace).unwrap();
                assert_eq!(entry.pcs, direct, "tick {i} subspace {}", entry.subspace);
            }
        }
    }

    #[test]
    fn batch_matches_one_by_one() {
        let build = |dims: usize| {
            let mut mgr = manager(dims, 4);
            mgr.add_subspace(Subspace::from_dims([0]).unwrap());
            mgr.add_subspace(Subspace::from_dims([0, 1]).unwrap());
            mgr.add_subspace(Subspace::from_dims([1, 2]).unwrap());
            mgr
        };
        let points: Vec<DataPoint> = (0..64)
            .map(|i| {
                DataPoint::new(vec![
                    (i % 9) as f64 / 9.0,
                    ((i * 5) % 7) as f64 / 7.0,
                    ((i * 2) % 3) as f64 / 3.0,
                ])
            })
            .collect();

        let mut serial = build(3);
        let mut sink = Vec::new();
        let mut expected: Vec<Vec<(Subspace, Pcs)>> = Vec::new();
        for (i, p) in points.iter().enumerate() {
            serial.update_and_query(i as u64, p, &mut sink).unwrap();
            let mut row: Vec<(Subspace, Pcs)> = sink.iter().map(|e| (e.subspace, e.pcs)).collect();
            row.sort_by_key(|(s, _)| s.mask());
            expected.push(row);
        }

        let mut batched = build(3);
        let mut sinks: Vec<Vec<SubspacePcs>> = Vec::new();
        let mut outcomes = Vec::new();
        batched
            .update_and_query_batch(0, &points, &mut sinks, &mut outcomes)
            .unwrap();
        assert_eq!(outcomes.len(), points.len());
        for (i, row) in expected.iter().enumerate() {
            let mut got: Vec<(Subspace, Pcs)> =
                sinks[i].iter().map(|e| (e.subspace, e.pcs)).collect();
            got.sort_by_key(|(s, _)| s.mask());
            assert_eq!(&got, row, "point {i}");
        }
        assert_eq!(serial.live_cells(), batched.live_cells());
        assert!((serial.total_weight(64) - batched.total_weight(64)).abs() < 1e-12);
    }

    #[test]
    fn batch_matches_one_by_one_with_wide_sst() {
        // Enough stores that the `parallel` feature's fan-out actually
        // engages (≥ 8); without the feature this covers the serial batch.
        let build = || {
            let mut mgr = manager(6, 5);
            for d in 0..6 {
                mgr.add_subspace(Subspace::from_dims([d]).unwrap());
            }
            for d in 0..6 {
                mgr.add_subspace(Subspace::from_dims([d, (d + 1) % 6]).unwrap());
            }
            assert!(mgr.subspace_count() >= 8);
            mgr
        };
        let points: Vec<DataPoint> = (0..100)
            .map(|i| {
                DataPoint::new(
                    (0..6)
                        .map(|d| ((i * (d + 3) + d) % 17) as f64 / 17.0)
                        .collect(),
                )
            })
            .collect();
        let mut serial = build();
        let mut sink = Vec::new();
        let mut expected = Vec::new();
        for (i, p) in points.iter().enumerate() {
            serial.update_and_query(i as u64, p, &mut sink).unwrap();
            let mut row: Vec<(u64, Pcs, f64)> = sink
                .iter()
                .map(|e| (e.subspace.mask(), e.pcs, e.occupancy))
                .collect();
            row.sort_by_key(|a| a.0);
            expected.push(row);
        }
        let mut batched = build();
        let mut sinks = Vec::new();
        let mut outcomes = Vec::new();
        batched
            .update_and_query_batch(0, &points, &mut sinks, &mut outcomes)
            .unwrap();
        for (i, want) in expected.iter().enumerate() {
            let mut got: Vec<(u64, Pcs, f64)> = sinks[i]
                .iter()
                .map(|e| (e.subspace.mask(), e.pcs, e.occupancy))
                .collect();
            got.sort_by_key(|a| a.0);
            assert_eq!(&got, want, "point {i}");
        }
        assert_eq!(serial.live_cells(), batched.live_cells());
    }

    #[test]
    fn rd_reflects_relative_crowding() {
        let mut mgr = manager(2, 4);
        let s0 = Subspace::from_dims([0]).unwrap();
        mgr.add_subspace(s0);
        // 90% of points in one interval of dim 0, 10% in another,
        // interleaved so decay weights both cells alike (recency-skewed
        // arrival orders shift RD by design — that is the time model
        // working, not the property under test).
        for i in 0..100u64 {
            let x = if i % 10 == 9 { 0.9 } else { 0.1 };
            mgr.update(i, &DataPoint::new(vec![x, (i % 7) as f64 / 7.0]))
                .unwrap();
        }
        let crowded = DataPoint::new(vec![0.1, 0.5]);
        let sparse = DataPoint::new(vec![0.9, 0.5]);
        let now = 100;
        let bc = mgr.grid().base_coords(&crowded).unwrap();
        let bs = mgr.grid().base_coords(&sparse).unwrap();
        let rd_crowded = mgr.pcs(now, &bc, &s0).unwrap().rd;
        let rd_sparse = mgr.pcs(now, &bs, &s0).unwrap().rd;
        assert!(rd_crowded > rd_sparse);
        assert!(rd_sparse < 1.0);
    }

    #[test]
    fn prune_shrinks_all_stores() {
        let mut mgr = manager(2, 4);
        mgr.add_subspace(Subspace::from_dims([0]).unwrap());
        for i in 0..4 {
            let p = DataPoint::new(vec![(i as f64 + 0.5) / 4.0, 0.5]);
            mgr.update(0, &p).unwrap();
        }
        let (b0, p0) = mgr.live_cells();
        assert_eq!((b0, p0), (4, 4));
        let evicted = mgr.prune(10_000, 1e-6);
        assert_eq!(evicted, 8);
        assert_eq!(mgr.live_cells(), (0, 0));
    }

    #[test]
    fn total_weight_decays() {
        let mut mgr = manager(1, 4);
        mgr.update(0, &DataPoint::new(vec![0.5])).unwrap();
        let w0 = mgr.total_weight(0);
        let w100 = mgr.total_weight(100);
        assert!((w0 - 1.0).abs() < 1e-12);
        assert!((w100 - 0.01).abs() < 1e-6);
    }

    #[test]
    fn replay_warms_a_new_store() {
        let mut mgr = manager(2, 4);
        let p = DataPoint::new(vec![0.5, 0.5]);
        mgr.update(1, &p).unwrap();
        mgr.update(2, &p).unwrap();
        let s = Subspace::from_dims([1]).unwrap();
        mgr.add_subspace(s);
        mgr.replay_into(&s, &[(1, p.clone()), (2, p.clone())])
            .unwrap();
        let base = mgr.grid().base_coords(&p).unwrap();
        let pcs = mgr.pcs(2, &base, &s).unwrap();
        assert!(pcs.rd > 0.0, "replayed store must not look empty");
        // Unknown subspace errors.
        let other = Subspace::from_dims([0]).unwrap();
        assert!(mgr.replay_into(&other, &[]).is_err());
    }

    #[test]
    fn late_added_subspace_starts_empty() {
        let mut mgr = manager(2, 4);
        mgr.update(0, &DataPoint::new(vec![0.5, 0.5])).unwrap();
        let s = Subspace::from_dims([1]).unwrap();
        mgr.add_subspace(s);
        let p = DataPoint::new(vec![0.5, 0.5]);
        let base = mgr.grid().base_coords(&p).unwrap();
        // The store was added after the first point: its cells are empty.
        assert_eq!(mgr.pcs(0, &base, &s).unwrap(), Pcs::EMPTY);
    }

    #[test]
    fn batch_with_invalid_point_leaves_manager_untouched() {
        // All-or-nothing: a NaN (or dimension mismatch) anywhere in the
        // batch must be rejected before the base store, the global weight
        // or any projected store mutates — otherwise the stores desync and
        // RD is computed against a total weight the projected cells never
        // absorbed.
        let mut mgr = manager(2, 4);
        mgr.add_subspace(Subspace::from_dims([0]).unwrap());
        let mut points: Vec<DataPoint> = (0..10)
            .map(|i| DataPoint::new(vec![i as f64 / 10.0, 0.5]))
            .collect();
        points.push(DataPoint::new(vec![f64::NAN, 0.5]));
        let mut sinks = Vec::new();
        let mut outcomes = Vec::new();
        let err = mgr
            .update_and_query_batch(0, &points, &mut sinks, &mut outcomes)
            .unwrap_err();
        assert!(matches!(err, SpotError::NonFiniteValue { dim: 0 }));
        assert_eq!(mgr.live_cells(), (0, 0));
        assert_eq!(mgr.total_weight(0), 0.0);
        // Mismatched dimensionality mid-batch: same guarantee.
        let bad_dims = vec![DataPoint::new(vec![0.1, 0.1]), DataPoint::new(vec![0.1])];
        assert!(mgr
            .update_and_query_batch(0, &bad_dims, &mut sinks, &mut outcomes)
            .is_err());
        assert_eq!(mgr.live_cells(), (0, 0));
    }

    #[test]
    fn nan_point_rejected_before_any_state_change() {
        let mut mgr = manager(2, 4);
        mgr.add_subspace(Subspace::from_dims([0]).unwrap());
        let bad = DataPoint::new(vec![0.5, f64::NAN]);
        let mut sink = Vec::new();
        assert!(matches!(
            mgr.update_and_query(0, &bad, &mut sink),
            Err(SpotError::NonFiniteValue { dim: 1 })
        ));
        assert_eq!(mgr.live_cells(), (0, 0));
        assert_eq!(mgr.total_weight(0), 0.0);
    }
}
