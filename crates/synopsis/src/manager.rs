//! The synopsis manager: base store + one projected store per SST subspace.

use crate::grid::Grid;
use crate::key::CellKey;
use crate::pcs::{Pcs, ProjectedStore};
use crate::pool::{
    ExecutorHandle, OnceTask, SerialExecutor, SharedSlice, StoreExecutor, WorkerPool,
};
use crate::store::BaseStore;
use serde::Value;
use spot_stream::{DecayTable, DecayedCounter, TimeModel, WeightCache};
use spot_subspace::Subspace;
use spot_types::{
    DataPoint, DurableState, FxHashMap, PersistError, Result, SpotError, StateReader, StateWriter,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Lock-free mirror of the synopsis footprint, shared with monitoring
/// readers (`spot`'s `SharedSpot` serves `footprint()` from it without
/// taking the detector lock).
///
/// Writers are the shard owners: whoever holds a store (the manager's own
/// thread, a pool worker, or a cooperating producer) publishes that
/// store's footprint delta after mutating it — shard-local bookkeeping,
/// one atomic add per shard per run, and only when the footprint actually
/// changed. Readers see values at most one in-flight run stale.
#[derive(Debug, Default)]
pub struct LiveCounters {
    base_cells: AtomicUsize,
    base_bytes: AtomicUsize,
    projected_cells: AtomicUsize,
    projected_bytes: AtomicUsize,
}

impl LiveCounters {
    /// Live cell count: (base cells, projected cells over all subspaces).
    pub fn live_cells(&self) -> (usize, usize) {
        (
            self.base_cells.load(Ordering::Relaxed),
            self.projected_cells.load(Ordering::Relaxed),
        )
    }

    /// Approximate heap footprint of all synopses, in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.base_bytes.load(Ordering::Relaxed) + self.projected_bytes.load(Ordering::Relaxed)
    }

    fn set_base(&self, cells: usize, bytes: usize) {
        self.base_cells.store(cells, Ordering::Relaxed);
        self.base_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Folds a (cells, bytes) delta in. Two's-complement wrapping makes
    /// `fetch_add` of a negative delta a subtraction.
    fn apply_projected(&self, dc: isize, db: isize) {
        if dc != 0 {
            self.projected_cells
                .fetch_add(dc as usize, Ordering::Relaxed);
        }
        if db != 0 {
            self.projected_bytes
                .fetch_add(db as usize, Ordering::Relaxed);
        }
    }
}

/// Bundles every decayed synopsis SPOT maintains online.
///
/// [`SynopsisManager::update_and_query`] is the per-point hot path of the
/// detection stage: one base-cell insertion plus one projected-cell
/// insertion per monitored subspace, each O(|s|) — and the PCS of every
/// touched projected cell is derived *in the same cell access*, so the
/// detector never projects or hashes the same coordinates twice. On the
/// steady state (no new cells) the whole path performs zero heap
/// allocations: coordinates land in a reused scratch buffer, keys are
/// `Copy` integers, and results go into a caller-reused sink.
///
/// Stores live in **registration (ordinal) order** — the canonical order
/// of per-point PCS results on every path (single-point, batch, pooled,
/// cooperative), which is what makes the parallel paths bit-identical to
/// the sequential one even when two subspaces tie on RD.
#[derive(Debug)]
pub struct SynopsisManager {
    grid: Grid,
    model: TimeModel,
    base: BaseStore,
    /// Monitored projected stores, registration order (= result order).
    stores: Vec<ProjectedStore>,
    /// Subspace mask → ordinal in `stores`.
    index: FxHashMap<u64, usize>,
    total: DecayedCounter,
    /// Lock-free footprint mirror (see [`LiveCounters`]).
    live: Arc<LiveCounters>,
    /// Base cell count last mirrored into `live`.
    published_base_cells: usize,
    /// Reused quantization buffer (ϕ entries).
    scratch: Vec<u16>,
    /// Reused batch quantization buffer (n·ϕ entries).
    batch_coords: Vec<u16>,
    /// Reused per-run total-weight buffer (n entries).
    batch_totals: Vec<f64>,
    /// Reused per-run decay-factor table.
    decay_table: DecayTable,
    /// Reused per-store result rows for the batch shard phase.
    batch_rows: Vec<Vec<(Pcs, f64)>>,
    /// Reused shard claim order (store ordinals, heaviest first).
    shard_order: Vec<u32>,
    /// Layout epoch: bumped whenever the registration-ordinal layout
    /// changes (subspace add/remove, restore). A delta capture is only
    /// valid against a mark from the same epoch — ordinals must mean the
    /// same store on both sides of the diff.
    epoch: u64,
    /// Mutation version of the base store + global weight.
    base_version: u64,
    /// Per-store mutation versions, parallel to `stores` (registration
    /// order). Comparisons test inequality only, so a double bump on one
    /// path is harmless; what matters is that every mutation bumps.
    versions: Vec<u64>,
    /// The shared executor service the batch path dispatches through (see
    /// [`ExecutorHandle`]): clones — and every co-tenant manager of a
    /// fleet — share the one lazily-spawned pool this handle owns.
    exec: ExecutorHandle,
    /// Pool-engagement floors for batch dispatch (min stores, min
    /// points): per-manager scheduling tuning fed from the detector
    /// configuration. Pure scheduling — results are bit-identical for
    /// every setting.
    pool_engage: (usize, usize),
    /// Memoized `δ^age` factors for pruning (derived state, never
    /// persisted; see [`WeightCache`]).
    weights: WeightCache,
}

impl Clone for SynopsisManager {
    fn clone(&self) -> Self {
        let mut cloned = SynopsisManager {
            grid: self.grid.clone(),
            model: self.model,
            base: self.base.clone(),
            stores: self.stores.clone(),
            index: self.index.clone(),
            total: self.total,
            live: Arc::new(LiveCounters::default()),
            published_base_cells: 0,
            scratch: Vec::with_capacity(self.grid.dims()),
            batch_coords: Vec::new(),
            batch_totals: Vec::new(),
            decay_table: DecayTable::new(),
            batch_rows: Vec::new(),
            shard_order: Vec::new(),
            epoch: self.epoch,
            base_version: self.base_version,
            versions: self.versions.clone(),
            exec: self.exec.clone(),
            pool_engage: self.pool_engage,
            weights: WeightCache::new(),
        };
        // The clone gets its own counters; re-derive them from the cloned
        // stores so subsequent deltas stay consistent.
        cloned.publish_base();
        for store in &mut cloned.stores {
            let (dc, db) = store.publish_delta();
            let _ = (dc, db);
        }
        let cells: usize = cloned.stores.iter().map(ProjectedStore::len).sum();
        let bytes: usize = cloned.stores.iter().map(ProjectedStore::approx_bytes).sum();
        cloned.live.apply_projected(cells as isize, bytes as isize);
        cloned
    }
}

/// Everything the detection logic needs to know after one update.
#[derive(Debug, Clone, Copy)]
pub struct UpdateOutcome {
    /// Key of the point's base cell.
    pub base_cell: CellKey,
    /// Decayed count of the base cell before this point arrived — the
    /// novelty signal used by the concept-drift detector.
    pub prior_base_count: f64,
    /// Global decayed weight after this point arrived.
    pub total_weight: f64,
}

/// A point-in-time snapshot of the synopsis dirty-tracking state, taken
/// by [`SynopsisManager::capture_mark`] at capture time. Opaque to
/// callers; its only use is as the baseline of a later
/// [`SynopsisManager::capture_state_delta_with`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynopsisMark {
    epoch: u64,
    base: u64,
    stores: Vec<u64>,
}

/// One monitored subspace's verdict inputs for the point just ingested.
#[derive(Debug, Clone, Copy)]
pub struct SubspacePcs {
    /// The monitored subspace.
    pub subspace: Subspace,
    /// PCS of the projected cell the point fell into (point included).
    pub pcs: Pcs,
    /// Decayed occupancy of that cell, point included — the projected
    /// freshness signal consumed by the drift detector.
    pub occupancy: f64,
}

impl SynopsisManager {
    /// Creates a manager with no monitored subspaces yet, on its own
    /// executor service — machine-sized with the `parallel` feature,
    /// serial otherwise. Use [`SynopsisManager::with_executor`] to share
    /// one service across many managers.
    pub fn new(grid: Grid, model: TimeModel) -> Self {
        Self::with_executor(grid, model, ExecutorHandle::default_for_build())
    }

    /// Creates a manager dispatching its batch shard phase through `exec`.
    /// Many managers sharing one handle share its single worker pool —
    /// the fleet runtime's "N detectors, one executor" wiring.
    pub fn with_executor(grid: Grid, model: TimeModel, exec: ExecutorHandle) -> Self {
        let scratch = Vec::with_capacity(grid.dims());
        let mut mgr = SynopsisManager {
            grid,
            model,
            base: BaseStore::new(),
            stores: Vec::new(),
            index: FxHashMap::default(),
            total: DecayedCounter::new(),
            live: Arc::new(LiveCounters::default()),
            published_base_cells: 0,
            scratch,
            batch_coords: Vec::new(),
            batch_totals: Vec::new(),
            decay_table: DecayTable::new(),
            batch_rows: Vec::new(),
            shard_order: Vec::new(),
            epoch: 0,
            base_version: 0,
            versions: Vec::new(),
            exec,
            pool_engage: (8, 8),
            weights: WeightCache::new(),
        };
        mgr.publish_base();
        mgr
    }

    /// The grid the synopses quantize over.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The time model driving decay.
    pub fn model(&self) -> &TimeModel {
        &self.model
    }

    /// The lock-free footprint mirror. Clone the `Arc` to read live cell
    /// and byte counts without going through (or blocking on) the manager.
    pub fn live_counters(&self) -> Arc<LiveCounters> {
        Arc::clone(&self.live)
    }

    /// Overrides the worker count of the executor service: `Some(0)`
    /// forces the serial path, `Some(n)` forces an `n`-worker pool even
    /// for narrow batches (equivalence tests, tuning), `None` restores
    /// machine-sized defaults. The pool is re-spawned lazily. Affects
    /// every manager sharing this service.
    pub fn set_parallel_workers(&mut self, workers: Option<usize>) {
        self.exec.set_workers(workers);
    }

    /// Overrides the pool-engagement floors (minimum stores / minimum run
    /// points before a machine-sized dispatch fans out). Scheduling only;
    /// results are bit-identical for every setting.
    pub fn set_pool_engagement(&mut self, min_stores: usize, min_points: usize) {
        self.pool_engage = (min_stores, min_points);
    }

    /// The executor service this manager dispatches through.
    pub fn executor(&self) -> &ExecutorHandle {
        &self.exec
    }

    /// Replaces the executor service — the fleet runtime's rewiring hook
    /// (results are bit-identical for every executor, so this is safe at
    /// any quiescent point).
    pub fn set_executor(&mut self, exec: ExecutorHandle) {
        self.exec = exec;
    }

    /// Starts maintaining a projected store for `subspace`. No-op when
    /// already monitored. Returns `true` when newly added.
    pub fn add_subspace(&mut self, subspace: Subspace) -> bool {
        if self.index.contains_key(&subspace.mask()) {
            return false;
        }
        let mut store = ProjectedStore::new(&self.grid, subspace);
        let (dc, db) = store.publish_delta();
        self.live.apply_projected(dc, db);
        self.index.insert(subspace.mask(), self.stores.len());
        self.stores.push(store);
        self.versions.push(0);
        self.epoch += 1;
        true
    }

    /// Stops maintaining `subspace`; returns `true` when it was monitored.
    /// Later stores shift down one ordinal (registration order of the
    /// survivors is preserved).
    pub fn remove_subspace(&mut self, subspace: &Subspace) -> bool {
        let Some(ordinal) = self.index.remove(&subspace.mask()) else {
            return false;
        };
        let mut store = self.stores.remove(ordinal);
        // Flush any unpublished delta, then retract the store's (now
        // fully published) footprint from the mirror.
        let (dc, db) = store.publish_delta();
        self.live.apply_projected(dc, db);
        self.live
            .apply_projected(-(store.len() as isize), -(store.approx_bytes() as isize));
        for slot in self.index.values_mut() {
            if *slot > ordinal {
                *slot -= 1;
            }
        }
        self.versions.remove(ordinal);
        self.epoch += 1;
        true
    }

    /// Currently monitored subspaces, in registration order (the order
    /// per-point PCS results are reported in).
    pub fn subspaces(&self) -> impl Iterator<Item = Subspace> + '_ {
        self.stores.iter().map(ProjectedStore::subspace)
    }

    /// Number of monitored subspaces.
    pub fn subspace_count(&self) -> usize {
        self.stores.len()
    }

    /// Ingests one point at tick `now`: updates the global weight, the base
    /// store and every monitored projected store. Use
    /// [`SynopsisManager::update_and_query`] when the per-subspace PCS is
    /// needed too — it costs no second pass.
    pub fn update(&mut self, now: u64, p: &DataPoint) -> Result<UpdateOutcome> {
        let outcome = self.ingest_base(now, p)?;
        for store in &mut self.stores {
            store.update(&self.grid, &self.model, now, &self.scratch, p);
            let (dc, db) = store.publish_delta();
            self.live.apply_projected(dc, db);
        }
        self.mark_all_dirty();
        Ok(outcome)
    }

    /// Single-pass update **and** query: ingests one point and pushes the
    /// PCS of the point's cell in every monitored subspace into `sink`
    /// (cleared first; reuse it across calls to keep the path
    /// allocation-free). The PCS is derived from the same cell access that
    /// inserted the point.
    pub fn update_and_query(
        &mut self,
        now: u64,
        p: &DataPoint,
        sink: &mut Vec<SubspacePcs>,
    ) -> Result<UpdateOutcome> {
        sink.clear();
        let outcome = self.ingest_base(now, p)?;
        sink.reserve(self.stores.len());
        for store in &mut self.stores {
            let (pcs, occupancy) = store.update_and_pcs(
                &self.grid,
                &self.model,
                now,
                &self.scratch,
                p,
                outcome.total_weight,
            );
            let (dc, db) = store.publish_delta();
            self.live.apply_projected(dc, db);
            sink.push(SubspacePcs {
                subspace: store.subspace(),
                pcs,
                occupancy,
            });
        }
        self.mark_all_dirty();
        Ok(outcome)
    }

    /// Quantizes the point (into the reused scratch), feeds the base store
    /// and the global weight.
    fn ingest_base(&mut self, now: u64, p: &DataPoint) -> Result<UpdateOutcome> {
        self.grid.base_coords_into(p, &mut self.scratch)?;
        let key = self.grid.base_key(&self.scratch);
        let prior_base_count = self
            .base
            .insert_at(key, self.grid.dims(), &self.model, now, p);
        self.total.add(&self.model, now, 1.0);
        self.publish_base();
        Ok(UpdateOutcome {
            base_cell: key,
            prior_base_count,
            total_weight: self.total.value_at(&self.model, now),
        })
    }

    /// Marks the base and every store dirty — the per-point ingest paths
    /// touch all of them (every store absorbs every point), so one bump
    /// per run is exact, not conservative.
    fn mark_all_dirty(&mut self) {
        self.base_version += 1;
        for v in &mut self.versions {
            *v += 1;
        }
    }

    /// Mirrors the base store's footprint into the live counters when it
    /// changed (a new cell; eviction). Cheap: two compares on the hot path.
    fn publish_base(&mut self) {
        let cells = self.base.len();
        if cells != self.published_base_cells || cells == 0 {
            self.published_base_cells = cells;
            let bytes =
                std::mem::size_of::<BaseStore>() + cells * BaseStore::cell_bytes(self.grid.dims());
            self.live.set_base(cells, bytes);
        }
    }

    /// Batch ingestion: points arrive at consecutive ticks
    /// `start_tick, start_tick+1, …`. For each point, `sinks` receives the
    /// same per-subspace PCS list [`SynopsisManager::update_and_query`]
    /// would produce (rows are cleared and refilled; pass the same vector
    /// across batches to amortize its capacity).
    ///
    /// The per-subspace store work runs through the executor service: the
    /// shared pool when the service engages (forced workers, or a
    /// wide-enough run under the `parallel` feature's machine-sized
    /// default), the [`SerialExecutor`] otherwise. Callers with their own
    /// threads to contribute use
    /// [`SynopsisManager::update_and_query_batch_with`].
    pub fn update_and_query_batch(
        &mut self,
        start_tick: u64,
        points: &[DataPoint],
        sinks: &mut Vec<Vec<SubspacePcs>>,
        outcomes: &mut Vec<UpdateOutcome>,
    ) -> Result<()> {
        if let Some(pool) = self.batch_pool(points.len()) {
            return self.update_and_query_batch_with(start_tick, points, sinks, outcomes, &*pool);
        }
        self.update_and_query_batch_with(start_tick, points, sinks, outcomes, &SerialExecutor)
    }

    /// The executor the default batch path would pick for a run of
    /// `points`: the service's shared pool when the run is wide enough to
    /// pay for dispatch, `None` for the serial path. Exposed so the
    /// detector can route its verdict-sweep dispatch through the same pool
    /// the shard phase uses.
    pub fn batch_pool(&mut self, points: usize) -> Option<Arc<WorkerPool>> {
        let (min_stores, min_points) = self.pool_engage;
        self.exec
            .pool_for_with(self.stores.len(), points, min_stores, min_points)
    }

    /// [`SynopsisManager::update_and_query_batch`] with an explicit
    /// executor for the shard phase (see [`StoreExecutor`]): the SST's
    /// stores form subspace-disjoint shards, claimed heaviest-first from
    /// an atomic cursor by however many participants the executor brings.
    /// Results are bit-identical for every executor — each shard has
    /// exactly one writer, sees points in arrival order, and lands in its
    /// registration-order slot.
    pub fn update_and_query_batch_with(
        &mut self,
        start_tick: u64,
        points: &[DataPoint],
        sinks: &mut Vec<Vec<SubspacePcs>>,
        outcomes: &mut Vec<UpdateOutcome>,
        exec: &dyn StoreExecutor,
    ) -> Result<()> {
        self.batch_inner(start_tick, points, sinks, outcomes, exec, None)
    }

    /// [`SynopsisManager::update_and_query_batch_with`] with a rider: the
    /// claim cursor gains one extra unit — claimed exactly once, alongside
    /// the store shards — that runs `prelude`. The detector uses this to
    /// overlap the *previous* run's sequential commit phase with this
    /// run's shard ingestion: commit work and shard work touch disjoint
    /// state, so whichever participant claims the prelude performs it while
    /// the rest ingest, and the result is bit-identical to running the
    /// prelude first.
    ///
    /// The prelude is guaranteed to have run by the time this returns
    /// (including on the error path, where it runs on the calling thread
    /// before the error propagates — the caller's commit must not be lost).
    pub fn update_and_query_batch_prelude(
        &mut self,
        start_tick: u64,
        points: &[DataPoint],
        sinks: &mut Vec<Vec<SubspacePcs>>,
        outcomes: &mut Vec<UpdateOutcome>,
        exec: &dyn StoreExecutor,
        prelude: &OnceTask<'_>,
    ) -> Result<()> {
        let res = self.batch_inner(start_tick, points, sinks, outcomes, exec, Some(prelude));
        if res.is_err() {
            // Phase A failed before the shard dispatch: the prelude never
            // entered the claim loop. Run it here so the previous run's
            // commit is applied exactly once no matter what.
            prelude.run();
        }
        res
    }

    fn batch_inner(
        &mut self,
        start_tick: u64,
        points: &[DataPoint],
        sinks: &mut Vec<Vec<SubspacePcs>>,
        outcomes: &mut Vec<UpdateOutcome>,
        exec: &dyn StoreExecutor,
        prelude: Option<&OnceTask<'_>>,
    ) -> Result<()> {
        outcomes.clear();
        // Exactly one (cleared) row per point: rows surviving from a larger
        // previous batch are dropped so a caller iterating `sinks` never
        // sees stale entries.
        sinks.truncate(points.len());
        sinks.resize_with(points.len(), Vec::new);
        for sink in sinks.iter_mut() {
            sink.clear();
        }

        // Phase A1: quantize everything into the reused batch buffer. This
        // is also the validation pass — a NaN or dimension mismatch at any
        // position returns before *any* store mutates, so a rejected batch
        // leaves the manager exactly as it was (the same all-or-nothing
        // guarantee the single-point path gives).
        let dims = self.grid.dims();
        let mut coords = std::mem::take(&mut self.batch_coords);
        coords.resize(points.len() * dims, 0);
        for (i, p) in points.iter().enumerate() {
            if let Err(e) = self.grid.base_coords_into(p, &mut self.scratch) {
                self.batch_coords = coords;
                return Err(e);
            }
            coords[i * dims..(i + 1) * dims].copy_from_slice(&self.scratch);
        }

        // Per-run decay machinery: the global weight advances by one
        // geometric recurrence (no per-point powi, bit-identical to the
        // per-point adds), and one factor table serves every cell
        // renormalization of the run.
        let mut totals = std::mem::take(&mut self.batch_totals);
        self.total
            .add_run(&self.model, start_tick, points.len(), &mut totals);
        self.decay_table.fill(&self.model, start_tick, points.len());

        // Phase A2: feed the base store.
        for (i, p) in points.iter().enumerate() {
            let now = start_tick + i as u64;
            let key = self.grid.base_key(&coords[i * dims..(i + 1) * dims]);
            let prior = self
                .base
                .insert_at_run(key, dims, &self.model, &self.decay_table, now, p);
            outcomes.push(UpdateOutcome {
                base_cell: key,
                prior_base_count: prior,
                total_weight: totals[i],
            });
        }
        self.publish_base();

        // Phase B: the shard phase. Result rows are per-store slots so any
        // claim order merges identically.
        let n_stores = self.stores.len();
        let mut rows = std::mem::take(&mut self.batch_rows);
        rows.truncate(n_stores);
        rows.resize_with(n_stores, Vec::new);
        for row in rows.iter_mut() {
            row.clear();
            row.reserve(points.len());
        }

        // Size-aware claim order: heaviest shards first, so one oversized
        // store overlaps the tail of the small ones instead of serializing
        // the batch behind them.
        self.shard_order.clear();
        self.shard_order.extend(0..n_stores as u32);
        let stores = &mut self.stores;
        self.shard_order.sort_by_key(|&ordinal| {
            let store = &stores[ordinal as usize];
            (std::cmp::Reverse(shard_weight(store)), ordinal)
        });

        {
            let grid = &self.grid;
            let model = &self.model;
            let table = &self.decay_table;
            let live = &*self.live;
            let order = &self.shard_order[..];
            let cursor = AtomicUsize::new(0);
            let shared_stores = SharedSlice::new(&mut stores[..]);
            let shared_rows = SharedSlice::new(&mut rows[..]);
            let coords = &coords[..];
            let totals = &totals[..];
            // The rider commit task (if any) is claim unit 0, ahead of the
            // shards: under a serial executor it runs first (the exact
            // sequential order), and with more participants it overlaps.
            let extra = usize::from(prelude.is_some());
            let work = || loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= order.len() + extra {
                    break;
                }
                if extra == 1 && k == 0 {
                    if let Some(task) = prelude {
                        task.run();
                    }
                    continue;
                }
                let ordinal = order[k - extra] as usize;
                // SAFETY: `ordinal` comes from a unique claim of the
                // cursor over a permutation of 0..n_stores, so this
                // participant is the only one touching store and row.
                let store = unsafe { shared_stores.get_mut(ordinal) };
                let row = unsafe { shared_rows.get_mut(ordinal) };
                for (i, p) in points.iter().enumerate() {
                    let base = &coords[i * dims..(i + 1) * dims];
                    let (pcs, occupancy) = store.update_and_pcs_run(
                        grid,
                        model,
                        table,
                        start_tick + i as u64,
                        base,
                        p,
                        totals[i],
                    );
                    row.push((pcs, occupancy));
                }
                let (dc, db) = store.publish_delta();
                live.apply_projected(dc, db);
            };
            exec.execute(&work);
        }

        // Merge in registration order — deterministic however the shards
        // were claimed.
        for (ordinal, row) in rows.iter().enumerate() {
            let subspace = self.stores[ordinal].subspace();
            for (i, &(pcs, occupancy)) in row.iter().enumerate() {
                sinks[i].push(SubspacePcs {
                    subspace,
                    pcs,
                    occupancy,
                });
            }
        }

        self.batch_coords = coords;
        self.batch_totals = totals;
        self.batch_rows = rows;
        self.mark_all_dirty();
        Ok(())
    }

    /// Warms the projected store of `subspace` by replaying timestamped
    /// points (e.g. the detector's reservoir sample) into it. Points must be
    /// supplied in non-decreasing tick order; the base store and global
    /// weight are *not* touched — those already absorbed the points when
    /// they originally arrived.
    ///
    /// Used when SST self-evolution introduces a subspace mid-stream: a
    /// brand-new store would report every cell as empty (maximally sparse)
    /// and flood the detector with false alarms.
    pub fn replay_into(&mut self, subspace: &Subspace, points: &[(u64, DataPoint)]) -> Result<()> {
        let Some(&ordinal) = self.index.get(&subspace.mask()) else {
            return Err(SpotError::InvalidConfig(format!(
                "subspace {subspace} is not monitored"
            )));
        };
        let store = &mut self.stores[ordinal];
        for (tick, p) in points {
            self.grid.base_coords_into(p, &mut self.scratch)?;
            store.update(&self.grid, &self.model, *tick, &self.scratch, p);
        }
        let (dc, db) = store.publish_delta();
        self.live.apply_projected(dc, db);
        self.versions[ordinal] += 1;
        Ok(())
    }

    /// PCS of the cell containing `base_coords` in `subspace` at tick
    /// `now`. Returns `None` when the subspace is not monitored.
    /// (Query-only path for tools and tests; the detection loop gets its
    /// PCS from [`SynopsisManager::update_and_query`] for free.)
    pub fn pcs(&self, now: u64, base_coords: &[u16], subspace: &Subspace) -> Option<Pcs> {
        let store = self.projected_store(subspace)?;
        let total = self.total.value_at(&self.model, now);
        Some(store.pcs(&self.grid, &self.model, now, base_coords, total))
    }

    /// Global decayed stream weight at tick `now`.
    pub fn total_weight(&self, now: u64) -> f64 {
        self.total.value_at(&self.model, now)
    }

    /// Decayed count of the base cell containing `p`.
    pub fn base_count_for(&self, now: u64, p: &DataPoint) -> Result<f64> {
        self.base.count_for(&self.grid, &self.model, now, p)
    }

    /// Prunes every store, evicting cells whose decayed count fell below
    /// `floor`. Returns the total number of evicted cells.
    ///
    /// Two layers of the commit-sharding work live here. Decay factors are
    /// served from the persistent [`WeightCache`] — one `powi` per
    /// *distinct age* over the detector's lifetime instead of one per live
    /// cell per prune, with bit-identical eviction decisions. And the
    /// per-store scans (independent by construction — each touches one
    /// store) fan out across the executor's worker pool when one is
    /// engaged, using the same claim protocol as the shard phase; version
    /// bumps and footprint publication stay sequential.
    pub fn prune(&mut self, now: u64, floor: f64) -> usize {
        // Cells can be as old as `now`; extend the memo once, up front, so
        // the scans below (parallel or not) only read it.
        self.weights.ensure(&self.model, now.saturating_add(1));
        let base_evicted = self
            .base
            .prune_cached(&self.model, &self.weights, now, floor);
        if base_evicted > 0 {
            self.base_version += 1;
        }
        let mut evicted = base_evicted;
        self.publish_base();

        let n_stores = self.stores.len();
        let mut per_store = vec![0usize; n_stores];
        let (min_stores, min_points) = self.pool_engage;
        match self
            .exec
            .pool_for_with(n_stores, n_stores, min_stores, min_points)
        {
            Some(pool) => {
                let model = &self.model;
                let weights = &self.weights;
                let cursor = AtomicUsize::new(0);
                let shared_stores = SharedSlice::new(&mut self.stores[..]);
                let shared_counts = SharedSlice::new(&mut per_store[..]);
                let work = || loop {
                    let ordinal = cursor.fetch_add(1, Ordering::Relaxed);
                    if ordinal >= n_stores {
                        break;
                    }
                    // SAFETY: `ordinal` comes from a unique claim of the
                    // cursor over 0..n_stores, so this participant is the
                    // only one touching this store and count slot.
                    let store = unsafe { shared_stores.get_mut(ordinal) };
                    let count = unsafe { shared_counts.get_mut(ordinal) };
                    *count = store.prune_cached(model, weights, now, floor);
                };
                pool.execute(&work);
            }
            None => {
                for (ordinal, store) in self.stores.iter_mut().enumerate() {
                    per_store[ordinal] = store.prune_cached(&self.model, &self.weights, now, floor);
                }
            }
        }
        for (ordinal, store) in self.stores.iter_mut().enumerate() {
            if per_store[ordinal] > 0 {
                self.versions[ordinal] += 1;
            }
            evicted += per_store[ordinal];
            let (dc, db) = store.publish_delta();
            self.live.apply_projected(dc, db);
        }
        evicted
    }

    /// Live cell count: (base cells, projected cells over all subspaces).
    pub fn live_cells(&self) -> (usize, usize) {
        let proj = self.stores.iter().map(ProjectedStore::len).sum();
        (self.base.len(), proj)
    }

    /// Approximate heap footprint of all synopses, in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.base.approx_bytes()
            + self
                .stores
                .iter()
                .map(ProjectedStore::approx_bytes)
                .sum::<usize>()
    }

    /// Read access to one projected store (experiments and self-evolution
    /// scoring).
    pub fn projected_store(&self, subspace: &Subspace) -> Option<&ProjectedStore> {
        self.index
            .get(&subspace.mask())
            .map(|&ordinal| &self.stores[ordinal])
    }

    /// Read access to the base store.
    pub fn base_store(&self) -> &BaseStore {
        &self.base
    }

    /// Captures the complete synopsis state — global weight, base cells,
    /// and every projected store's columns in **registration order** (the
    /// order that defines per-point result order, so a restored manager
    /// reproduces verdicts bit-exactly).
    pub fn capture_state(&self) -> Value {
        self.capture_state_with(&SerialExecutor)
    }

    /// [`SynopsisManager::capture_state`] with an explicit executor: each
    /// projected store's column encoding is one claim unit on the shard
    /// cursor, so a cooperative caller's helpers (or the worker pool)
    /// capture stores concurrently — the same protocol the batch shard
    /// phase rides. Capture is read-only per store; any claim interleaving
    /// produces the identical tree.
    pub fn capture_state_with(&self, exec: &dyn StoreExecutor) -> Value {
        let mut w = StateWriter::new();
        w.component("total", &self.total);
        w.component("base", &self.base);
        let n = self.stores.len();
        let mut slots: Vec<Value> = vec![Value::Null; n];
        {
            let cursor = AtomicUsize::new(0);
            let shared = SharedSlice::new(&mut slots[..]);
            let stores = &self.stores;
            let work = || loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= n {
                    break;
                }
                let mut sw = StateWriter::new();
                stores[k].capture(&mut sw);
                // SAFETY: `k` is a unique cursor claim over 0..n.
                *unsafe { shared.get_mut(k) } = sw.finish();
            };
            exec.execute(&work);
        }
        w.nested_list("stores", slots);
        w.finish()
    }

    /// Snapshots the dirty-tracking state at capture time. Pair with
    /// [`SynopsisManager::capture_state_delta_with`] on the *next* capture
    /// to encode only what changed in between.
    pub fn capture_mark(&self) -> SynopsisMark {
        SynopsisMark {
            epoch: self.epoch,
            base: self.base_version,
            stores: self.versions.clone(),
        }
    }

    /// Captures only the state dirtied since `mark` — the delta-checkpoint
    /// primitive. Returns `None` when the layout changed since the mark
    /// (subspace add/remove, restore): ordinals no longer line up, and the
    /// caller must fall back to a full capture.
    ///
    /// The delta tree is `{total, stores_len, base (or Null), changed:
    /// [{ordinal, store}…]}` — `total` is a few scalars and always
    /// included; clean stores are skipped entirely, which is what makes
    /// fleet-scale checkpoint cost proportional to change.
    pub fn capture_state_delta_with(
        &self,
        exec: &dyn StoreExecutor,
        mark: &SynopsisMark,
    ) -> Option<Value> {
        if mark.epoch != self.epoch || mark.stores.len() != self.stores.len() {
            return None;
        }
        let mut w = StateWriter::new();
        w.component("total", &self.total);
        w.u64("stores_len", self.stores.len() as u64);
        if self.base_version != mark.base {
            let mut bw = StateWriter::new();
            self.base.capture(&mut bw);
            w.value("base", bw.finish());
        } else {
            w.value("base", Value::Null);
        }
        let dirty: Vec<usize> = (0..self.stores.len())
            .filter(|&i| self.versions[i] != mark.stores[i])
            .collect();
        let n = dirty.len();
        let mut slots: Vec<Value> = vec![Value::Null; n];
        {
            let cursor = AtomicUsize::new(0);
            let shared = SharedSlice::new(&mut slots[..]);
            let stores = &self.stores;
            let dirty = &dirty[..];
            let work = || loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= n {
                    break;
                }
                let ordinal = dirty[k];
                let mut sw = StateWriter::new();
                sw.u64("ordinal", ordinal as u64);
                let mut inner = StateWriter::new();
                stores[ordinal].capture(&mut inner);
                sw.value("store", inner.finish());
                // SAFETY: `k` is a unique cursor claim over 0..n.
                *unsafe { shared.get_mut(k) } = sw.finish();
            };
            exec.execute(&work);
        }
        w.nested_list("changed", slots);
        Some(w.finish())
    }

    /// Restores the complete synopsis state captured by
    /// [`SynopsisManager::capture_state`]: existing stores are discarded
    /// and rebuilt from the snapshot in its registration order; the
    /// lock-free footprint mirror is re-derived in place (the shared
    /// [`LiveCounters`] handle stays valid for monitoring readers).
    pub fn restore_state(&mut self, r: &StateReader<'_>) -> std::result::Result<(), PersistError> {
        // Retract the current projected footprint from the mirror before
        // dropping the stores (flush pending deltas first, as removal does).
        for store in &mut self.stores {
            let (dc, db) = store.publish_delta();
            self.live.apply_projected(dc, db);
        }
        for store in &self.stores {
            self.live
                .apply_projected(-(store.len() as isize), -(store.approx_bytes() as isize));
        }
        self.stores.clear();
        self.index.clear();
        self.versions.clear();
        self.epoch += 1;
        self.base_version = 0;

        r.restore_component("total", &mut self.total)?;
        r.restore_component("base", &mut self.base)?;
        self.publish_base();

        for sr in r.nested_list("stores")? {
            let mask = sr.u64("mask")?;
            let subspace = Subspace::from_mask(mask)
                .map_err(|e| PersistError::custom(format!("store subspace: {e}")))?;
            let mut store = ProjectedStore::new(&self.grid, subspace);
            store.restore(&sr)?;
            let (dc, db) = store.publish_delta();
            self.live.apply_projected(dc, db);
            if self.index.insert(mask, self.stores.len()).is_some() {
                return Err(PersistError::custom(format!(
                    "duplicate projected store for subspace mask {mask:#x}"
                )));
            }
            self.stores.push(store);
            self.versions.push(0);
        }
        Ok(())
    }
}

/// Deterministic per-point cost estimate of a store: the moment stripe is
/// `O(|s|)` and probes get colder as the cell population grows.
fn shard_weight(store: &ProjectedStore) -> u64 {
    let card = store.subspace().cardinality() as u64;
    let occupancy_bits = (usize::BITS - store.len().leading_zeros()) as u64;
    (2 + card) * (4 + occupancy_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spot_types::DomainBounds;

    fn manager(dims: usize, m: u16) -> SynopsisManager {
        let grid = Grid::new(DomainBounds::unit(dims), m).unwrap();
        SynopsisManager::new(grid, TimeModel::new(100, 0.01).unwrap())
    }

    #[test]
    fn add_remove_subspaces() {
        let mut mgr = manager(3, 4);
        let s01 = Subspace::from_dims([0, 1]).unwrap();
        let s2 = Subspace::from_dims([2]).unwrap();
        assert!(mgr.add_subspace(s01));
        assert!(!mgr.add_subspace(s01));
        assert!(mgr.add_subspace(s2));
        assert_eq!(mgr.subspace_count(), 2);
        assert!(mgr.remove_subspace(&s2));
        assert!(!mgr.remove_subspace(&s2));
        assert_eq!(mgr.subspace_count(), 1);
    }

    #[test]
    fn results_follow_registration_order() {
        let mut mgr = manager(3, 4);
        let subs = [
            Subspace::from_dims([2]).unwrap(),
            Subspace::from_dims([0, 1]).unwrap(),
            Subspace::from_dims([0]).unwrap(),
        ];
        for s in subs {
            mgr.add_subspace(s);
        }
        let mut sink = Vec::new();
        mgr.update_and_query(1, &DataPoint::new(vec![0.3, 0.7, 0.1]), &mut sink)
            .unwrap();
        let got: Vec<u64> = sink.iter().map(|e| e.subspace.mask()).collect();
        let want: Vec<u64> = subs.iter().map(|s| s.mask()).collect();
        assert_eq!(got, want, "sink order must be registration order");
        // Removal keeps the survivors' relative order.
        mgr.remove_subspace(&subs[1]);
        mgr.update_and_query(2, &DataPoint::new(vec![0.3, 0.7, 0.1]), &mut sink)
            .unwrap();
        let got: Vec<u64> = sink.iter().map(|e| e.subspace.mask()).collect();
        assert_eq!(got, vec![subs[0].mask(), subs[2].mask()]);
    }

    #[test]
    fn update_touches_all_stores() {
        let mut mgr = manager(2, 4);
        let s0 = Subspace::from_dims([0]).unwrap();
        let s01 = Subspace::from_dims([0, 1]).unwrap();
        mgr.add_subspace(s0);
        mgr.add_subspace(s01);
        let p = DataPoint::new(vec![0.3, 0.7]);
        let mut sink = Vec::new();
        let out = mgr.update_and_query(1, &p, &mut sink).unwrap();
        assert_eq!(out.prior_base_count, 0.0);
        assert!((out.total_weight - 1.0).abs() < 1e-12);
        let (base_cells, proj_cells) = mgr.live_cells();
        assert_eq!(base_cells, 1);
        assert_eq!(proj_cells, 2);
        // PCS visible in both monitored subspaces.
        assert_eq!(sink.len(), 2);
        assert!(sink.iter().all(|e| e.pcs.rd > 0.0));
        assert!(sink.iter().any(|e| e.subspace == s0));
        assert!(sink.iter().any(|e| e.subspace == s01));
    }

    #[test]
    fn live_counters_mirror_exact_sweeps() {
        let mut mgr = manager(2, 4);
        mgr.add_subspace(Subspace::from_dims([0]).unwrap());
        mgr.add_subspace(Subspace::from_dims([0, 1]).unwrap());
        let live = mgr.live_counters();
        let mut sink = Vec::new();
        for i in 0..40u64 {
            let p = DataPoint::new(vec![(i % 7) as f64 / 7.0, ((i * 3) % 5) as f64 / 5.0]);
            mgr.update_and_query(i, &p, &mut sink).unwrap();
            assert_eq!(live.live_cells(), mgr.live_cells(), "tick {i}");
        }
        assert_eq!(live.approx_bytes(), mgr.approx_bytes());
        // Batch path keeps the mirror in sync too.
        let pts: Vec<DataPoint> = (0..30)
            .map(|i| DataPoint::new(vec![(i % 4) as f64 / 4.0, (i % 9) as f64 / 9.0]))
            .collect();
        let mut sinks = Vec::new();
        let mut outcomes = Vec::new();
        mgr.update_and_query_batch(40, &pts, &mut sinks, &mut outcomes)
            .unwrap();
        assert_eq!(live.live_cells(), mgr.live_cells());
        assert_eq!(live.approx_bytes(), mgr.approx_bytes());
        // Pruning retracts counters.
        mgr.prune(100_000, 1e-6);
        assert_eq!(live.live_cells(), mgr.live_cells());
        assert_eq!(live.live_cells(), (0, 0));
        // Removing a subspace retracts its footprint.
        mgr.remove_subspace(&Subspace::from_dims([0]).unwrap());
        assert_eq!(live.approx_bytes(), mgr.approx_bytes());
    }

    #[test]
    fn fused_query_matches_separate_pcs_lookup() {
        let mut mgr = manager(3, 5);
        let subs = [
            Subspace::from_dims([0]).unwrap(),
            Subspace::from_dims([1, 2]).unwrap(),
            Subspace::from_dims([0, 1, 2]).unwrap(),
        ];
        for s in subs {
            mgr.add_subspace(s);
        }
        let mut sink = Vec::new();
        for i in 0..300u64 {
            let p = DataPoint::new(vec![
                (i % 7) as f64 / 7.0,
                ((i * 3) % 5) as f64 / 5.0,
                ((i * 11) % 13) as f64 / 13.0,
            ]);
            let _ = mgr.update_and_query(i, &p, &mut sink).unwrap();
            let base = mgr.grid().base_coords(&p).unwrap();
            for entry in &sink {
                let direct = mgr.pcs(i, &base, &entry.subspace).unwrap();
                assert_eq!(entry.pcs, direct, "tick {i} subspace {}", entry.subspace);
            }
        }
    }

    fn batch_reference_check(mgr_builder: impl Fn() -> SynopsisManager, points: &[DataPoint]) {
        let mut serial = mgr_builder();
        let mut sink = Vec::new();
        let mut expected: Vec<Vec<(u64, Pcs, f64)>> = Vec::new();
        let mut expected_outcomes = Vec::new();
        for (i, p) in points.iter().enumerate() {
            let out = serial.update_and_query(i as u64, p, &mut sink).unwrap();
            expected_outcomes.push(out);
            expected.push(
                sink.iter()
                    .map(|e| (e.subspace.mask(), e.pcs, e.occupancy))
                    .collect(),
            );
        }
        let mut batched = mgr_builder();
        let mut sinks: Vec<Vec<SubspacePcs>> = Vec::new();
        let mut outcomes = Vec::new();
        batched
            .update_and_query_batch(0, points, &mut sinks, &mut outcomes)
            .unwrap();
        assert_eq!(outcomes.len(), points.len());
        for (i, want) in expected.iter().enumerate() {
            let got: Vec<(u64, Pcs, f64)> = sinks[i]
                .iter()
                .map(|e| (e.subspace.mask(), e.pcs, e.occupancy))
                .collect();
            assert_eq!(&got, want, "point {i}");
            assert_eq!(
                outcomes[i].total_weight.to_bits(),
                expected_outcomes[i].total_weight.to_bits(),
                "total at point {i}"
            );
            assert_eq!(
                outcomes[i].prior_base_count.to_bits(),
                expected_outcomes[i].prior_base_count.to_bits(),
                "prior at point {i}"
            );
            assert_eq!(outcomes[i].base_cell, expected_outcomes[i].base_cell);
        }
        assert_eq!(serial.live_cells(), batched.live_cells());
        let n = points.len() as u64;
        assert_eq!(
            serial.total_weight(n).to_bits(),
            batched.total_weight(n).to_bits()
        );
    }

    #[test]
    fn batch_matches_one_by_one() {
        let build = || {
            let mut mgr = manager(3, 4);
            mgr.add_subspace(Subspace::from_dims([0]).unwrap());
            mgr.add_subspace(Subspace::from_dims([0, 1]).unwrap());
            mgr.add_subspace(Subspace::from_dims([1, 2]).unwrap());
            mgr
        };
        let points: Vec<DataPoint> = (0..64)
            .map(|i| {
                DataPoint::new(vec![
                    (i % 9) as f64 / 9.0,
                    ((i * 5) % 7) as f64 / 7.0,
                    ((i * 2) % 3) as f64 / 3.0,
                ])
            })
            .collect();
        batch_reference_check(build, &points);
    }

    #[test]
    fn batch_matches_one_by_one_with_wide_sst() {
        // Enough stores that the `parallel` feature's pool actually
        // engages (≥ 8 on a multi-core machine); without the feature this
        // covers the serial shard loop.
        let build = || {
            let mut mgr = manager(6, 5);
            for d in 0..6 {
                mgr.add_subspace(Subspace::from_dims([d]).unwrap());
            }
            for d in 0..6 {
                mgr.add_subspace(Subspace::from_dims([d, (d + 1) % 6]).unwrap());
            }
            assert!(mgr.subspace_count() >= 8);
            mgr
        };
        let points: Vec<DataPoint> = (0..100)
            .map(|i| {
                DataPoint::new(
                    (0..6)
                        .map(|d| ((i * (d + 3) + d) % 17) as f64 / 17.0)
                        .collect(),
                )
            })
            .collect();
        batch_reference_check(build, &points);
    }

    #[test]
    fn forced_worker_counts_are_bit_identical() {
        let build = |workers: Option<usize>| {
            let mut mgr = manager(4, 5);
            mgr.set_parallel_workers(workers);
            for d in 0..4 {
                mgr.add_subspace(Subspace::from_dims([d]).unwrap());
                mgr.add_subspace(Subspace::from_dims([d, (d + 1) % 4]).unwrap());
            }
            mgr
        };
        let points: Vec<DataPoint> = (0..150)
            .map(|i| {
                DataPoint::new(
                    (0..4)
                        .map(|d| ((i * (d + 2) + 3 * d) % 23) as f64 / 23.0)
                        .collect(),
                )
            })
            .collect();
        let run = |workers: Option<usize>| {
            let mut mgr = build(workers);
            let mut sinks = Vec::new();
            let mut outcomes = Vec::new();
            // Several runs so cells age across run boundaries.
            for (chunk_idx, chunk) in points.chunks(40).enumerate() {
                mgr.update_and_query_batch(
                    (chunk_idx * 40) as u64,
                    chunk,
                    &mut sinks,
                    &mut outcomes,
                )
                .unwrap();
            }
            let state: Vec<(u64, Pcs, f64)> = sinks
                .iter()
                .flatten()
                .map(|e| (e.subspace.mask(), e.pcs, e.occupancy))
                .collect();
            (state, mgr.live_cells(), mgr.total_weight(200).to_bits())
        };
        let reference = run(Some(0));
        for workers in [1usize, 2, 5] {
            assert_eq!(run(Some(workers)), reference, "workers={workers}");
        }
    }

    #[test]
    fn prelude_rider_runs_exactly_once_and_results_match() {
        // The prelude-rider dispatch must produce the same synopsis state
        // and sinks as the plain batch path, and run the rider exactly once
        // — on the success path and on the all-or-nothing error path alike.
        let build = || {
            let mut mgr = manager(3, 4);
            mgr.add_subspace(Subspace::from_dims([0]).unwrap());
            mgr.add_subspace(Subspace::from_dims([1, 2]).unwrap());
            mgr
        };
        let points: Vec<DataPoint> = (0..40)
            .map(|i| {
                DataPoint::new(vec![
                    (i % 5) as f64 / 5.0,
                    ((i * 3) % 7) as f64 / 7.0,
                    ((i * 7) % 11) as f64 / 11.0,
                ])
            })
            .collect();
        let mut plain = build();
        let mut want_sinks = Vec::new();
        let mut want_outcomes = Vec::new();
        plain
            .update_and_query_batch(0, &points, &mut want_sinks, &mut want_outcomes)
            .unwrap();

        let mut mgr = build();
        let mut sinks = Vec::new();
        let mut outcomes = Vec::new();
        let mut ran = 0u32;
        {
            let task = OnceTask::new(|| ran += 1);
            mgr.update_and_query_batch_prelude(
                0,
                &points,
                &mut sinks,
                &mut outcomes,
                &SerialExecutor,
                &task,
            )
            .unwrap();
        }
        assert_eq!(ran, 1, "prelude ran exactly once");
        assert_eq!(mgr.live_cells(), plain.live_cells());
        for (a, b) in want_sinks.iter().zip(&sinks) {
            let want: Vec<(u64, Pcs, f64)> = a
                .iter()
                .map(|e| (e.subspace.mask(), e.pcs, e.occupancy))
                .collect();
            let got: Vec<(u64, Pcs, f64)> = b
                .iter()
                .map(|e| (e.subspace.mask(), e.pcs, e.occupancy))
                .collect();
            assert_eq!(want, got);
        }

        // Error path: validation fails before dispatch, yet the rider
        // (somebody's pending commit) must still be applied.
        let mut ran_on_err = 0u32;
        {
            let task = OnceTask::new(|| ran_on_err += 1);
            let bad = vec![DataPoint::new(vec![0.1, 0.2, f64::NAN])];
            assert!(mgr
                .update_and_query_batch_prelude(
                    40,
                    &bad,
                    &mut sinks,
                    &mut outcomes,
                    &SerialExecutor,
                    &task,
                )
                .is_err());
        }
        assert_eq!(
            ran_on_err, 1,
            "prelude still runs when the batch is rejected"
        );
    }

    #[test]
    fn rd_reflects_relative_crowding() {
        let mut mgr = manager(2, 4);
        let s0 = Subspace::from_dims([0]).unwrap();
        mgr.add_subspace(s0);
        // 90% of points in one interval of dim 0, 10% in another,
        // interleaved so decay weights both cells alike (recency-skewed
        // arrival orders shift RD by design — that is the time model
        // working, not the property under test).
        for i in 0..100u64 {
            let x = if i % 10 == 9 { 0.9 } else { 0.1 };
            mgr.update(i, &DataPoint::new(vec![x, (i % 7) as f64 / 7.0]))
                .unwrap();
        }
        let crowded = DataPoint::new(vec![0.1, 0.5]);
        let sparse = DataPoint::new(vec![0.9, 0.5]);
        let now = 100;
        let bc = mgr.grid().base_coords(&crowded).unwrap();
        let bs = mgr.grid().base_coords(&sparse).unwrap();
        let rd_crowded = mgr.pcs(now, &bc, &s0).unwrap().rd;
        let rd_sparse = mgr.pcs(now, &bs, &s0).unwrap().rd;
        assert!(rd_crowded > rd_sparse);
        assert!(rd_sparse < 1.0);
    }

    #[test]
    fn prune_shrinks_all_stores() {
        let mut mgr = manager(2, 4);
        mgr.add_subspace(Subspace::from_dims([0]).unwrap());
        for i in 0..4 {
            let p = DataPoint::new(vec![(i as f64 + 0.5) / 4.0, 0.5]);
            mgr.update(0, &p).unwrap();
        }
        let (b0, p0) = mgr.live_cells();
        assert_eq!((b0, p0), (4, 4));
        let evicted = mgr.prune(10_000, 1e-6);
        assert_eq!(evicted, 8);
        assert_eq!(mgr.live_cells(), (0, 0));
    }

    #[test]
    fn pooled_prune_is_bit_identical_to_serial() {
        // Same stream into two managers; one prunes on a forced worker
        // pool, one serially. Evicted counts and every surviving cell must
        // match bit-for-bit (the sharded scan touches disjoint stores and
        // the weight cache memoizes exact factors).
        let build = || {
            let mut mgr = manager(3, 5);
            for d in 0..3 {
                mgr.add_subspace(Subspace::from_dims([d]).unwrap());
            }
            for (a, b) in [(0usize, 1usize), (0, 2), (1, 2)] {
                mgr.add_subspace(Subspace::from_dims([a, b]).unwrap());
            }
            for i in 0..400u64 {
                let p = DataPoint::new(vec![
                    (i % 13) as f64 / 13.0,
                    (i % 7) as f64 / 7.0,
                    (i % 5) as f64 / 5.0,
                ]);
                mgr.update(i, &p).unwrap();
            }
            mgr
        };
        let mut serial = build();
        let mut pooled = build();
        serial.set_parallel_workers(Some(0));
        pooled.set_parallel_workers(Some(2));
        let now = 5000;
        let evicted_serial = serial.prune(now, 1e-3);
        let evicted_pooled = pooled.prune(now, 1e-3);
        assert_eq!(evicted_serial, evicted_pooled);
        assert!(evicted_serial > 0, "scenario must actually evict");
        assert_eq!(serial.live_cells(), pooled.live_cells());
        assert_eq!(serial.capture_state(), pooled.capture_state());
    }

    #[test]
    fn cached_prune_matches_uncached_store_prune() {
        // The WeightCache path must make the exact decisions the powi path
        // makes, cell for cell, including ages beyond the cache.
        let grid = Grid::new(DomainBounds::unit(2), 6).unwrap();
        let tm = TimeModel::new(40, 0.02).unwrap();
        let mut cached = BaseStore::new();
        let mut plain = BaseStore::new();
        for i in 0..200u64 {
            let p = DataPoint::new(vec![(i % 17) as f64 / 17.0, (i % 11) as f64 / 11.0]);
            cached.insert(&grid, &tm, i, &p).unwrap();
            plain.insert(&grid, &tm, i, &p).unwrap();
        }
        let mut wc = WeightCache::new();
        for now in [200u64, 260, 400] {
            wc.ensure(&tm, now + 1);
            let floor = 1e-2;
            let a = cached.prune_cached(&tm, &wc, now, floor);
            let b = plain.prune(&tm, now, floor);
            assert_eq!(a, b, "evictions at now={now}");
            assert_eq!(cached.len(), plain.len());
        }
    }

    #[test]
    fn total_weight_decays() {
        let mut mgr = manager(1, 4);
        mgr.update(0, &DataPoint::new(vec![0.5])).unwrap();
        let w0 = mgr.total_weight(0);
        let w100 = mgr.total_weight(100);
        assert!((w0 - 1.0).abs() < 1e-12);
        assert!((w100 - 0.01).abs() < 1e-6);
    }

    #[test]
    fn replay_warms_a_new_store() {
        let mut mgr = manager(2, 4);
        let p = DataPoint::new(vec![0.5, 0.5]);
        mgr.update(1, &p).unwrap();
        mgr.update(2, &p).unwrap();
        let s = Subspace::from_dims([1]).unwrap();
        mgr.add_subspace(s);
        mgr.replay_into(&s, &[(1, p.clone()), (2, p.clone())])
            .unwrap();
        let base = mgr.grid().base_coords(&p).unwrap();
        let pcs = mgr.pcs(2, &base, &s).unwrap();
        assert!(pcs.rd > 0.0, "replayed store must not look empty");
        // Unknown subspace errors.
        let other = Subspace::from_dims([0]).unwrap();
        assert!(mgr.replay_into(&other, &[]).is_err());
    }

    #[test]
    fn late_added_subspace_starts_empty() {
        let mut mgr = manager(2, 4);
        mgr.update(0, &DataPoint::new(vec![0.5, 0.5])).unwrap();
        let s = Subspace::from_dims([1]).unwrap();
        mgr.add_subspace(s);
        let p = DataPoint::new(vec![0.5, 0.5]);
        let base = mgr.grid().base_coords(&p).unwrap();
        // The store was added after the first point: its cells are empty.
        assert_eq!(mgr.pcs(0, &base, &s).unwrap(), Pcs::EMPTY);
    }

    #[test]
    fn batch_with_invalid_point_leaves_manager_untouched() {
        // All-or-nothing: a NaN (or dimension mismatch) anywhere in the
        // batch must be rejected before the base store, the global weight
        // or any projected store mutates — otherwise the stores desync and
        // RD is computed against a total weight the projected cells never
        // absorbed.
        let mut mgr = manager(2, 4);
        mgr.add_subspace(Subspace::from_dims([0]).unwrap());
        let mut points: Vec<DataPoint> = (0..10)
            .map(|i| DataPoint::new(vec![i as f64 / 10.0, 0.5]))
            .collect();
        points.push(DataPoint::new(vec![f64::NAN, 0.5]));
        let mut sinks = Vec::new();
        let mut outcomes = Vec::new();
        let err = mgr
            .update_and_query_batch(0, &points, &mut sinks, &mut outcomes)
            .unwrap_err();
        assert!(matches!(err, SpotError::NonFiniteValue { dim: 0 }));
        assert_eq!(mgr.live_cells(), (0, 0));
        assert_eq!(mgr.total_weight(0), 0.0);
        // Mismatched dimensionality mid-batch: same guarantee.
        let bad_dims = vec![DataPoint::new(vec![0.1, 0.1]), DataPoint::new(vec![0.1])];
        assert!(mgr
            .update_and_query_batch(0, &bad_dims, &mut sinks, &mut outcomes)
            .is_err());
        assert_eq!(mgr.live_cells(), (0, 0));
    }

    #[test]
    fn nan_point_rejected_before_any_state_change() {
        let mut mgr = manager(2, 4);
        mgr.add_subspace(Subspace::from_dims([0]).unwrap());
        let bad = DataPoint::new(vec![0.5, f64::NAN]);
        let mut sink = Vec::new();
        assert!(matches!(
            mgr.update_and_query(0, &bad, &mut sink),
            Err(SpotError::NonFiniteValue { dim: 1 })
        ));
        assert_eq!(mgr.live_cells(), (0, 0));
        assert_eq!(mgr.total_weight(0), 0.0);
    }

    #[test]
    fn delta_capture_tracks_dirty_stores_only() {
        let mut mgr = manager(2, 4);
        let s0 = Subspace::from_dims([0]).unwrap();
        let s1 = Subspace::from_dims([1]).unwrap();
        mgr.add_subspace(s0);
        mgr.add_subspace(s1);
        let p = DataPoint::new(vec![0.5, 0.5]);
        mgr.update(1, &p).unwrap();

        let changed_ordinals = |delta: &Value| -> Vec<u64> {
            let r = StateReader::new(delta).unwrap();
            r.nested_list("changed")
                .unwrap()
                .iter()
                .map(|sr| sr.u64("ordinal").unwrap())
                .collect()
        };

        // Nothing mutated since the mark → no stores, Null base.
        let mark = mgr.capture_mark();
        let delta = mgr
            .capture_state_delta_with(&SerialExecutor, &mark)
            .unwrap();
        assert_eq!(changed_ordinals(&delta), Vec::<u64>::new());
        let r = StateReader::new(&delta).unwrap();
        assert!(matches!(r.value("base").unwrap(), Value::Null));
        assert_eq!(r.u64("stores_len").unwrap(), 2);

        // Replaying into one store dirties exactly that ordinal.
        mgr.replay_into(&s1, &[(1, p.clone())]).unwrap();
        let delta = mgr
            .capture_state_delta_with(&SerialExecutor, &mark)
            .unwrap();
        assert_eq!(changed_ordinals(&delta), vec![1]);
        assert!(matches!(
            StateReader::new(&delta).unwrap().value("base").unwrap(),
            Value::Null
        ));

        // A processed point dirties the base and every store.
        mgr.update(2, &p).unwrap();
        let delta = mgr
            .capture_state_delta_with(&SerialExecutor, &mark)
            .unwrap();
        assert_eq!(changed_ordinals(&delta), vec![0, 1]);
        assert!(matches!(
            StateReader::new(&delta).unwrap().value("base").unwrap(),
            Value::Object(_)
        ));

        // A prune with nothing to evict dirties nothing.
        let mark = mgr.capture_mark();
        assert_eq!(mgr.prune(2, 0.0), 0);
        let delta = mgr
            .capture_state_delta_with(&SerialExecutor, &mark)
            .unwrap();
        assert_eq!(changed_ordinals(&delta), Vec::<u64>::new());

        // Layout changes invalidate outstanding marks.
        let mark = mgr.capture_mark();
        mgr.add_subspace(Subspace::from_dims([0, 1]).unwrap());
        assert!(mgr
            .capture_state_delta_with(&SerialExecutor, &mark)
            .is_none());
        let mark = mgr.capture_mark();
        mgr.remove_subspace(&s0);
        assert!(mgr
            .capture_state_delta_with(&SerialExecutor, &mark)
            .is_none());
    }

    #[test]
    fn clone_gets_independent_counters() {
        let mut mgr = manager(2, 4);
        mgr.add_subspace(Subspace::from_dims([0]).unwrap());
        mgr.update(0, &DataPoint::new(vec![0.3, 0.3])).unwrap();
        let mut cloned = mgr.clone();
        let clone_live = cloned.live_counters();
        assert_eq!(clone_live.live_cells(), mgr.live_cells());
        cloned.update(1, &DataPoint::new(vec![0.9, 0.9])).unwrap();
        assert_eq!(clone_live.live_cells(), cloned.live_cells());
        // The original's counters were not disturbed by the clone.
        assert_eq!(mgr.live_counters().live_cells(), mgr.live_cells());
    }
}
