//! Decaying cell summaries — SPOT's "data synapses".
//!
//! SPOT captures the stream in two compact structures over an equi-width
//! partition of the domain space:
//!
//! * **Base Cell Summary (BCS)** — per base cell (finest granularity, all ϕ
//!   dimensions): the decayed point count `D`, the decayed per-dimension
//!   linear sum `LS` and squared sum `SS` (a CF-vector). Additive and
//!   incrementally maintainable.
//! * **Projected Cell Summary (PCS)** — per cell of a particular subspace
//!   `s`: the pair `(RD, IRSD)` — Relative Density and Inverse Relative
//!   Standard Deviation — derived from the same `D/LS/SS` statistics kept
//!   per projected cell.
//!
//! All summaries decay under the (ω, ε) time model from `spot-stream`,
//! lazily (each cell stores its last-touched tick). [`SynopsisManager`]
//! bundles the base store, one projected store per SST subspace, and the
//! global decayed weight, and is the single entry point used by the
//! detection engine.
//!
//! # The zero-allocation hot path
//!
//! Cells are addressed by [`CellKey`] — a `Copy` 128-bit packed key (see
//! the `key` module for the bit layout and the wide-ϕ fingerprint
//! fallback). The per-point detection path is
//! [`SynopsisManager::update_and_query`]: one quantization into a reused
//! scratch buffer, one base-store probe, and per monitored subspace one
//! integer-shift projection + one map probe that both *inserts the point
//! and derives the cell's PCS*. On the steady state (no newly-populated
//! cells) the path performs zero heap allocations. Batch ingestion
//! ([`SynopsisManager::update_and_query_batch`]) amortizes the scratch
//! work and the decay renormalization (a per-run factor table and one
//! closed-form advance of the global weight) across a run of points.
//!
//! # The parallel runtime
//!
//! The batch path treats each per-subspace store as one shard of a
//! subspace-disjoint SST partition, claimed heaviest-first from an atomic
//! cursor by the participants of a [`StoreExecutor`] (see the `pool`
//! module): the calling thread alone by default, the manager's persistent
//! [`WorkerPool`] with the `parallel` feature, or external cooperating
//! threads (e.g. `spot`'s `SharedSpot` producers). Every store has exactly
//! one writer per run and sees points in arrival order, so all executors
//! produce bit-identical results. [`LiveCounters`] mirrors the synopsis
//! footprint into atomics for lock-free monitoring reads.

pub mod bcs;
pub mod grid;
pub mod key;
pub mod lanes;
pub mod manager;
pub mod pcs;
pub mod pool;
pub mod store;

pub use bcs::Bcs;
pub use grid::Grid;
pub use key::{CellKey, KeyCodec};
pub use manager::{LiveCounters, SubspacePcs, SynopsisManager, SynopsisMark, UpdateOutcome};
pub use pcs::{Pcs, PcsCell, ProjectedStore};
pub use pool::{
    panic_message, ExecutorHandle, OnceTask, SerialExecutor, SharedSlice, StoreExecutor, WorkerPool,
};
pub use store::BaseStore;
