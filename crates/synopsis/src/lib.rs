//! Decaying cell summaries — SPOT's "data synapses".
//!
//! SPOT captures the stream in two compact structures over an equi-width
//! partition of the domain space:
//!
//! * **Base Cell Summary (BCS)** — per base cell (finest granularity, all ϕ
//!   dimensions): the decayed point count `D`, the decayed per-dimension
//!   linear sum `LS` and squared sum `SS` (a CF-vector). Additive and
//!   incrementally maintainable.
//! * **Projected Cell Summary (PCS)** — per cell of a particular subspace
//!   `s`: the pair `(RD, IRSD)` — Relative Density and Inverse Relative
//!   Standard Deviation — derived from the same `D/LS/SS` statistics kept
//!   per projected cell.
//!
//! All summaries decay under the (ω, ε) time model from `spot-stream`,
//! lazily (each cell stores its last-touched tick). [`SynopsisManager`]
//! bundles the base store, one projected store per SST subspace, and the
//! global decayed weight, and is the single entry point used by the
//! detection engine.

pub mod bcs;
pub mod grid;
pub mod manager;
pub mod pcs;
pub mod store;

pub use bcs::Bcs;
pub use grid::{CellCoords, Grid};
pub use manager::SynopsisManager;
pub use pcs::{Pcs, PcsCell, ProjectedStore};
pub use store::BaseStore;
