//! Packed cell keys.
//!
//! The seed implementation keyed every cell store with `Box<[u16]>`
//! coordinate slices: one heap allocation per key construction and a
//! variable-length byte hash per map probe — on the per-point hot path,
//! once for the base cell plus once per monitored subspace. This module
//! replaces those with [`CellKey`], a `Copy` 128-bit integer:
//!
//! * **Packed (exact) mode** — each interval index occupies
//!   `bits = ceil(log2(granularity))` bits; the key is the indices of the
//!   participating dimensions (ascending) folded together with shifts.
//!   Injective, reversible, and hashing is a couple of integer multiplies.
//!   A key is packable whenever `|dims| · bits ≤ 128` — e.g. the full base
//!   key of a ϕ=32, m=10 grid (4 bits/dim → 128 bits), or any projected
//!   key of cardinality ≤ 128/bits (with the default m=10, up to 32
//!   dimensions — far above the SST's cardinality caps).
//! * **Fingerprint (wide) mode** — when a key would need more than 128
//!   bits (e.g. base cells at ϕ=64, m=10), the coordinates are folded into
//!   a 128-bit double-lane multiply-rotate fingerprint instead. The key is
//!   no longer reversible and two distinct cells could in principle
//!   collide, but with 2¹²⁸ key space the expected collision count over
//!   `n` live cells is ≈ n²/2¹²⁹ — for a billion-cell synopsis that is
//!   ~10⁻²¹, far below the probability of a memory bit flip, so the
//!   summaries behave identically to exact keys in practice. Base cells
//!   are the only realistic wide case; projected subspaces stay exact.
//!
//! [`KeyCodec`] decides the mode per key width and performs the
//! packing/projection. It is constructed once per [`crate::Grid`].

use serde::{Deserialize, Serialize};
use spot_subspace::Subspace;

/// A cell identifier: packed interval indices (exact mode) or a 128-bit
/// coordinate fingerprint (wide mode). See the module docs for the layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellKey(pub u128);

const LANE1_SEED: u64 = 0x9E37_79B9_7F4A_7C15;
const LANE2_SEED: u64 = 0xC2B2_AE3D_27D4_EB4F;
const LANE1_MUL: u64 = 0x517C_C1B7_2722_0A95;
const LANE2_MUL: u64 = 0x2545_F491_4F6C_DD1D;

/// Packs coordinate slices into [`CellKey`]s for one grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KeyCodec {
    /// Bits per interval index: `ceil(log2(granularity))`, at least 1.
    bits: u32,
    /// Grid dimensionality ϕ.
    dims: usize,
}

impl KeyCodec {
    /// Codec for a ϕ-dimensional grid with the given granularity.
    pub fn new(dims: usize, granularity: u16) -> Self {
        let bits = u32::BITS - u32::from(granularity.max(2) - 1).leading_zeros();
        KeyCodec {
            bits: bits.max(1),
            dims,
        }
    }

    /// Bits per packed interval index.
    pub fn bits_per_dim(&self) -> u32 {
        self.bits
    }

    /// `true` when a key over `card` dimensions is exactly packed (vs
    /// fingerprinted).
    #[inline]
    pub fn is_exact(&self, card: usize) -> bool {
        card as u32 * self.bits <= 128
    }

    /// `true` when the full base key is exactly packed.
    pub fn base_is_exact(&self) -> bool {
        self.is_exact(self.dims)
    }

    /// Key of a full base-cell coordinate slice (all ϕ dimensions).
    #[inline]
    pub fn base_key(&self, coords: &[u16]) -> CellKey {
        debug_assert_eq!(coords.len(), self.dims);
        if self.base_is_exact() {
            Self::pack_all(self.bits, coords)
        } else {
            Self::fingerprint(coords.iter().copied())
        }
    }

    /// Key of the projection of base coordinates onto `subspace`
    /// (participating dimensions ascending). Pure integer shifting in
    /// exact mode; no allocation in either mode.
    #[inline]
    pub fn project_key(&self, base: &[u16], subspace: &Subspace) -> CellKey {
        if self.is_exact(subspace.cardinality()) {
            let mut key: u128 = 0;
            for d in subspace.dims() {
                key = (key << self.bits) | base[d] as u128;
            }
            CellKey(key)
        } else {
            Self::fingerprint(subspace.dims().map(|d| base[d]))
        }
    }

    /// Packs an arbitrary coordinate slice that fits exactly (test and
    /// offline-evaluator use; hot paths go through [`KeyCodec::base_key`] /
    /// [`KeyCodec::project_key`]).
    #[inline]
    pub fn pack(&self, coords: &[u16]) -> CellKey {
        if self.is_exact(coords.len()) {
            Self::pack_all(self.bits, coords)
        } else {
            Self::fingerprint(coords.iter().copied())
        }
    }

    /// Recovers the `card` coordinates of an exactly-packed key
    /// (most-significant group = lowest participating dimension). Panics
    /// when the width is not exactly packable — fingerprints are one-way.
    pub fn unpack(&self, key: CellKey, card: usize) -> Vec<u16> {
        assert!(
            self.is_exact(card),
            "cannot unpack a fingerprinted key ({card} dims at {} bits)",
            self.bits
        );
        let mask = (1u128 << self.bits) - 1;
        (0..card)
            .map(|i| {
                let shift = (card - 1 - i) as u32 * self.bits;
                ((key.0 >> shift) & mask) as u16
            })
            .collect()
    }

    #[inline]
    fn pack_all(bits: u32, coords: &[u16]) -> CellKey {
        let mut key: u128 = 0;
        for &c in coords {
            key = (key << bits) | c as u128;
        }
        CellKey(key)
    }

    /// Double-lane multiply-rotate fold (see module docs on collisions).
    #[inline]
    fn fingerprint(coords: impl Iterator<Item = u16>) -> CellKey {
        let mut h1 = LANE1_SEED;
        let mut h2 = LANE2_SEED;
        let mut n = 0u64;
        for c in coords {
            h1 = (h1.rotate_left(5) ^ c as u64).wrapping_mul(LANE1_MUL);
            h2 = (h2.rotate_left(7) ^ c as u64).wrapping_mul(LANE2_MUL);
            n += 1;
        }
        h1 = (h1.rotate_left(5) ^ n).wrapping_mul(LANE1_MUL);
        h2 = (h2.rotate_left(7) ^ n).wrapping_mul(LANE2_MUL);
        CellKey(((h1 as u128) << 64) | h2 as u128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bits_per_dim_is_ceil_log2() {
        assert_eq!(KeyCodec::new(4, 2).bits_per_dim(), 1);
        assert_eq!(KeyCodec::new(4, 3).bits_per_dim(), 2);
        assert_eq!(KeyCodec::new(4, 4).bits_per_dim(), 2);
        assert_eq!(KeyCodec::new(4, 10).bits_per_dim(), 4);
        assert_eq!(KeyCodec::new(4, 255).bits_per_dim(), 8);
        assert_eq!(KeyCodec::new(4, 256).bits_per_dim(), 8);
        assert_eq!(KeyCodec::new(4, 1024).bits_per_dim(), 10);
    }

    #[test]
    fn exactness_boundary() {
        // 4 bits/dim (m=10): exact through 32 dims, fingerprinted beyond.
        let c = KeyCodec::new(32, 10);
        assert!(c.base_is_exact());
        let c = KeyCodec::new(33, 10);
        assert!(!c.base_is_exact());
        assert!(c.is_exact(32));
        // 10 bits/dim (m=1024): exact through 12 dims.
        let c = KeyCodec::new(12, 1024);
        assert!(c.base_is_exact());
        assert!(!KeyCodec::new(13, 1024).base_is_exact());
    }

    #[test]
    fn projection_matches_packing_projected_slice() {
        let codec = KeyCodec::new(5, 10);
        let base = [3u16, 7, 9, 0, 5];
        let s = Subspace::from_dims([1, 3, 4]).unwrap();
        let direct = codec.project_key(&base, &s);
        let by_slice = codec.pack(&[7, 0, 5]);
        assert_eq!(direct, by_slice);
    }

    #[test]
    fn unpack_rejects_wide_keys() {
        let codec = KeyCodec::new(200, 1024);
        let r = std::panic::catch_unwind(|| codec.unpack(CellKey(1), 200));
        assert!(r.is_err());
    }

    #[test]
    fn fingerprint_distinguishes_permutations_and_lengths() {
        let codec = KeyCodec::new(200, 1024); // forces wide mode
        let a: Vec<u16> = (0..200).collect();
        let mut b = a.clone();
        b.swap(0, 199);
        assert_ne!(codec.pack(&a), codec.pack(&b));
        assert_ne!(codec.pack(&a[..150]), codec.pack(&a[..151]));
    }

    proptest! {
        #[test]
        fn packed_roundtrip(
            coords in proptest::collection::vec(0u16..1024, 1..12),
            gran_sel in 0usize..4,
        ) {
            let granularity = [2u16, 3, 255, 1024][gran_sel];
            let coords: Vec<u16> =
                coords.iter().map(|&c| c % granularity).collect();
            let codec = KeyCodec::new(coords.len(), granularity);
            prop_assert!(codec.base_is_exact());
            let key = codec.base_key(&coords);
            prop_assert_eq!(codec.unpack(key, coords.len()), coords);
        }

        #[test]
        fn packed_keys_injective(
            a in proptest::collection::vec(0u16..255, 8),
            b in proptest::collection::vec(0u16..255, 8),
        ) {
            let codec = KeyCodec::new(8, 255);
            let (ka, kb) = (codec.pack(&a), codec.pack(&b));
            prop_assert_eq!(ka == kb, a == b);
        }

        #[test]
        fn wide_fingerprints_stable_and_spread(
            coords in proptest::collection::vec(0u16..9, 40),
            flip in 0usize..40,
        ) {
            // phi=40 at m=10 needs 160 bits: the wide fallback path.
            let codec = KeyCodec::new(40, 10);
            prop_assert!(!codec.base_is_exact());
            let k1 = codec.base_key(&coords);
            prop_assert_eq!(k1, codec.base_key(&coords));
            let mut other = coords.clone();
            other[flip] = (other[flip] + 1) % 9;
            prop_assert_ne!(codec.base_key(&other), k1);
        }
    }
}
