//! Explicit SIMD-style lanes for the quantization kernel.
//!
//! `std::simd` is still nightly-only, so this is an in-tree stand-in: a
//! fixed-width lane array with element-wise operators and no
//! data-dependent control flow anywhere in the kernel. Each operator is a
//! straight-line loop over `LANES` elements on aligned storage — the
//! shape LLVM's autovectorizer reliably lifts to vector instructions
//! (`vsubpd`/`vmulpd`/`vminpd` on x86-64) — while the code states the
//! lane structure explicitly instead of hoping a scalar loop unrolls.
//!
//! The grid's hot path ([`crate::Grid::base_coords_into`]) dispatches to
//! [`quantize_lanes`] under the `simd` feature and to a branch-free
//! scalar loop otherwise; both produce bit-identical coordinates (see the
//! parity proptest below and the grid's own chunked-vs-scalar suites).

/// Lane width of the kernel. Four f64s fill one AVX2 register; on
/// narrower ISAs the compiler splits the lane ops into register pairs.
pub const LANES: usize = 4;

/// A lane array of `f64`s with element-wise arithmetic. 32-byte
/// alignment lets the backend use aligned vector loads for the
/// temporaries it keeps on the stack.
#[derive(Clone, Copy, Debug)]
#[repr(align(32))]
pub struct F64x4(pub [f64; LANES]);

impl F64x4 {
    /// Loads one lane from a slice (must hold at least `LANES` values).
    #[inline(always)]
    pub fn load(s: &[f64]) -> Self {
        F64x4([s[0], s[1], s[2], s[3]])
    }

    /// True if any element is `NaN`. Branch-free: the per-lane compares
    /// reduce with `|` so the whole check is one vector compare plus a
    /// movemask, not a chain of early exits.
    #[inline(always)]
    pub fn any_nan(self) -> bool {
        self.0.iter().fold(false, |nan, v| nan | v.is_nan())
    }

    /// Saturating float→interval conversion: truncation is floor for
    /// positive values, negatives (and `NaN`) saturate to 0, `+∞`
    /// saturates past `hi` before the `min` pins it to the last interval.
    /// Exactly the scalar `interval` contract, one lane at a time.
    #[inline(always)]
    pub fn to_intervals(self, hi: u64) -> [u16; LANES] {
        let mut out = [0u16; LANES];
        for (o, v) in out.iter_mut().zip(self.0) {
            *o = (v as u64).min(hi) as u16;
        }
        out
    }
}

/// Element-wise subtraction.
impl std::ops::Sub for F64x4 {
    type Output = F64x4;

    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0) {
            *o -= r;
        }
        F64x4(out)
    }
}

/// Element-wise multiplication.
impl std::ops::Mul for F64x4 {
    type Output = F64x4;

    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0) {
            *o *= r;
        }
        F64x4(out)
    }
}

/// One quantization step over a full lane: `(v - mn) * iw`, saturating
/// cast, clamp to `hi`. Returns the interval lane and whether any input
/// was `NaN` (callers fold the flag and locate the dimension on the cold
/// error path only).
#[inline(always)]
pub fn quantize_lanes(v: &[f64], mn: &[f64], iw: &[f64], hi: u64) -> ([u16; LANES], bool) {
    let v = F64x4::load(v);
    let rel = (v - F64x4::load(mn)) * F64x4::load(iw);
    (rel.to_intervals(hi), v.any_nan())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn scalar_interval(v: f64, mn: f64, iw: f64, hi: u64) -> u16 {
        (((v - mn) * iw) as u64).min(hi) as u16
    }

    proptest! {
        #[test]
        fn lane_kernel_matches_scalar_interval(
            v in proptest::collection::vec(-1e18f64..1e18, LANES),
            special in 0usize..6,
            pos in 0usize..LANES,
            mn in -10.0f64..10.0,
            iw in 0.01f64..100.0,
            hi in 1u64..1000,
        ) {
            // The stand-in proptest has no union strategies, so special
            // values (infinities, NaN, signed zero) are injected over the
            // drawn lane at a drawn position.
            let mut v = v;
            v[pos] = match special {
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => f64::NAN,
                4 => 0.0,
                5 => -0.0,
                _ => v[pos],
            };
            let mns = [mn; LANES];
            let iws = [iw; LANES];
            let (lane, saw_nan) = quantize_lanes(&v, &mns, &iws, hi);
            prop_assert_eq!(saw_nan, v.iter().any(|x| x.is_nan()));
            for k in 0..LANES {
                prop_assert_eq!(lane[k], scalar_interval(v[k], mn, iw, hi));
            }
        }
    }
}
