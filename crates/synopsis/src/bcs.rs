//! Base Cell Summary.

use serde::{Deserialize, Serialize};
use spot_stream::TimeModel;
use spot_types::DataPoint;

/// Base Cell Summary `BCS(c) = (D_c, LS_c, SS_c)` with lazy decay.
///
/// `D` is the decayed number of points in the cell; `LS`/`SS` are the
/// decayed per-dimension linear and squared sums. The triple is *additive*
/// (two summaries over disjoint point sets merge by aligned addition) and
/// *incremental* (one point folds in with O(ϕ) work), the two properties
/// the paper requires for one-pass maintenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bcs {
    d: f64,
    ls: Vec<f64>,
    ss: Vec<f64>,
    last_tick: u64,
}

impl Bcs {
    /// Empty summary for a `dims`-dimensional cell, created at `tick`.
    pub fn new(dims: usize, tick: u64) -> Self {
        Bcs {
            d: 0.0,
            ls: vec![0.0; dims],
            ss: vec![0.0; dims],
            last_tick: tick,
        }
    }

    /// Dimensionality of the summary.
    pub fn dims(&self) -> usize {
        self.ls.len()
    }

    /// Rebuilds a summary from captured raw parts (snapshot restore). The
    /// triple must be self-consistent: `ls`/`ss` decayed to `last_tick`
    /// exactly like `d`.
    pub fn from_parts(d: f64, ls: Vec<f64>, ss: Vec<f64>, last_tick: u64) -> Self {
        debug_assert_eq!(ls.len(), ss.len());
        Bcs {
            d,
            ls,
            ss,
            last_tick,
        }
    }

    /// The stored per-dimension moment sums `(LS, SS)`, decayed to
    /// [`Bcs::last_tick`] (snapshot capture).
    pub fn moments(&self) -> (&[f64], &[f64]) {
        (&self.ls, &self.ss)
    }

    /// Decays the stored values to tick `now`.
    #[inline]
    pub fn decay_to(&mut self, model: &TimeModel, now: u64) {
        let f = model.decay_between(self.last_tick, now);
        if f != 1.0 {
            self.d *= f;
            for v in &mut self.ls {
                *v *= f;
            }
            for v in &mut self.ss {
                *v *= f;
            }
        }
        self.last_tick = now;
    }

    /// Folds a point in at tick `now` (decaying first).
    pub fn insert(&mut self, model: &TimeModel, now: u64, p: &DataPoint) {
        let f = model.decay_between(self.last_tick, now);
        self.insert_with_factor(f, now, p);
    }

    /// Folds a point in at tick `now` using a renormalization `factor` the
    /// caller already derived — the batch path serves it from the per-run
    /// decay table instead of recomputing `δ^age` per touch. `factor` must
    /// equal `model.decay_between(self.last_tick, now)`.
    #[inline]
    pub fn insert_with_factor(&mut self, factor: f64, now: u64, p: &DataPoint) {
        debug_assert_eq!(p.dims(), self.dims());
        if factor != 1.0 {
            self.d *= factor;
            for v in &mut self.ls {
                *v *= factor;
            }
            for v in &mut self.ss {
                *v *= factor;
            }
        }
        self.last_tick = now;
        self.d += 1.0;
        for (d, &v) in p.values().iter().enumerate() {
            self.ls[d] += v;
            self.ss[d] += v * v;
        }
    }

    /// Decayed count renormalized to `now` (non-mutating).
    #[inline]
    pub fn count_at(&self, model: &TimeModel, now: u64) -> f64 {
        self.d * model.decay_between(self.last_tick, now)
    }

    /// Decayed count at the last-touched tick.
    pub fn count(&self) -> f64 {
        self.d
    }

    /// Last tick at which the summary was updated.
    pub fn last_tick(&self) -> u64 {
        self.last_tick
    }

    /// Per-dimension mean of the (decay-weighted) points in the cell.
    /// `None` when the cell is (effectively) empty.
    pub fn mean(&self, dim: usize) -> Option<f64> {
        (self.d > f64::EPSILON).then(|| self.ls[dim] / self.d)
    }

    /// Per-dimension variance of the (decay-weighted) points:
    /// `SS/D − (LS/D)²`, floored at zero against rounding.
    pub fn variance(&self, dim: usize) -> Option<f64> {
        (self.d > f64::EPSILON).then(|| {
            let m = self.ls[dim] / self.d;
            (self.ss[dim] / self.d - m * m).max(0.0)
        })
    }

    /// Merges another summary (aligned addition after decaying both to the
    /// later of the two last-touched ticks).
    pub fn merge(&mut self, model: &TimeModel, other: &Bcs) {
        debug_assert_eq!(self.dims(), other.dims());
        let now = self.last_tick.max(other.last_tick);
        self.decay_to(model, now);
        let f = model.decay_between(other.last_tick, now);
        self.d += other.d * f;
        for (a, &b) in self.ls.iter_mut().zip(other.ls.iter()) {
            *a += b * f;
        }
        for (a, &b) in self.ss.iter_mut().zip(other.ss.iter()) {
            *a += b * f;
        }
    }

    /// Approximate heap footprint in bytes (for the memory experiments).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + 2 * self.ls.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn landmark() -> TimeModel {
        TimeModel::landmark()
    }

    fn decaying() -> TimeModel {
        TimeModel::new(10, 0.5).unwrap()
    }

    fn p(vals: &[f64]) -> DataPoint {
        DataPoint::new(vals.to_vec())
    }

    #[test]
    fn insert_accumulates_statistics() {
        let tm = landmark();
        let mut b = Bcs::new(2, 0);
        b.insert(&tm, 0, &p(&[1.0, 2.0]));
        b.insert(&tm, 0, &p(&[3.0, 4.0]));
        assert!((b.count() - 2.0).abs() < 1e-12);
        assert!((b.mean(0).unwrap() - 2.0).abs() < 1e-12);
        assert!((b.mean(1).unwrap() - 3.0).abs() < 1e-12);
        // var over {1,3} = 1
        assert!((b.variance(0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cell_has_no_moments() {
        let b = Bcs::new(3, 0);
        assert!(b.mean(0).is_none());
        assert!(b.variance(2).is_none());
    }

    #[test]
    fn decay_halves_at_omega() {
        let tm = decaying(); // epsilon 0.5 at omega 10
        let mut b = Bcs::new(1, 0);
        b.insert(&tm, 0, &p(&[4.0]));
        assert!((b.count_at(&tm, 10) - 0.5).abs() < 1e-9);
        // Mean is decay-invariant: numerator and denominator shrink alike.
        b.decay_to(&tm, 10);
        assert!((b.mean(0).unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn variance_is_decay_invariant() {
        let tm = decaying();
        let mut b = Bcs::new(1, 0);
        b.insert(&tm, 0, &p(&[1.0]));
        b.insert(&tm, 0, &p(&[3.0]));
        let v0 = b.variance(0).unwrap();
        b.decay_to(&tm, 25);
        let v1 = b.variance(0).unwrap();
        assert!((v0 - v1).abs() < 1e-9);
    }

    #[test]
    fn lazy_equals_eager_decay() {
        let tm = decaying();
        // Lazy: touch at ticks 0, 4, 9 only.
        let mut lazy = Bcs::new(1, 0);
        lazy.insert(&tm, 0, &p(&[1.0]));
        lazy.insert(&tm, 4, &p(&[2.0]));
        lazy.insert(&tm, 9, &p(&[3.0]));
        // Eager: decay every tick explicitly.
        let mut eager = Bcs::new(1, 0);
        eager.insert(&tm, 0, &p(&[1.0]));
        for t in 1..=9u64 {
            eager.decay_to(&tm, t);
            if t == 4 {
                eager.insert(&tm, t, &p(&[2.0]));
            }
            if t == 9 {
                eager.insert(&tm, t, &p(&[3.0]));
            }
        }
        assert!((lazy.count_at(&tm, 9) - eager.count_at(&tm, 9)).abs() < 1e-9);
        assert!((lazy.mean(0).unwrap() - eager.mean(0).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn merge_matches_combined_insertion() {
        let tm = decaying();
        let pts_a = [[1.0], [2.0]];
        let pts_b = [[5.0], [7.0]];
        let mut a = Bcs::new(1, 0);
        for (i, v) in pts_a.iter().enumerate() {
            a.insert(&tm, i as u64, &p(v));
        }
        let mut b = Bcs::new(1, 0);
        for (i, v) in pts_b.iter().enumerate() {
            b.insert(&tm, i as u64 + 2, &p(v));
        }
        let mut combined = Bcs::new(1, 0);
        for (i, v) in pts_a.iter().chain(pts_b.iter()).enumerate() {
            combined.insert(&tm, i as u64, &p(v));
        }
        a.merge(&tm, &b);
        assert!((a.count_at(&tm, 3) - combined.count_at(&tm, 3)).abs() < 1e-9);
        assert!((a.mean(0).unwrap() - combined.mean(0).unwrap()).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn additivity_property(
            xs in proptest::collection::vec(-10.0f64..10.0, 1..12),
            ys in proptest::collection::vec(-10.0f64..10.0, 1..12),
        ) {
            // All points at the same tick: BCS(A) + BCS(B) == BCS(A ∪ B).
            let tm = decaying();
            let mut a = Bcs::new(1, 0);
            for &x in &xs { a.insert(&tm, 5, &p(&[x])); }
            let mut b = Bcs::new(1, 0);
            for &y in &ys { b.insert(&tm, 5, &p(&[y])); }
            let mut both = Bcs::new(1, 0);
            for &v in xs.iter().chain(ys.iter()) { both.insert(&tm, 5, &p(&[v])); }
            a.merge(&tm, &b);
            prop_assert!((a.count() - both.count()).abs() < 1e-9);
            prop_assert!((a.mean(0).unwrap() - both.mean(0).unwrap()).abs() < 1e-7);
            prop_assert!((a.variance(0).unwrap() - both.variance(0).unwrap()).abs() < 1e-7);
        }

        #[test]
        fn count_never_negative(ticks in proptest::collection::vec(0u64..100, 1..20)) {
            let tm = decaying();
            let mut b = Bcs::new(1, 0);
            let mut sorted = ticks.clone();
            sorted.sort_unstable();
            for t in sorted {
                b.insert(&tm, t, &p(&[1.0]));
                prop_assert!(b.count() >= 0.0);
            }
        }
    }
}
