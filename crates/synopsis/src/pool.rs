//! The parallel execution layer: a persistent worker pool and the
//! [`StoreExecutor`] abstraction the batch ingestion path fans out through.
//!
//! # Why an executor trait
//!
//! `SynopsisManager::update_and_query_batch_with` partitions the SST's
//! per-subspace stores into subspace-disjoint *shards* and exposes the
//! shard work as one `Fn() + Sync` closure that claims shards from an
//! atomic cursor until none remain. *Who* runs that closure is the
//! executor's business:
//!
//! * [`SerialExecutor`] — the calling thread alone (the default build).
//! * [`WorkerPool`] — the calling thread plus a set of persistent worker
//!   threads owned by the manager (the `parallel` feature's default).
//! * `spot`'s `SharedSpot` publishes the closure on a job board so that
//!   *other producer threads* blocked on the detector lock claim shards
//!   instead of convoying.
//!
//! All three produce bit-identical results: every shard is claimed by
//! exactly one participant, every store sees its points in arrival order,
//! and results land in per-store slots merged in a fixed order.
//!
//! # The pool
//!
//! Workers are spawned once and live for the pool's lifetime — the
//! per-batch cost of dispatch is one channel send and one latch wait, not
//! a `thread::spawn`. Jobs borrow the caller's stack (coordinates, store
//! slices, result rows); [`ErasedJob`] erases the borrow lifetime to
//! cross the channel, and the dispatcher **blocks until every worker has
//! returned from the job**, which is what makes the erasure sound. A
//! panic inside a job is caught in the worker, recorded on the job, and
//! re-raised on the calling thread after all participants have stopped
//! touching the borrowed state. (`spot`'s cooperative `SharedSpot`
//! reuses [`ErasedJob`] for its job board, so the unsafe contract lives
//! in exactly one place.)

use crossbeam::channel::{bounded, Sender};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Renders a panic payload to text: `&str`/`String` payloads verbatim
/// (the overwhelmingly common case — `panic!` with a message), anything
/// else as an opaque marker. Used wherever a caught panic is converted
/// into a typed error instead of re-raised.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Pointer wrapper handing out `&mut` to *distinct* elements from several
/// threads. Soundness is the shard claim protocol: every index is claimed
/// by exactly one participant (an atomic cursor over a permutation), so no
/// element is ever aliased. Shared by the manager's shard phase and the
/// detector's parallel verdict sweep.
pub struct SharedSlice<T> {
    ptr: *mut T,
    len: usize,
}

unsafe impl<T: Send> Send for SharedSlice<T> {}
unsafe impl<T: Send> Sync for SharedSlice<T> {}

impl<T> SharedSlice<T> {
    /// Wraps a slice for claim-protocol access.
    pub fn new(slice: &mut [T]) -> Self {
        SharedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// # Safety
    /// `i < len`, and no other participant holds `i` (claim protocol).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        &mut *self.ptr.add(i)
    }
}

/// A claim-once task: many participants may race to [`OnceTask::run`] it,
/// exactly one executes the closure. The detector uses this to ride a
/// previous run's sequential commit phase on the next run's shard
/// dispatch — whichever participant claims it performs the (single-writer)
/// detector-state mutations while the others ingest shards.
pub struct OnceTask<'a> {
    inner: Mutex<Option<Box<dyn FnOnce() + Send + 'a>>>,
}

impl<'a> OnceTask<'a> {
    /// Wraps `f` for at-most-once execution.
    pub fn new(f: impl FnOnce() + Send + 'a) -> Self {
        OnceTask {
            inner: Mutex::new(Some(Box::new(f))),
        }
    }

    /// Runs the closure if nobody has yet; returns whether this call ran it.
    pub fn run(&self) -> bool {
        let taken = self.inner.lock().unwrap_or_else(|e| e.into_inner()).take();
        match taken {
            Some(f) => {
                f();
                true
            }
            None => false,
        }
    }
}

/// Runs shard-claim closures across one or more participants.
///
/// Contract: `execute` calls `work` on the current thread at least once,
/// may call it concurrently from other threads, and does not return until
/// **every** participant has returned from `work`. The closure itself is
/// responsible for claiming disjoint units of work (it loops on an atomic
/// cursor), so calling it from extra threads is always safe.
pub trait StoreExecutor: Sync {
    /// Executes `work` to completion across this executor's participants.
    fn execute(&self, work: &(dyn Fn() + Sync));
}

/// The trivial executor: the calling thread does everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct SerialExecutor;

impl StoreExecutor for SerialExecutor {
    fn execute(&self, work: &(dyn Fn() + Sync)) {
        work();
    }
}

/// Countdown latch: `wait` blocks until `arrive` has been called `n` times.
#[derive(Debug)]
struct Latch {
    remaining: Mutex<usize>,
    zero: Condvar,
}

impl Latch {
    fn new(n: usize) -> Self {
        Latch {
            remaining: Mutex::new(n),
            zero: Condvar::new(),
        }
    }

    fn arrive(&self) {
        let mut left = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        *left -= 1;
        if *left == 0 {
            self.zero.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        while *left > 0 {
            left = self.zero.wait(left).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A lifetime-erased, panic-recording handle to a borrowed shard-claim
/// closure — the one place the `'a → 'static` transmute lives. Every
/// dispatch mechanism (the pool's workers here, `spot`'s job-board
/// helpers) shares this type, so the soundness contract is stated and
/// maintained once.
pub struct ErasedJob {
    work: *const (dyn Fn() + Sync),
    /// Participants whose `run` panicked (each claim loop runs many claim
    /// units; the count attributes *how many participants* died, and the
    /// first payload says why).
    panics: AtomicUsize,
    /// The first panicking participant's payload, preserved verbatim so
    /// the owner can re-raise (or type) the *original* panic instead of a
    /// generic marker.
    payload: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: the pointee is `Sync` (shared calls are fine) and the erasure
// contract (below) guarantees it outlives every `run`.
unsafe impl Send for ErasedJob {}
unsafe impl Sync for ErasedJob {}

impl ErasedJob {
    /// Erases the borrow lifetime of `work` so the job can cross channels
    /// and thread boundaries.
    ///
    /// # Safety
    ///
    /// The caller must not return from the frame that owns `work`'s
    /// borrows until every thread that can reach this job has finished
    /// calling [`ErasedJob::run`] — i.e. it must block on a completion
    /// latch / drain counter that those threads signal *after* `run`
    /// returns.
    pub unsafe fn erase(work: &(dyn Fn() + Sync)) -> Self {
        let work: *const (dyn Fn() + Sync + 'static) = std::mem::transmute::<
            *const (dyn Fn() + Sync + '_),
            *const (dyn Fn() + Sync + 'static),
        >(work as *const (dyn Fn() + Sync));
        ErasedJob {
            work,
            panics: AtomicUsize::new(0),
            payload: Mutex::new(None),
        }
    }

    /// Runs the closure, recording (instead of propagating) a panic: the
    /// count of panicking participants and the first panic's payload. The
    /// owner re-raises via [`ErasedJob::resume_if_panicked`] (or converts
    /// to a typed error via [`ErasedJob::take_panic`]) once all
    /// participants have stopped touching the borrowed state.
    pub fn run(&self) {
        // SAFETY: the erasure contract keeps the pointee alive for every
        // `run` call.
        let work = unsafe { &*self.work };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(work)) {
            let mut slot = self.payload.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some(payload);
            }
            drop(slot);
            self.panics.fetch_add(1, Ordering::Release);
        }
    }

    /// Whether any participant's `run` panicked.
    pub fn panicked(&self) -> bool {
        self.panics.load(Ordering::Acquire) > 0
    }

    /// How many participants' `run` calls panicked.
    pub fn panic_count(&self) -> usize {
        self.panics.load(Ordering::Acquire)
    }

    /// Takes the first panicking participant's payload (once).
    pub fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.payload
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
    }

    /// Re-raises the recorded panic on the calling thread, preserving the
    /// original payload — callers see the panic message of the claim unit
    /// that actually died, not a generic marker. Must only be called once
    /// every participant has left `run` (the dispatch contract).
    pub fn resume_if_panicked(&self) {
        if !self.panicked() {
            return;
        }
        match self.take_panic() {
            Some(payload) => std::panic::resume_unwind(payload),
            // Unreachable in practice: the payload is stored before the
            // count is published. Keep a typed fallback anyway.
            None => panic!("a shard job panicked (payload already taken)"),
        }
    }
}

/// One pool dispatch: the shared erased job plus the completion latch the
/// dispatcher blocks on (which is what upholds the erasure contract).
struct Job {
    job: Arc<ErasedJob>,
    latch: Arc<Latch>,
}

/// A persistent set of worker threads executing shard-claim jobs.
///
/// The pool adds `workers()` participants to every [`WorkerPool::run`]
/// call; the calling thread always participates too, so a pool of size 0
/// degrades to [`SerialExecutor`] behavior.
pub struct WorkerPool {
    senders: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.senders.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `workers` persistent threads (0 is allowed).
    pub fn new(workers: usize) -> Self {
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            // Capacity 1: dispatch never blocks behind an idle worker, and
            // a worker never holds more than one queued job.
            let (tx, rx) = bounded::<Job>(1);
            let handle = std::thread::Builder::new()
                .name(format!("spot-synopsis-worker-{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job.job.run();
                        job.latch.arrive();
                    }
                })
                .expect("spawn synopsis worker");
            senders.push(tx);
            handles.push(handle);
        }
        WorkerPool { senders, handles }
    }

    /// Number of worker threads (excluding the caller).
    pub fn workers(&self) -> usize {
        self.senders.len()
    }
}

impl StoreExecutor for WorkerPool {
    /// Runs `work` on every pool worker and on the calling thread,
    /// returning once all of them are done. Panics (after all participants
    /// have stopped) if any participant panicked.
    fn execute(&self, work: &(dyn Fn() + Sync)) {
        if self.senders.is_empty() {
            work();
            return;
        }
        let latch = Arc::new(Latch::new(self.senders.len()));
        // SAFETY: `latch.wait()` below blocks this frame until every
        // worker has signalled completion, upholding the erasure contract.
        let job = Arc::new(unsafe { ErasedJob::erase(work) });
        for tx in &self.senders {
            let dispatch = Job {
                job: Arc::clone(&job),
                latch: Arc::clone(&latch),
            };
            if tx.send(dispatch).is_err() {
                unreachable!("pool worker exited while the pool was alive");
            }
        }
        job.run();
        latch.wait();
        // Every participant has returned; re-raise with the original
        // payload so the caller can attribute the failure (the fleet
        // runtime catches this and quarantines exactly one tenant).
        job.resume_if_panicked();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channels ends the worker loops.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A cloneable, `Arc`-backed **executor service**: the one place that owns
/// the persistent [`WorkerPool`] and decides when a piece of shard-claim
/// work is worth fanning out.
///
/// Historically each `SynopsisManager` owned its own lazily-spawned pool,
/// so hosting N detectors cost N pools and N uncoordinated sets of worker
/// threads. The handle inverts that ownership: serial and pooled execution
/// are *modes of one shared runtime* — every manager (and, through it,
/// every detector of a fleet) holds a clone of the same handle, and at
/// most **one** pool is ever spawned per handle, shared by all of them.
/// `spot`'s cooperative `SharedSpot` remains a third mode layered on top
/// (an external [`StoreExecutor`] passed per call).
///
/// Results are bit-identical whichever mode runs a dispatch — the claim
/// protocol guarantees one writer per shard regardless of who the
/// participants are — so the handle can be retargeted (worker count
/// changed, pool dropped) at any quiescent point without observable
/// effect on verdicts, stats, or synopsis state.
#[derive(Debug, Clone)]
pub struct ExecutorHandle {
    inner: Arc<ExecutorInner>,
}

#[derive(Debug)]
struct ExecutorInner {
    /// `Some(0)` forces serial, `Some(n)` forces an `n`-worker pool even
    /// for narrow work, `None` sizes by the machine (and engages only for
    /// wide-enough dispatches).
    forced: Mutex<Option<usize>>,
    /// The lazily-spawned pool (dropped and respawned when retargeted).
    pool: Mutex<Option<Arc<WorkerPool>>>,
    /// Pools this handle spawned over its lifetime — observability for the
    /// fleet tests, which pin "one pool for N tenants" with it.
    pools_spawned: AtomicUsize,
}

impl ExecutorHandle {
    fn with_forced(forced: Option<usize>) -> Self {
        ExecutorHandle {
            inner: Arc::new(ExecutorInner {
                forced: Mutex::new(forced),
                pool: Mutex::new(None),
                pools_spawned: AtomicUsize::new(0),
            }),
        }
    }

    /// A handle that never spawns workers: every dispatch runs on the
    /// calling thread (plus whatever external executor a caller supplies).
    pub fn serial() -> Self {
        Self::with_forced(Some(0))
    }

    /// A machine-sized handle: spawns `available_parallelism - 1` workers,
    /// lazily, the first time a dispatch is wide enough to pay for fan-out.
    pub fn auto() -> Self {
        Self::with_forced(None)
    }

    /// A handle with a fixed worker budget (0 degrades to [`Self::serial`]
    /// behavior; `n > 0` engages the pool even for narrow work — the
    /// setting equivalence tests and pinned deployments use).
    pub fn with_workers(workers: usize) -> Self {
        Self::with_forced(Some(workers))
    }

    /// The handle a standalone manager/detector gets by default:
    /// machine-sized with the `parallel` feature, serial otherwise (the
    /// historical per-build behavior, now just two settings of one
    /// service).
    pub fn default_for_build() -> Self {
        if cfg!(feature = "parallel") {
            Self::auto()
        } else {
            Self::serial()
        }
    }

    /// Retargets the worker budget: `Some(0)` forces serial, `Some(n)`
    /// forces an `n`-worker pool, `None` restores machine-sized defaults.
    /// An existing pool of a different size is dropped (its threads join)
    /// and respawned lazily. Affects every manager sharing this handle.
    pub fn set_workers(&self, workers: Option<usize>) {
        let mut forced = self.inner.forced.lock().unwrap_or_else(|e| e.into_inner());
        *forced = workers;
        // Drop under the forced lock so a concurrent `pool_for` cannot
        // resurrect the old size between the store and the clear.
        *self.inner.pool.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }

    /// Identity of this service (clones compare equal): two managers with
    /// the same id share one pool by construction.
    pub fn id(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }

    /// How many [`WorkerPool`]s this handle has spawned over its lifetime.
    /// A fleet that shares one handle across N tenants asserts this stays
    /// at 1 however many tenants ingest.
    pub fn pools_spawned(&self) -> usize {
        self.inner.pools_spawned.load(Ordering::Relaxed)
    }

    /// The pool to use for a dispatch over `stores` shards and `points`
    /// points under the default engagement floors (≥ 8 of each). See
    /// [`ExecutorHandle::pool_for_with`].
    pub fn pool_for(&self, stores: usize, points: usize) -> Option<Arc<WorkerPool>> {
        self.pool_for_with(stores, points, 8, 8)
    }

    /// The pool to use for a dispatch over `stores` shards and `points`
    /// points — `None` when the work should run serially (forced serial,
    /// empty work, or too narrow to pay for fan-out under machine-sized
    /// defaults). The caller supplies the engagement floors (tunable from
    /// the detector configuration); a forced worker budget overrides them.
    /// Spawns the pool on first engagement and returns the same shared
    /// pool afterwards.
    pub fn pool_for_with(
        &self,
        stores: usize,
        points: usize,
        min_stores: usize,
        min_points: usize,
    ) -> Option<Arc<WorkerPool>> {
        if stores == 0 || points == 0 {
            return None;
        }
        // Hold the forced lock across the ensure: a concurrent
        // `set_workers` must not interleave between reading the budget and
        // installing the pool, or a stale-size pool could be re-installed
        // right after the retarget cleared the slot.
        let guard = self.inner.forced.lock().unwrap_or_else(|e| e.into_inner());
        let forced = *guard;
        let engage = match forced {
            Some(workers) => workers > 0,
            // Fan out only when the work is wide enough to pay for the
            // dispatch, and the machine has threads to give.
            None => stores >= min_stores && points >= min_points && Self::default_workers() >= 1,
        };
        if !engage {
            return None;
        }
        let pool = self.ensure_pool(forced.unwrap_or_else(Self::default_workers));
        drop(guard);
        Some(pool)
    }

    /// The pool for a dispatch whose width should not gate engagement
    /// (checkpoint capture, other cold-path fan-outs): `None` only when
    /// the service is in a serial mode.
    pub fn pool_for_capture(&self) -> Option<Arc<WorkerPool>> {
        self.pool_for(usize::MAX, usize::MAX)
    }

    /// The pool, if one is currently spawned (monitoring/tests; does not
    /// spawn).
    pub fn current_pool(&self) -> Option<Arc<WorkerPool>> {
        self.inner
            .pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn ensure_pool(&self, desired: usize) -> Arc<WorkerPool> {
        let mut slot = self.inner.pool.lock().unwrap_or_else(|e| e.into_inner());
        match &*slot {
            Some(pool) if pool.workers() == desired => Arc::clone(pool),
            _ => {
                let pool = Arc::new(WorkerPool::new(desired));
                self.inner.pools_spawned.fetch_add(1, Ordering::Relaxed);
                *slot = Some(Arc::clone(&pool));
                pool
            }
        }
    }

    fn default_workers() -> usize {
        std::thread::available_parallelism().map_or(1, |n| n.get()) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn drain_counter(exec: &dyn StoreExecutor, units: usize) -> Vec<u8> {
        let cursor = AtomicUsize::new(0);
        let hits: Vec<AtomicUsize> = (0..units).map(|_| AtomicUsize::new(0)).collect();
        let work = || loop {
            let k = cursor.fetch_add(1, Ordering::Relaxed);
            if k >= units {
                break;
            }
            hits[k].fetch_add(1, Ordering::Relaxed);
        };
        exec.execute(&work);
        hits.iter()
            .map(|h| h.load(Ordering::Relaxed) as u8)
            .collect()
    }

    #[test]
    fn serial_executor_claims_every_unit_once() {
        assert_eq!(drain_counter(&SerialExecutor, 17), vec![1u8; 17]);
    }

    #[test]
    fn pool_claims_every_unit_exactly_once() {
        for workers in [0usize, 1, 3] {
            let pool = WorkerPool::new(workers);
            assert_eq!(pool.workers(), workers);
            assert_eq!(drain_counter(&pool, 97), vec![1u8; 97], "workers={workers}");
        }
    }

    #[test]
    fn pool_is_reusable_across_many_runs() {
        let pool = WorkerPool::new(2);
        for round in 0..50usize {
            let got: usize = drain_counter(&pool, round + 1)
                .iter()
                .map(|&h| h as usize)
                .sum();
            assert_eq!(got, round + 1);
        }
    }

    #[test]
    fn pool_borrows_caller_stack_safely() {
        let pool = WorkerPool::new(2);
        let mut results = vec![0u64; 64];
        {
            let cursor = AtomicUsize::new(0);
            let cells: Vec<Mutex<&mut u64>> = results.iter_mut().map(Mutex::new).collect();
            let work = || loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= cells.len() {
                    break;
                }
                **cells[k].lock().unwrap() = (k as u64) * 3;
            };
            pool.execute(&work);
        }
        for (i, v) in results.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 3);
        }
    }

    #[test]
    fn once_task_runs_exactly_once_under_contention() {
        let counter = AtomicUsize::new(0);
        let task = OnceTask::new(|| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        let ran: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| task.run() as usize))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(ran, 1, "exactly one claimant executes");
        assert_eq!(counter.load(Ordering::Relaxed), 1);
        assert!(!task.run(), "already consumed");
    }

    #[test]
    fn once_task_mutates_borrowed_state() {
        let mut hits = 0u64;
        {
            let task = OnceTask::new(|| hits += 7);
            assert!(task.run());
        }
        assert_eq!(hits, 7);
    }

    #[test]
    fn shared_slice_disjoint_claims() {
        let mut data = [0u32; 33];
        {
            let shared = SharedSlice::new(&mut data[..]);
            let cursor = AtomicUsize::new(0);
            let work = || loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= 33 {
                    break;
                }
                // SAFETY: k is a unique cursor claim.
                *unsafe { shared.get_mut(k) } = k as u32 + 1;
            };
            WorkerPool::new(2).execute(&work);
        }
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u32 + 1);
        }
    }

    #[test]
    fn executor_handle_serial_never_spawns() {
        let handle = ExecutorHandle::serial();
        assert!(handle.pool_for(64, 4096).is_none());
        assert_eq!(handle.pools_spawned(), 0);
        assert!(handle.current_pool().is_none());
    }

    #[test]
    fn executor_handle_spawns_exactly_one_shared_pool() {
        let handle = ExecutorHandle::with_workers(2);
        // Narrow/empty work never engages.
        assert!(handle.pool_for(0, 100).is_none());
        assert!(handle.pool_for(100, 0).is_none());
        let clones: Vec<ExecutorHandle> = (0..8).map(|_| handle.clone()).collect();
        let pools: Vec<Arc<WorkerPool>> = clones
            .iter()
            .map(|h| h.pool_for(4, 4).expect("forced workers engage"))
            .collect();
        for pool in &pools {
            assert!(Arc::ptr_eq(pool, &pools[0]), "clones share one pool");
            assert_eq!(pool.workers(), 2);
        }
        assert_eq!(handle.pools_spawned(), 1);
        for clone in &clones {
            assert_eq!(clone.id(), handle.id());
        }
    }

    #[test]
    fn executor_handle_retargets_worker_budget() {
        let handle = ExecutorHandle::with_workers(1);
        let first = handle.pool_for(4, 4).unwrap();
        assert_eq!(first.workers(), 1);
        handle.set_workers(Some(3));
        let second = handle.pool_for(4, 4).unwrap();
        assert_eq!(second.workers(), 3);
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(handle.pools_spawned(), 2);
        // Same size again: no respawn.
        assert!(Arc::ptr_eq(&second, &handle.pool_for(4, 4).unwrap()));
        assert_eq!(handle.pools_spawned(), 2);
        handle.set_workers(Some(0));
        assert!(handle.pool_for(4, 4).is_none());
        assert!(handle.current_pool().is_none(), "serial drops the pool");
    }

    #[test]
    fn job_panic_propagates_to_caller() {
        let pool = WorkerPool::new(1);
        let cursor = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let work = || {
                if cursor.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("boom");
                }
            };
            pool.execute(&work);
        }));
        // The original payload crosses the pool: the caller sees "boom",
        // not a generic "a job panicked" marker.
        let payload = result.unwrap_err();
        assert_eq!(panic_message(payload.as_ref()), "boom");
        // The pool survives and is usable afterwards.
        assert_eq!(drain_counter(&pool, 5), vec![1u8; 5]);
    }

    #[test]
    fn erased_job_records_count_and_first_payload() {
        let work = || panic!("unit died");
        // SAFETY: `work` outlives every `run` below (same frame).
        let job = unsafe { ErasedJob::erase(&work) };
        job.run();
        job.run();
        assert!(job.panicked());
        assert_eq!(job.panic_count(), 2);
        let payload = job.take_panic().expect("first payload kept");
        assert_eq!(panic_message(payload.as_ref()), "unit died");
        assert!(job.take_panic().is_none(), "payload is taken once");
    }

    #[test]
    fn panic_message_renders_common_payloads() {
        assert_eq!(panic_message(&"static"), "static");
        assert_eq!(panic_message(&"owned".to_string()), "owned");
        assert_eq!(panic_message(&42u32), "non-string panic payload");
    }
}
