//! Equi-width grid partition of the domain space.

use serde::{Deserialize, Serialize};
use spot_subspace::Subspace;
use spot_types::{DataPoint, DomainBounds, Result, SpotError};

/// Coordinates of a cell: one interval index per participating dimension.
///
/// For a base cell the coordinates cover all ϕ dimensions; for a projected
/// cell they cover only the dimensions of the subspace, in ascending
/// dimension order. Boxed to keep the key small in the hash maps.
pub type CellCoords = Box<[u16]>;

/// Equi-width partition: each dimension's `[min, max]` range is divided
/// into `granularity` intervals of equal width.
///
/// Points outside the bounds are clamped into the boundary cells — the
/// stream may drift beyond the training range and the synopsis must keep
/// absorbing it (the drift detector is responsible for flagging when this
/// happens en masse).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Grid {
    bounds: DomainBounds,
    granularity: u16,
    /// Precomputed 1/width per cell per dimension (granularity / range).
    inv_cell_width: Vec<f64>,
}

impl Grid {
    /// Creates a grid over `bounds` with `granularity` intervals per
    /// dimension (at least 2).
    pub fn new(bounds: DomainBounds, granularity: u16) -> Result<Self> {
        if granularity < 2 {
            return Err(SpotError::InvalidConfig(format!(
                "granularity must be at least 2, got {granularity}"
            )));
        }
        let inv_cell_width = (0..bounds.dims())
            .map(|d| granularity as f64 / bounds.width(d))
            .collect();
        Ok(Grid { bounds, granularity, inv_cell_width })
    }

    /// Dimensionality ϕ of the grid.
    pub fn dims(&self) -> usize {
        self.bounds.dims()
    }

    /// Intervals per dimension.
    pub fn granularity(&self) -> u16 {
        self.granularity
    }

    /// Domain bounds.
    pub fn bounds(&self) -> &DomainBounds {
        &self.bounds
    }

    /// Width of one cell along dimension `d`.
    pub fn cell_width(&self, d: usize) -> f64 {
        self.bounds.width(d) / self.granularity as f64
    }

    /// Interval index of value `v` along dimension `d`, clamped into range.
    #[inline]
    pub fn interval(&self, d: usize, v: f64) -> u16 {
        let rel = (v - self.bounds.min(d)) * self.inv_cell_width[d];
        if rel <= 0.0 {
            0
        } else {
            let idx = rel as u64; // truncation == floor for rel > 0
            idx.min(self.granularity as u64 - 1) as u16
        }
    }

    /// Base-cell coordinates of a point (all ϕ dimensions).
    pub fn base_coords(&self, p: &DataPoint) -> Result<CellCoords> {
        if p.dims() != self.dims() {
            return Err(SpotError::DimensionMismatch { expected: self.dims(), got: p.dims() });
        }
        Ok(p.values()
            .iter()
            .enumerate()
            .map(|(d, &v)| self.interval(d, v))
            .collect())
    }

    /// Projects base-cell coordinates onto a subspace: keeps the entries of
    /// the participating dimensions, ascending.
    pub fn project(&self, base: &[u16], subspace: &Subspace) -> CellCoords {
        debug_assert!(subspace.fits(self.dims()));
        subspace.dims().map(|d| base[d]).collect()
    }

    /// Standard deviation of a uniform distribution over one cell interval
    /// of dimension `d`: `width / sqrt(12)`. This is the reference scale of
    /// the IRSD measure.
    pub fn uniform_sigma(&self, d: usize) -> f64 {
        self.cell_width(d) / 12f64.sqrt()
    }

    /// Aggregated (Euclidean over dimensions) uniform standard deviation of
    /// a projected cell in `subspace`.
    pub fn uniform_sigma_in(&self, subspace: &Subspace) -> f64 {
        subspace
            .dims()
            .map(|d| {
                let s = self.uniform_sigma(d);
                s * s
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Number of projected cells in `subspace`: `granularity^|s|` (may be
    /// astronomically large; returned as f64 because it only ever enters
    /// the RD formula as a multiplier).
    pub fn cell_count_in(&self, subspace: &Subspace) -> f64 {
        (self.granularity as f64).powi(subspace.cardinality() as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn grid(dims: usize, m: u16) -> Grid {
        Grid::new(DomainBounds::unit(dims), m).unwrap()
    }

    #[test]
    fn interval_mapping_basics() {
        let g = grid(1, 10);
        assert_eq!(g.interval(0, 0.0), 0);
        assert_eq!(g.interval(0, 0.05), 0);
        assert_eq!(g.interval(0, 0.15), 1);
        assert_eq!(g.interval(0, 0.999), 9);
        assert_eq!(g.interval(0, 1.0), 9); // boundary clamps to last
    }

    #[test]
    fn out_of_range_clamped() {
        let g = grid(1, 10);
        assert_eq!(g.interval(0, -5.0), 0);
        assert_eq!(g.interval(0, 7.3), 9);
    }

    #[test]
    fn granularity_validation() {
        assert!(Grid::new(DomainBounds::unit(2), 1).is_err());
        assert!(Grid::new(DomainBounds::unit(2), 2).is_ok());
    }

    #[test]
    fn base_coords_and_projection() {
        let g = grid(4, 10);
        let p = DataPoint::new(vec![0.05, 0.55, 0.95, 0.25]);
        let base = g.base_coords(&p).unwrap();
        assert_eq!(&base[..], &[0, 5, 9, 2]);
        let s = Subspace::from_dims([1, 3]).unwrap();
        let proj = g.project(&base, &s);
        assert_eq!(&proj[..], &[5, 2]);
    }

    #[test]
    fn base_coords_dimension_check() {
        let g = grid(3, 10);
        assert!(g.base_coords(&DataPoint::new(vec![0.5; 2])).is_err());
    }

    #[test]
    fn uniform_sigma_values() {
        let g = grid(2, 10);
        let per_dim = 0.1 / 12f64.sqrt();
        assert!((g.uniform_sigma(0) - per_dim).abs() < 1e-12);
        let s = Subspace::from_dims([0, 1]).unwrap();
        assert!((g.uniform_sigma_in(&s) - (2.0 * per_dim * per_dim).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn cell_count() {
        let g = grid(3, 10);
        let s = Subspace::from_dims([0, 2]).unwrap();
        assert!((g.cell_count_in(&s) - 100.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn interval_always_in_range(v in -10.0f64..10.0, m in 2u16..100) {
            let g = grid(1, m);
            prop_assert!(g.interval(0, v) < m);
        }

        #[test]
        fn interval_is_monotonic(a in 0.0f64..1.0, b in 0.0f64..1.0) {
            let g = grid(1, 17);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(g.interval(0, lo) <= g.interval(0, hi));
        }

        #[test]
        fn projection_preserves_entries(
            vals in proptest::collection::vec(0.0f64..1.0, 5), mask in 1u64..32u64
        ) {
            let g = grid(5, 10);
            let p = DataPoint::new(vals);
            let base = g.base_coords(&p).unwrap();
            let s = Subspace::from_mask(mask).unwrap();
            let proj = g.project(&base, &s);
            prop_assert_eq!(proj.len(), s.cardinality());
            for (i, d) in s.dims().enumerate() {
                prop_assert_eq!(proj[i], base[d]);
            }
        }
    }
}
