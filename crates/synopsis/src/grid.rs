//! Equi-width grid partition of the domain space.

use crate::key::{CellKey, KeyCodec};
use serde::{Deserialize, Serialize};
use spot_subspace::Subspace;
use spot_types::{DataPoint, DomainBounds, Result, SpotError};

/// Equi-width partition: each dimension's `[min, max]` range is divided
/// into `granularity` intervals of equal width.
///
/// Points outside the bounds are clamped into the boundary cells — the
/// stream may drift beyond the training range and the synopsis must keep
/// absorbing it (the drift detector is responsible for flagging when this
/// happens en masse). That includes infinities, which clamp like any other
/// out-of-range value; `NaN` values are rejected at quantization (see
/// [`Grid::base_coords_into`]) because they cannot be ordered into an
/// interval and would otherwise masquerade as interval-0 inliers.
///
/// Cells are identified by [`CellKey`]s packed by the grid's [`KeyCodec`] —
/// see `crate::key` for the layout and the wide-ϕ fallback.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Grid {
    bounds: DomainBounds,
    granularity: u16,
    /// Precomputed 1/width per cell per dimension (granularity / range).
    inv_cell_width: Vec<f64>,
    /// Packs coordinate slices into cell keys.
    codec: KeyCodec,
}

impl Grid {
    /// Creates a grid over `bounds` with `granularity` intervals per
    /// dimension (at least 2).
    pub fn new(bounds: DomainBounds, granularity: u16) -> Result<Self> {
        if granularity < 2 {
            return Err(SpotError::InvalidConfig(format!(
                "granularity must be at least 2, got {granularity}"
            )));
        }
        let inv_cell_width = (0..bounds.dims())
            .map(|d| granularity as f64 / bounds.width(d))
            .collect();
        let codec = KeyCodec::new(bounds.dims(), granularity);
        Ok(Grid {
            bounds,
            granularity,
            inv_cell_width,
            codec,
        })
    }

    /// Dimensionality ϕ of the grid.
    pub fn dims(&self) -> usize {
        self.bounds.dims()
    }

    /// Intervals per dimension.
    pub fn granularity(&self) -> u16 {
        self.granularity
    }

    /// Domain bounds.
    pub fn bounds(&self) -> &DomainBounds {
        &self.bounds
    }

    /// The key codec of this grid.
    pub fn codec(&self) -> &KeyCodec {
        &self.codec
    }

    /// Width of one cell along dimension `d`.
    pub fn cell_width(&self, d: usize) -> f64 {
        self.bounds.width(d) / self.granularity as f64
    }

    /// Interval index of value `v` along dimension `d`, clamped into range.
    /// `NaN` maps to interval 0; the coordinate entry points reject it
    /// before it gets here.
    ///
    /// The saturating float→int cast does all the clamping: truncation is
    /// floor for positive values, negative values (and NaN) saturate to 0,
    /// and `+∞` saturates to `u64::MAX` before the `min` pins it to the
    /// last interval.
    #[inline]
    pub fn interval(&self, d: usize, v: f64) -> u16 {
        let rel = (v - self.bounds.min(d)) * self.inv_cell_width[d];
        (rel as u64).min(self.granularity as u64 - 1) as u16
    }

    /// Quantizes a point into `out` (reused across calls: the hot path's
    /// zero-allocation entry). Rejects dimension mismatches and `NaN`
    /// values; infinities clamp to the boundary cells.
    ///
    /// The loop runs in fixed-width chunks of branch-free lanes
    /// (subtract, scale, saturating cast, clamp — no data-dependent
    /// control flow), a shape the autovectorizer can lift to SIMD for
    /// wide-ϕ streams; `BENCH_parallel.json` carries the ϕ ∈ {8, 24, 64}
    /// micro numbers. Under the `simd` feature the lane step is the
    /// explicit [`crate::lanes`] kernel instead of the inlined scalar
    /// chunk; both are bit-identical (parity proptests in `lanes` and
    /// below). NaN detection is folded into the same lanes (a
    /// per-element early exit would block vectorization); the offending
    /// dimension is only located on the cold error path.
    #[inline]
    pub fn base_coords_into(&self, p: &DataPoint, out: &mut Vec<u16>) -> Result<()> {
        if p.dims() != self.dims() {
            return Err(SpotError::DimensionMismatch {
                expected: self.dims(),
                got: p.dims(),
            });
        }
        const LANES: usize = crate::lanes::LANES;
        out.clear();
        out.reserve(self.dims());
        let values = p.values();
        let mins = self.bounds.mins();
        let inv = &self.inv_cell_width[..];
        let hi = self.granularity as u64 - 1;
        let mut saw_nan = false;

        let mut vals = values.chunks_exact(LANES);
        let mut lows = mins.chunks_exact(LANES);
        let mut scales = inv.chunks_exact(LANES);
        for ((v, mn), iw) in (&mut vals).zip(&mut lows).zip(&mut scales) {
            #[cfg(feature = "simd")]
            let lane = {
                let (lane, nan) = crate::lanes::quantize_lanes(v, mn, iw, hi);
                saw_nan |= nan;
                lane
            };
            #[cfg(not(feature = "simd"))]
            let lane = {
                let mut lane = [0u16; LANES];
                for k in 0..LANES {
                    saw_nan |= v[k].is_nan();
                    let rel = (v[k] - mn[k]) * iw[k];
                    lane[k] = (rel as u64).min(hi) as u16;
                }
                lane
            };
            out.extend_from_slice(&lane);
        }
        for ((&v, &mn), &iw) in vals
            .remainder()
            .iter()
            .zip(lows.remainder())
            .zip(scales.remainder())
        {
            saw_nan |= v.is_nan();
            let rel = (v - mn) * iw;
            out.push((rel as u64).min(hi) as u16);
        }

        if saw_nan {
            out.clear();
            let dim = values
                .iter()
                .position(|v| v.is_nan())
                .expect("a NaN was observed");
            return Err(SpotError::NonFiniteValue { dim });
        }
        Ok(())
    }

    /// Base-cell coordinates of a point (all ϕ dimensions). Allocating
    /// convenience for offline/test use; hot paths use
    /// [`Grid::base_coords_into`].
    pub fn base_coords(&self, p: &DataPoint) -> Result<Vec<u16>> {
        let mut out = Vec::with_capacity(self.dims());
        self.base_coords_into(p, &mut out)?;
        Ok(out)
    }

    /// Key of the base cell with the given coordinates.
    #[inline]
    pub fn base_key(&self, coords: &[u16]) -> CellKey {
        self.codec.base_key(coords)
    }

    /// Key of the projection of base coordinates onto `subspace` — pure
    /// integer shifting, no allocation.
    #[inline]
    pub fn project_key(&self, base: &[u16], subspace: &Subspace) -> CellKey {
        debug_assert!(subspace.fits(self.dims()));
        self.codec.project_key(base, subspace)
    }

    /// Base-cell key of a point (coordinate buffer supplied by the caller).
    pub fn key_of(&self, p: &DataPoint, scratch: &mut Vec<u16>) -> Result<CellKey> {
        self.base_coords_into(p, scratch)?;
        Ok(self.base_key(scratch))
    }

    /// Standard deviation of a uniform distribution over one cell interval
    /// of dimension `d`: `width / sqrt(12)`. This is the reference scale of
    /// the IRSD measure.
    pub fn uniform_sigma(&self, d: usize) -> f64 {
        self.cell_width(d) / 12f64.sqrt()
    }

    /// Aggregated (Euclidean over dimensions) uniform standard deviation of
    /// a projected cell in `subspace`.
    pub fn uniform_sigma_in(&self, subspace: &Subspace) -> f64 {
        subspace
            .dims()
            .map(|d| {
                let s = self.uniform_sigma(d);
                s * s
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Number of projected cells in `subspace`: `granularity^|s|` (may be
    /// astronomically large; returned as f64 because it only ever enters
    /// the RD formula as a multiplier).
    pub fn cell_count_in(&self, subspace: &Subspace) -> f64 {
        (self.granularity as f64).powi(subspace.cardinality() as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn grid(dims: usize, m: u16) -> Grid {
        Grid::new(DomainBounds::unit(dims), m).unwrap()
    }

    #[test]
    fn interval_mapping_basics() {
        let g = grid(1, 10);
        assert_eq!(g.interval(0, 0.0), 0);
        assert_eq!(g.interval(0, 0.05), 0);
        assert_eq!(g.interval(0, 0.15), 1);
        assert_eq!(g.interval(0, 0.999), 9);
        assert_eq!(g.interval(0, 1.0), 9); // boundary clamps to last
    }

    #[test]
    fn out_of_range_clamped() {
        let g = grid(1, 10);
        assert_eq!(g.interval(0, -5.0), 0);
        assert_eq!(g.interval(0, 7.3), 9);
    }

    #[test]
    fn infinities_clamp_to_boundary_cells() {
        let g = grid(2, 10);
        assert_eq!(g.interval(0, f64::INFINITY), 9);
        assert_eq!(g.interval(0, f64::NEG_INFINITY), 0);
        let coords = g
            .base_coords(&DataPoint::new(vec![f64::INFINITY, f64::NEG_INFINITY]))
            .unwrap();
        assert_eq!(&coords[..], &[9, 0]);
    }

    #[test]
    fn nan_rejected_at_quantization() {
        let g = grid(3, 10);
        let err = g
            .base_coords(&DataPoint::new(vec![0.5, f64::NAN, 0.5]))
            .unwrap_err();
        assert!(matches!(err, SpotError::NonFiniteValue { dim: 1 }));
    }

    #[test]
    fn granularity_validation() {
        assert!(Grid::new(DomainBounds::unit(2), 1).is_err());
        assert!(Grid::new(DomainBounds::unit(2), 2).is_ok());
    }

    #[test]
    fn base_coords_and_projection_keys() {
        let g = grid(4, 10);
        let p = DataPoint::new(vec![0.05, 0.55, 0.95, 0.25]);
        let base = g.base_coords(&p).unwrap();
        assert_eq!(&base[..], &[0, 5, 9, 2]);
        let s = Subspace::from_dims([1, 3]).unwrap();
        let proj = g.project_key(&base, &s);
        assert_eq!(g.codec().unpack(proj, 2), vec![5, 2]);
    }

    #[test]
    fn base_coords_dimension_check() {
        let g = grid(3, 10);
        assert!(g.base_coords(&DataPoint::new(vec![0.5; 2])).is_err());
    }

    #[test]
    fn key_of_reuses_scratch() {
        let g = grid(2, 4);
        let mut scratch = Vec::new();
        let k1 = g
            .key_of(&DataPoint::new(vec![0.1, 0.1]), &mut scratch)
            .unwrap();
        let k2 = g
            .key_of(&DataPoint::new(vec![0.1, 0.12]), &mut scratch)
            .unwrap();
        assert_eq!(k1, k2, "same cell, same key");
        let k3 = g
            .key_of(&DataPoint::new(vec![0.9, 0.9]), &mut scratch)
            .unwrap();
        assert_ne!(k1, k3);
    }

    #[test]
    fn uniform_sigma_values() {
        let g = grid(2, 10);
        let per_dim = 0.1 / 12f64.sqrt();
        assert!((g.uniform_sigma(0) - per_dim).abs() < 1e-12);
        let s = Subspace::from_dims([0, 1]).unwrap();
        assert!((g.uniform_sigma_in(&s) - (2.0 * per_dim * per_dim).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn cell_count() {
        let g = grid(3, 10);
        let s = Subspace::from_dims([0, 2]).unwrap();
        assert!((g.cell_count_in(&s) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn chunked_quantization_matches_scalar_intervals() {
        // The chunked loop (full lanes plus remainder — dims spanning
        // both sides of every LANES boundary) must agree with the scalar
        // `interval` everywhere, including clamped extremes.
        let edge_values = [
            -1e18,
            -3.7,
            -0.0,
            0.0,
            1e-12,
            0.4999,
            0.5,
            0.9999,
            1.0,
            7.3,
            1e18,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ];
        for dims in [1usize, 3, 7, 8, 9, 16, 24, 31, 64] {
            let g = Grid::new(DomainBounds::uniform(dims, -0.25, 1.5).unwrap(), 13).unwrap();
            let mut out = Vec::new();
            for shift in 0..edge_values.len() {
                let vals: Vec<f64> = (0..dims)
                    .map(|d| edge_values[(d + shift) % edge_values.len()])
                    .collect();
                let p = DataPoint::new(vals.clone());
                g.base_coords_into(&p, &mut out).unwrap();
                assert_eq!(out.len(), dims);
                for (d, &v) in vals.iter().enumerate() {
                    assert_eq!(out[d], g.interval(d, v), "dims={dims} d={d} v={v}");
                }
            }
        }
    }

    proptest! {
        #[test]
        fn lane_kernel_matches_fallback_chunk(
            vals in proptest::collection::vec(-5.0f64..5.0, crate::lanes::LANES),
            special in 0usize..5,
            pos in 0usize..crate::lanes::LANES,
            m in 2u16..50,
        ) {
            // The explicit lane kernel and the scalar fallback chunk must
            // agree element-for-element whichever one `base_coords_into`
            // compiled in — this pins the other path too. Clamped
            // extremes are injected over the drawn lane (the stand-in
            // proptest has no union strategies).
            let mut vals = vals;
            vals[pos] = match special {
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => 1e18,
                4 => -1e18,
                _ => vals[pos],
            };
            let g = grid(crate::lanes::LANES, m);
            let hi = m as u64 - 1;
            let (lane, nan) = crate::lanes::quantize_lanes(
                &vals,
                g.bounds().mins(),
                &g.inv_cell_width,
                hi,
            );
            prop_assert!(!nan);
            for (d, &v) in vals.iter().enumerate() {
                prop_assert_eq!(lane[d], g.interval(d, v), "d={} v={}", d, v);
            }
        }
    }

    proptest! {
        #[test]
        fn chunked_quantization_matches_scalar_randomly(
            vals in proptest::collection::vec(-5.0f64..5.0, 1..40), m in 2u16..50
        ) {
            let dims = vals.len();
            let g = Grid::new(DomainBounds::unit(dims), m).unwrap();
            let mut out = Vec::new();
            g.base_coords_into(&DataPoint::new(vals.clone()), &mut out).unwrap();
            for (d, &v) in vals.iter().enumerate() {
                prop_assert_eq!(out[d], g.interval(d, v));
            }
        }

        #[test]
        fn interval_always_in_range(v in -10.0f64..10.0, m in 2u16..100) {
            let g = grid(1, m);
            prop_assert!(g.interval(0, v) < m);
        }

        #[test]
        fn interval_is_monotonic(a in 0.0f64..1.0, b in 0.0f64..1.0) {
            let g = grid(1, 17);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(g.interval(0, lo) <= g.interval(0, hi));
        }

        #[test]
        fn projection_preserves_entries(
            vals in proptest::collection::vec(0.0f64..1.0, 5), mask in 1u64..32u64
        ) {
            let g = grid(5, 10);
            let p = DataPoint::new(vals);
            let base = g.base_coords(&p).unwrap();
            let s = Subspace::from_mask(mask).unwrap();
            let proj = g.codec().unpack(g.project_key(&base, &s), s.cardinality());
            prop_assert_eq!(proj.len(), s.cardinality());
            for (i, d) in s.dims().enumerate() {
                prop_assert_eq!(proj[i], base[d]);
            }
        }
    }
}
