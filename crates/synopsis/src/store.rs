//! Store of populated base cells.

use crate::bcs::Bcs;
use crate::grid::Grid;
use crate::key::CellKey;
use spot_stream::{DecayTable, TimeModel, WeightCache};
use spot_types::{
    DataPoint, DurableState, FxHashMap, PersistError, Result, StateReader, StateWriter,
};

/// All populated base cells of the hypercube, keyed by their packed
/// [`CellKey`].
///
/// Only *populated* cells are materialized — the hypercube has `m^ϕ` cells,
/// astronomically more than a stream can touch; the store grows with the
/// data's support, and [`BaseStore::prune`] shrinks it again as regions of
/// the space fall out of the decaying window. Keys are `Copy`, so the
/// steady-state insertion path allocates nothing (the seed implementation
/// boxed a coordinate slice per insertion and cloned it into the map
/// entry).
#[derive(Debug, Clone)]
pub struct BaseStore {
    cells: FxHashMap<CellKey, Bcs>,
    /// Conservative lower bound on the oldest `last_tick` among populated
    /// cells (`u64::MAX` when empty) — the prune screen's eviction
    /// horizon. Derived state: tightened exactly during prune scans,
    /// loosened monotonically by inserts, never captured.
    min_last_tick: u64,
}

impl Default for BaseStore {
    fn default() -> Self {
        BaseStore {
            cells: FxHashMap::default(),
            min_last_tick: u64::MAX,
        }
    }
}

impl BaseStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of populated base cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when no cell is populated.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Inserts a point whose base-cell coordinates were already quantized
    /// (the manager's zero-allocation path). Returns the cell's decayed
    /// count *before* this insertion — the novelty signal consumed by the
    /// concept-drift detector.
    pub fn insert_at(
        &mut self,
        key: CellKey,
        dims: usize,
        model: &TimeModel,
        now: u64,
        p: &DataPoint,
    ) -> f64 {
        let cell = self.cells.entry(key).or_insert_with(|| Bcs::new(dims, now));
        let prior = cell.count_at(model, now);
        cell.insert(model, now, p);
        self.min_last_tick = self.min_last_tick.min(now);
        prior
    }

    /// [`BaseStore::insert_at`] with the renormalization factor served from
    /// a per-run decay table (the batch ingestion path) — one table load
    /// instead of one `powi` per insertion, bit-identical results.
    #[inline]
    pub fn insert_at_run(
        &mut self,
        key: CellKey,
        dims: usize,
        model: &TimeModel,
        table: &DecayTable,
        now: u64,
        p: &DataPoint,
    ) -> f64 {
        let cell = self.cells.entry(key).or_insert_with(|| Bcs::new(dims, now));
        let f = table.factor(model, cell.last_tick(), now);
        let prior = cell.count() * f;
        cell.insert_with_factor(f, now, p);
        self.min_last_tick = self.min_last_tick.min(now);
        prior
    }

    /// Exact heap footprint per populated cell for a `dims`-dimensional
    /// store — [`BaseStore::approx_bytes`] equals
    /// `size_of::<BaseStore>() + len · cell_bytes(dims)`, which is what
    /// lets the manager mirror the footprint into lock-free counters
    /// without sweeping the cells.
    pub fn cell_bytes(dims: usize) -> usize {
        std::mem::size_of::<CellKey>()
            + std::mem::size_of::<Bcs>()
            + 2 * dims * std::mem::size_of::<f64>()
    }

    /// Inserts a point at tick `now`, returning its base-cell key and the
    /// cell's decayed count before this insertion. Allocates only the
    /// internal coordinate scratch; callers on a hot path should quantize
    /// once themselves and use [`BaseStore::insert_at`].
    pub fn insert(
        &mut self,
        grid: &Grid,
        model: &TimeModel,
        now: u64,
        p: &DataPoint,
    ) -> Result<(CellKey, f64)> {
        let coords = grid.base_coords(p)?;
        let key = grid.base_key(&coords);
        let prior = self.insert_at(key, grid.dims(), model, now, p);
        Ok((key, prior))
    }

    /// The summary of the cell with the given key, if populated.
    pub fn get(&self, key: CellKey) -> Option<&Bcs> {
        self.cells.get(&key)
    }

    /// Decayed count of the cell containing `p` at tick `now` (0 when the
    /// cell was never populated).
    pub fn count_for(
        &self,
        grid: &Grid,
        model: &TimeModel,
        now: u64,
        p: &DataPoint,
    ) -> Result<f64> {
        let coords = grid.base_coords(p)?;
        let key = grid.base_key(&coords);
        Ok(self.cells.get(&key).map_or(0.0, |c| c.count_at(model, now)))
    }

    /// Iterates populated cells.
    pub fn iter(&self) -> impl Iterator<Item = (CellKey, &Bcs)> {
        self.cells.iter().map(|(&k, v)| (k, v))
    }

    /// Whether a prune at `now` against `floor` could evict anything.
    /// Every cell carries weight ≥ 1 at its own `last_tick` (each touch
    /// adds exactly 1 after decaying), so its decayed count at `now` is at
    /// least `δ^(now − last_tick) ≥ δ^(now − min_last_tick)`. When even
    /// that lower bound clears the floor, a scan would evict nothing —
    /// and a scan that evicts nothing mutates nothing, so skipping it is
    /// bit-identical.
    fn prune_can_evict(&self, model: &TimeModel, now: u64, floor: f64) -> bool {
        self.min_last_tick != u64::MAX
            && model.weight_after(now.saturating_sub(self.min_last_tick)) < floor
    }

    /// Removes cells whose decayed count at `now` fell below `floor`;
    /// returns how many were evicted. Stores entirely inside the eviction
    /// horizon (see [`BaseStore::prune_can_evict`]) skip the scan.
    pub fn prune(&mut self, model: &TimeModel, now: u64, floor: f64) -> usize {
        if !self.prune_can_evict(model, now, floor) {
            return 0;
        }
        let before = self.cells.len();
        let mut min_last = u64::MAX;
        self.cells.retain(|_, cell| {
            let live = cell.count_at(model, now) >= floor;
            if live {
                min_last = min_last.min(cell.last_tick());
            }
            live
        });
        self.min_last_tick = min_last;
        before - self.cells.len()
    }

    /// [`BaseStore::prune`] with decay factors served from a shared
    /// [`WeightCache`] — one indexed load per cell instead of one `powi`.
    /// Eviction decisions are bit-identical to the uncached path (the
    /// cache memoizes the exact `weight_after` results).
    pub fn prune_cached(
        &mut self,
        model: &TimeModel,
        weights: &WeightCache,
        now: u64,
        floor: f64,
    ) -> usize {
        if !self.prune_can_evict(model, now, floor) {
            return 0;
        }
        let before = self.cells.len();
        let mut min_last = u64::MAX;
        self.cells.retain(|_, cell| {
            let live = cell.count() * weights.decay_between(model, cell.last_tick(), now) >= floor;
            if live {
                min_last = min_last.min(cell.last_tick());
            }
            live
        });
        self.min_last_tick = min_last;
        before - self.cells.len()
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        let cells: usize = self
            .cells
            .values()
            .map(|v| std::mem::size_of::<CellKey>() + v.approx_bytes())
            .sum();
        std::mem::size_of::<Self>() + cells
    }
}

impl DurableState for BaseStore {
    /// Columns sorted by cell key, so the same logical state always
    /// captures to the same bytes regardless of hash-map history. One
    /// sorted pass over the map — this runs while the detector lock is
    /// held, so no per-column re-probing.
    fn capture(&self, w: &mut StateWriter) {
        let mut cells: Vec<(CellKey, &Bcs)> = self.cells.iter().map(|(&k, v)| (k, v)).collect();
        cells.sort_unstable_by_key(|(k, _)| *k);
        let dims = cells.first().map_or(0, |(_, c)| c.dims());
        w.u64("dims", dims as u64);
        w.u128_col("keys", cells.iter().map(|(k, _)| k.0));
        w.f64_bits_col("d", cells.iter().map(|(_, c)| c.count()));
        w.u64_col("last", cells.iter().map(|(_, c)| c.last_tick()));
        // Gathered with explicit capacity: a flat_map has no usable size
        // hint, and these two columns are the largest allocations a
        // capture makes — realloc-doubling them would dominate the time
        // the detector lock is held.
        let mut ls = Vec::with_capacity(cells.len() * dims);
        let mut ss = Vec::with_capacity(cells.len() * dims);
        for (_, c) in &cells {
            let (l, s) = c.moments();
            ls.extend_from_slice(l);
            ss.extend_from_slice(s);
        }
        w.f64_bits_col("ls", ls);
        w.f64_bits_col("ss", ss);
    }

    fn restore(&mut self, r: &StateReader<'_>) -> std::result::Result<(), PersistError> {
        let dims = r.u64("dims")? as usize;
        let keys = r.u128_col("keys")?;
        let d = r.f64_bits_col("d")?;
        let last = r.u64_col("last")?;
        let ls = r.f64_bits_col("ls")?;
        let ss = r.f64_bits_col("ss")?;
        let n = keys.len();
        if d.len() != n || last.len() != n || ls.len() != n * dims || ss.len() != n * dims {
            return Err(PersistError::custom(format!(
                "base store columns disagree: {n} keys, {} d, {} last, {} ls, {} ss ({dims} dims)",
                d.len(),
                last.len(),
                ls.len(),
                ss.len()
            )));
        }
        self.cells.clear();
        self.cells.reserve(n);
        self.min_last_tick = last.iter().copied().min().unwrap_or(u64::MAX);
        for i in 0..n {
            let cell = Bcs::from_parts(
                d[i],
                ls[i * dims..(i + 1) * dims].to_vec(),
                ss[i * dims..(i + 1) * dims].to_vec(),
                last[i],
            );
            if self.cells.insert(CellKey(keys[i]), cell).is_some() {
                return Err(PersistError::custom(format!(
                    "duplicate base cell key at column {i}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spot_types::DomainBounds;

    fn setup() -> (Grid, TimeModel) {
        (
            Grid::new(DomainBounds::unit(2), 4).unwrap(),
            TimeModel::new(50, 0.01).unwrap(),
        )
    }

    #[test]
    fn horizon_screen_skips_only_no_op_prunes() {
        // TimeModel(50, 0.01): weight_after(age) = 0.01^(age/50), so a
        // lone point falls below floor=1e-3 once 0.01^(age/50) < 1e-3,
        // i.e. strictly after age 75.
        let (grid, tm) = setup();
        let mut store = BaseStore::new();
        let p = DataPoint::new(vec![0.1, 0.1]);
        store.insert(&grid, &tm, 10, &p).unwrap();
        // Inside the horizon: the screen must report nothing evictable and
        // the cell must survive untouched.
        assert_eq!(store.prune(&tm, 40, 1e-3), 0);
        assert_eq!(store.len(), 1);
        // Past the horizon the scan runs and evicts.
        assert_eq!(store.prune(&tm, 200, 1e-3), 1);
        assert_eq!(store.len(), 0);
        // Empty store: screened out without touching the model.
        assert_eq!(store.prune(&tm, 300, 1e-3), 0);
    }

    #[test]
    fn horizon_tightens_after_partial_prune() {
        let (grid, tm) = setup();
        let mut store = BaseStore::new();
        // Old lone cell (evictable at now=100) and a fresh heavy cell.
        store
            .insert(&grid, &tm, 0, &DataPoint::new(vec![0.1, 0.1]))
            .unwrap();
        for _ in 0..5 {
            store
                .insert(&grid, &tm, 90, &DataPoint::new(vec![0.9, 0.9]))
                .unwrap();
        }
        assert_eq!(store.prune(&tm, 100, 1e-3), 1);
        assert_eq!(store.len(), 1);
        // The horizon now reflects the survivor (last_tick 90), so an
        // immediate re-prune is screened out as a no-op, and a later one
        // still evicts the survivor once it actually decays below floor.
        assert_eq!(store.prune(&tm, 100, 1e-3), 0);
        assert_eq!(store.prune(&tm, 400, 1e-3), 1);
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn insert_reports_prior_count() {
        let (grid, tm) = setup();
        let mut store = BaseStore::new();
        let p = DataPoint::new(vec![0.1, 0.1]);
        let (_, prior) = store.insert(&grid, &tm, 0, &p).unwrap();
        assert_eq!(prior, 0.0);
        let (_, prior) = store.insert(&grid, &tm, 0, &p).unwrap();
        assert!((prior - 1.0).abs() < 1e-12);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn returned_key_addresses_the_stored_cell() {
        // Regression guard for the seed's `coords.clone()` entry: the key
        // handed back by insert must be exactly the key under which the
        // summary is stored, for fresh and for existing cells alike.
        let (grid, tm) = setup();
        let mut store = BaseStore::new();
        let p = DataPoint::new(vec![0.3, 0.8]);
        let (k1, _) = store.insert(&grid, &tm, 0, &p).unwrap();
        let cell = store.get(k1).expect("fresh key resolves");
        assert!((cell.count() - 1.0).abs() < 1e-12);
        let (k2, _) = store.insert(&grid, &tm, 1, &p).unwrap();
        assert_eq!(k1, k2, "same cell must yield the same key");
        // And it matches the grid's own quantization of the point.
        let coords = grid.base_coords(&p).unwrap();
        assert_eq!(grid.base_key(&coords), k1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn distinct_cells_tracked_separately() {
        let (grid, tm) = setup();
        let mut store = BaseStore::new();
        store
            .insert(&grid, &tm, 0, &DataPoint::new(vec![0.1, 0.1]))
            .unwrap();
        store
            .insert(&grid, &tm, 0, &DataPoint::new(vec![0.9, 0.9]))
            .unwrap();
        assert_eq!(store.len(), 2);
        let c = store
            .count_for(&grid, &tm, 0, &DataPoint::new(vec![0.12, 0.13]))
            .unwrap();
        assert!((c - 1.0).abs() < 1e-12); // same cell as (0.1, 0.1) at m=4
        let c = store
            .count_for(&grid, &tm, 0, &DataPoint::new(vec![0.6, 0.6]))
            .unwrap();
        assert_eq!(c, 0.0);
    }

    #[test]
    fn dimension_mismatch_propagates() {
        let (grid, tm) = setup();
        let mut store = BaseStore::new();
        assert!(store
            .insert(&grid, &tm, 0, &DataPoint::new(vec![0.5]))
            .is_err());
    }

    #[test]
    fn nan_rejected() {
        let (grid, tm) = setup();
        let mut store = BaseStore::new();
        let err = store
            .insert(&grid, &tm, 0, &DataPoint::new(vec![0.5, f64::NAN]))
            .unwrap_err();
        assert!(matches!(
            err,
            spot_types::SpotError::NonFiniteValue { dim: 1 }
        ));
        assert!(store.is_empty());
    }

    #[test]
    fn prune_bounds_memory() {
        let (grid, tm) = setup();
        let mut store = BaseStore::new();
        // Populate 16 distinct cells at tick 0.
        for i in 0..4 {
            for j in 0..4 {
                let p = DataPoint::new(vec![i as f64 / 4.0 + 0.01, j as f64 / 4.0 + 0.01]);
                store.insert(&grid, &tm, 0, &p).unwrap();
            }
        }
        assert_eq!(store.len(), 16);
        // Refresh one cell much later; prune everything stale.
        let p = DataPoint::new(vec![0.01, 0.01]);
        store.insert(&grid, &tm, 5000, &p).unwrap();
        let evicted = store.prune(&tm, 5000, 1e-3);
        assert_eq!(evicted, 15);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn tabled_insert_matches_model_insert_bitwise() {
        let (grid, tm) = setup();
        let mut table = DecayTable::new();
        let mut a = BaseStore::new();
        let mut b = BaseStore::new();
        let pts: Vec<DataPoint> = (0..40)
            .map(|i| DataPoint::new(vec![(i % 5) as f64 / 5.0, (i % 3) as f64 / 3.0]))
            .collect();
        // Two runs with a gap, so the table path exercises both the in-run
        // lookup and the pre-run powi fallback.
        for (start, run) in [(1u64, &pts[..25]), (60, &pts[25..])] {
            table.fill(&tm, start, run.len());
            for (i, p) in run.iter().enumerate() {
                let now = start + i as u64;
                let coords = grid.base_coords(p).unwrap();
                let key = grid.base_key(&coords);
                let pa = a.insert_at(key, grid.dims(), &tm, now, p);
                let pb = b.insert_at_run(key, grid.dims(), &tm, &table, now, p);
                assert_eq!(pa.to_bits(), pb.to_bits(), "prior at point {i}");
            }
        }
        assert_eq!(a.len(), b.len());
        for (key, cell) in a.iter() {
            let other = b.get(key).unwrap();
            assert_eq!(cell.count().to_bits(), other.count().to_bits());
            assert_eq!(cell.last_tick(), other.last_tick());
        }
    }

    #[test]
    fn cell_bytes_matches_swept_footprint() {
        let (grid, tm) = setup();
        let mut store = BaseStore::new();
        for i in 0..7 {
            let p = DataPoint::new(vec![(i as f64 + 0.5) / 8.0, 0.5]);
            store.insert(&grid, &tm, 0, &p).unwrap();
        }
        assert_eq!(
            store.approx_bytes(),
            std::mem::size_of::<BaseStore>() + store.len() * BaseStore::cell_bytes(2)
        );
    }

    #[test]
    fn bytes_accounting_grows_with_cells() {
        let (grid, tm) = setup();
        let mut store = BaseStore::new();
        let empty = store.approx_bytes();
        for i in 0..8 {
            let p = DataPoint::new(vec![(i as f64 + 0.5) / 8.0, 0.5]);
            store.insert(&grid, &tm, 0, &p).unwrap();
        }
        assert!(store.approx_bytes() > empty);
    }
}
