//! Lead (leader) clustering and outlying-degree scoring.
//!
//! SPOT's unsupervised learning stage clusters the training data with the
//! single-pass *lead clustering* method "under different data orders" and
//! derives an **overall outlying degree** per training point; the top
//! points are treated as outlier candidates whose MOGA-found sparse
//! subspaces become the Clustering-based SST Subspaces (CS).

pub mod leader;
pub mod od;

pub use leader::{Clustering, LeaderClustering};
pub use od::{outlying_degrees, top_outlying_indices, OdConfig};
