//! Overall outlying degree of training points.
//!
//! Leader clustering is order-sensitive, so SPOT runs it "under different
//! data order[s]" and aggregates. The outlying degree of a point blends two
//! signals, averaged over the shuffled runs:
//!
//! * **membership** — points in small clusters are more outlying
//!   (`1 − |C(p)| / max_cluster_size`);
//! * **eccentricity** — points far from their leader are more outlying
//!   (`dist(p, leader) / τ`, which is ≤ 1 by the clustering invariant).
//!
//! `od = α·membership + (1−α)·eccentricity ∈ [0, 1]`.

use crate::leader::LeaderClustering;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use spot_types::{DataPoint, Result, SpotError};

/// Configuration of the outlying-degree computation.
#[derive(Debug, Clone, Copy)]
pub struct OdConfig {
    /// Leader-clustering distance threshold τ.
    pub tau: f64,
    /// Number of shuffled clustering runs.
    pub runs: usize,
    /// Weight of the membership signal (the rest goes to eccentricity).
    pub alpha: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for OdConfig {
    fn default() -> Self {
        OdConfig {
            tau: 1.0,
            runs: 5,
            alpha: 0.7,
            seed: 17,
        }
    }
}

impl OdConfig {
    fn validate(&self) -> Result<()> {
        if self.runs == 0 {
            return Err(SpotError::InvalidConfig(
                "need at least one clustering run".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(SpotError::InvalidConfig("alpha must lie in [0,1]".into()));
        }
        Ok(())
    }
}

/// Outlying degree of every point, averaged over `config.runs` shuffled
/// leader-clustering passes. Values lie in `[0, 1]`.
pub fn outlying_degrees(points: &[DataPoint], config: &OdConfig) -> Result<Vec<f64>> {
    config.validate()?;
    if points.is_empty() {
        return Ok(Vec::new());
    }
    let method = LeaderClustering::new(config.tau)?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut acc = vec![0.0f64; points.len()];
    let mut order: Vec<usize> = (0..points.len()).collect();
    for run in 0..config.runs {
        if run > 0 {
            order.shuffle(&mut rng);
        }
        let clustering = method.run_with_order(points, &order);
        let max_size = clustering.max_size().max(1) as f64;
        for (i, p) in points.iter().enumerate() {
            let c = clustering.assignment[i];
            let membership = 1.0 - clustering.sizes[c] as f64 / max_size;
            let ecc = (p.distance(&clustering.leaders[c]) / config.tau).min(1.0);
            acc[i] += config.alpha * membership + (1.0 - config.alpha) * ecc;
        }
    }
    for v in &mut acc {
        *v /= config.runs as f64;
    }
    Ok(acc)
}

/// Indices of the `k` points with the highest outlying degree, descending.
pub fn top_outlying_indices(degrees: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..degrees.len()).collect();
    idx.sort_by(|&a, &b| {
        degrees[b]
            .partial_cmp(&degrees[a])
            .expect("outlying degrees are not NaN")
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn blob_with_stragglers() -> Vec<DataPoint> {
        let mut pts: Vec<DataPoint> = Vec::new();
        // Dense blob of 30 points near the origin.
        for i in 0..30 {
            let a = i as f64 * 0.01;
            pts.push(DataPoint::new(vec![a, -a]));
        }
        // Two far-away stragglers.
        pts.push(DataPoint::new(vec![8.0, 8.0]));
        pts.push(DataPoint::new(vec![-9.0, 7.5]));
        pts
    }

    #[test]
    fn stragglers_rank_highest() {
        let pts = blob_with_stragglers();
        let od = outlying_degrees(
            &pts,
            &OdConfig {
                tau: 1.0,
                ..Default::default()
            },
        )
        .unwrap();
        let top = top_outlying_indices(&od, 2);
        let mut got = top.clone();
        got.sort_unstable();
        assert_eq!(got, vec![30, 31], "od={od:?}");
        // Core points score clearly lower.
        assert!(od[0] < od[30]);
    }

    #[test]
    fn degrees_bounded_in_unit_interval() {
        let pts = blob_with_stragglers();
        let od = outlying_degrees(&pts, &OdConfig::default()).unwrap();
        assert!(od.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn empty_and_validation() {
        assert!(outlying_degrees(&[], &OdConfig::default())
            .unwrap()
            .is_empty());
        let pts = vec![DataPoint::new(vec![0.0])];
        assert!(outlying_degrees(
            &pts,
            &OdConfig {
                runs: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(outlying_degrees(
            &pts,
            &OdConfig {
                alpha: 1.5,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let pts = blob_with_stragglers();
        let cfg = OdConfig {
            seed: 99,
            ..Default::default()
        };
        assert_eq!(
            outlying_degrees(&pts, &cfg).unwrap(),
            outlying_degrees(&pts, &cfg).unwrap()
        );
    }

    #[test]
    fn top_indices_truncation_and_order() {
        let degrees = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_outlying_indices(&degrees, 2), vec![1, 3]);
        assert_eq!(top_outlying_indices(&degrees, 10).len(), 4);
        assert!(top_outlying_indices(&[], 3).is_empty());
    }

    proptest! {
        #[test]
        fn degrees_always_bounded(
            vals in proptest::collection::vec(
                proptest::collection::vec(-5.0f64..5.0, 2), 1..30
            ),
            tau in 0.2f64..5.0,
            runs in 1usize..5,
        ) {
            let pts: Vec<DataPoint> = vals.into_iter().map(DataPoint::new).collect();
            let cfg = OdConfig { tau, runs, ..Default::default() };
            let od = outlying_degrees(&pts, &cfg).unwrap();
            prop_assert_eq!(od.len(), pts.len());
            prop_assert!(od.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }
}
