//! Single-pass leader clustering.

use spot_types::{DataPoint, Result, SpotError};

/// Result of one leader-clustering pass.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Leader point of each cluster, in creation order.
    pub leaders: Vec<DataPoint>,
    /// Cluster index of each input point (parallel to the input order the
    /// pass consumed, *not* the shuffled order).
    pub assignment: Vec<usize>,
    /// Number of members per cluster.
    pub sizes: Vec<usize>,
}

impl Clustering {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.leaders.len()
    }

    /// Size of the largest cluster (0 when empty).
    pub fn max_size(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }
}

/// The lead clustering method: the first point founds a cluster and becomes
/// its *leader*; every subsequent point joins the nearest leader within
/// distance `tau`, or founds a new cluster. One pass, O(n·k) — suitable for
/// the training batches of the learning stage.
#[derive(Debug, Clone, Copy)]
pub struct LeaderClustering {
    tau: f64,
}

impl LeaderClustering {
    /// Creates the method with distance threshold `tau` (> 0).
    pub fn new(tau: f64) -> Result<Self> {
        if tau <= 0.0 || tau.is_nan() || !tau.is_finite() {
            return Err(SpotError::InvalidConfig(format!(
                "tau must be positive, got {tau}"
            )));
        }
        Ok(LeaderClustering { tau })
    }

    /// Distance threshold.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Clusters `points` visiting them in the order given by `order`
    /// (indices into `points`). `assignment[i]` refers to `points[i]`
    /// regardless of the visiting order.
    pub fn run_with_order(&self, points: &[DataPoint], order: &[usize]) -> Clustering {
        debug_assert_eq!(points.len(), order.len());
        let tau2 = self.tau * self.tau;
        let mut leaders: Vec<DataPoint> = Vec::new();
        let mut sizes: Vec<usize> = Vec::new();
        let mut assignment = vec![usize::MAX; points.len()];
        for &idx in order {
            let p = &points[idx];
            let mut best: Option<(usize, f64)> = None;
            for (c, leader) in leaders.iter().enumerate() {
                let d2 = p.sq_distance(leader);
                if d2 <= tau2 && best.is_none_or(|(_, bd)| d2 < bd) {
                    best = Some((c, d2));
                }
            }
            match best {
                Some((c, _)) => {
                    assignment[idx] = c;
                    sizes[c] += 1;
                }
                None => {
                    leaders.push(p.clone());
                    sizes.push(1);
                    assignment[idx] = leaders.len() - 1;
                }
            }
        }
        Clustering {
            leaders,
            assignment,
            sizes,
        }
    }

    /// Clusters `points` in their natural order.
    pub fn run(&self, points: &[DataPoint]) -> Clustering {
        let order: Vec<usize> = (0..points.len()).collect();
        self.run_with_order(points, &order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(v: &[f64]) -> DataPoint {
        DataPoint::new(v.to_vec())
    }

    #[test]
    fn two_well_separated_blobs() {
        let pts = vec![
            p(&[0.0, 0.0]),
            p(&[0.1, 0.0]),
            p(&[0.0, 0.1]),
            p(&[5.0, 5.0]),
            p(&[5.1, 5.0]),
        ];
        let c = LeaderClustering::new(1.0).unwrap().run(&pts);
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.sizes, vec![3, 2]);
        assert_eq!(c.assignment, vec![0, 0, 0, 1, 1]);
        assert_eq!(c.max_size(), 3);
    }

    #[test]
    fn tiny_tau_isolates_everything() {
        let pts = vec![p(&[0.0]), p(&[1.0]), p(&[2.0])];
        let c = LeaderClustering::new(1e-6).unwrap().run(&pts);
        assert_eq!(c.num_clusters(), 3);
    }

    #[test]
    fn huge_tau_merges_everything() {
        let pts = vec![p(&[0.0]), p(&[1.0]), p(&[2.0])];
        let c = LeaderClustering::new(100.0).unwrap().run(&pts);
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.sizes, vec![3]);
    }

    #[test]
    fn order_can_change_clustering() {
        // Chain 0 — 1 — 2 with tau = 1.5 and spacing 1: visiting 1 first
        // absorbs both ends into one cluster; visiting 0 first leaves 2 out
        // of reach of leader 0... actually 2 is at distance 2 from 0 but a
        // new leader at 2 forms. Either way the *leader sets* differ.
        let pts = vec![p(&[0.0]), p(&[1.0]), p(&[2.0])];
        let m = LeaderClustering::new(1.5).unwrap();
        let natural = m.run_with_order(&pts, &[0, 1, 2]);
        let middle_first = m.run_with_order(&pts, &[1, 0, 2]);
        assert_eq!(natural.num_clusters(), 2);
        assert_eq!(middle_first.num_clusters(), 1);
    }

    #[test]
    fn empty_input() {
        let c = LeaderClustering::new(1.0).unwrap().run(&[]);
        assert_eq!(c.num_clusters(), 0);
        assert_eq!(c.max_size(), 0);
    }

    #[test]
    fn invalid_tau_rejected() {
        assert!(LeaderClustering::new(0.0).is_err());
        assert!(LeaderClustering::new(-1.0).is_err());
        assert!(LeaderClustering::new(f64::NAN).is_err());
        assert!(LeaderClustering::new(f64::INFINITY).is_err());
    }

    proptest! {
        #[test]
        fn members_within_tau_of_their_leader(
            vals in proptest::collection::vec(
                proptest::collection::vec(-10.0f64..10.0, 2), 1..40
            ),
            tau in 0.1f64..20.0,
        ) {
            let pts: Vec<DataPoint> = vals.into_iter().map(DataPoint::new).collect();
            let c = LeaderClustering::new(tau).unwrap().run(&pts);
            for (i, pnt) in pts.iter().enumerate() {
                let leader = &c.leaders[c.assignment[i]];
                prop_assert!(pnt.distance(leader) <= tau * (1.0 + 1e-9));
            }
            // Sizes are consistent with assignments.
            let mut counted = vec![0usize; c.num_clusters()];
            for &a in &c.assignment { counted[a] += 1; }
            prop_assert_eq!(counted, c.sizes.clone());
            prop_assert_eq!(c.sizes.iter().sum::<usize>(), pts.len());
        }
    }
}
