//! Attribute domain bounds used by the equi-width grid partition.

use crate::error::{Result, SpotError};
use crate::point::DataPoint;
use serde::{Deserialize, Serialize};

/// Per-dimension `[min, max]` bounds of the attribute domain.
///
/// The equi-width partition behind BCS/PCS (see `spot-synopsis`) quantizes
/// each dimension of this box into `m` intervals. Points outside the box are
/// clamped to the boundary cells, matching the behaviour of a deployed
/// system whose training sample did not cover the full range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainBounds {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl DomainBounds {
    /// Creates bounds from explicit per-dimension minima and maxima.
    ///
    /// Degenerate dimensions (`min == max`) are widened by a small margin so
    /// the grid always has positive cell widths.
    pub fn new(mins: Vec<f64>, maxs: Vec<f64>) -> Result<Self> {
        if mins.len() != maxs.len() {
            return Err(SpotError::DimensionMismatch {
                expected: mins.len(),
                got: maxs.len(),
            });
        }
        if mins.is_empty() {
            return Err(SpotError::InvalidConfig(
                "bounds must cover at least one dimension".into(),
            ));
        }
        let mut mins = mins;
        let mut maxs = maxs;
        for (lo, hi) in mins.iter_mut().zip(maxs.iter_mut()) {
            if !lo.is_finite() || !hi.is_finite() {
                return Err(SpotError::InvalidConfig("bounds must be finite".into()));
            }
            if *lo > *hi {
                return Err(SpotError::InvalidConfig(format!(
                    "min {lo} exceeds max {hi}"
                )));
            }
            if *lo == *hi {
                // Widen degenerate dimensions so equi-width cells are well defined.
                let eps = lo.abs().max(1.0) * 1e-9;
                *lo -= eps;
                *hi += eps;
            }
        }
        Ok(DomainBounds { mins, maxs })
    }

    /// Uniform `[lo, hi]` bounds replicated over `dims` dimensions.
    pub fn uniform(dims: usize, lo: f64, hi: f64) -> Result<Self> {
        DomainBounds::new(vec![lo; dims], vec![hi; dims])
    }

    /// The unit box `[0, 1]^dims` — the default domain of the synthetic
    /// generators.
    pub fn unit(dims: usize) -> Self {
        DomainBounds::uniform(dims, 0.0, 1.0).expect("unit bounds are always valid")
    }

    /// Infers bounds from a batch of points, expanding each dimension by
    /// `margin_fraction` of its observed range on both sides (so streaming
    /// points slightly outside the training range still fall into interior
    /// cells).
    pub fn from_data(points: &[DataPoint], margin_fraction: f64) -> Result<Self> {
        let first = points.first().ok_or(SpotError::EmptyTrainingSet)?;
        let dims = first.dims();
        let mut mins = vec![f64::INFINITY; dims];
        let mut maxs = vec![f64::NEG_INFINITY; dims];
        for p in points {
            if p.dims() != dims {
                return Err(SpotError::DimensionMismatch {
                    expected: dims,
                    got: p.dims(),
                });
            }
            for (d, &v) in p.values().iter().enumerate() {
                if v < mins[d] {
                    mins[d] = v;
                }
                if v > maxs[d] {
                    maxs[d] = v;
                }
            }
        }
        for d in 0..dims {
            let range = maxs[d] - mins[d];
            let margin = range * margin_fraction;
            mins[d] -= margin;
            maxs[d] += margin;
        }
        DomainBounds::new(mins, maxs)
    }

    /// Dimensionality covered by the bounds.
    pub fn dims(&self) -> usize {
        self.mins.len()
    }

    /// Minimum of dimension `d`.
    pub fn min(&self, d: usize) -> f64 {
        self.mins[d]
    }

    /// Maximum of dimension `d`.
    pub fn max(&self, d: usize) -> f64 {
        self.maxs[d]
    }

    /// Width (`max − min`) of dimension `d`; always positive.
    pub fn width(&self, d: usize) -> f64 {
        self.maxs[d] - self.mins[d]
    }

    /// All minima.
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// All maxima.
    pub fn maxs(&self) -> &[f64] {
        &self.maxs
    }

    /// `true` when the point lies inside the box (boundaries inclusive).
    pub fn contains(&self, p: &DataPoint) -> bool {
        p.dims() == self.dims()
            && p.values()
                .iter()
                .enumerate()
                .all(|(d, &v)| v >= self.mins[d] && v <= self.maxs[d])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_and_unit() {
        let b = DomainBounds::uniform(3, -1.0, 2.0).unwrap();
        assert_eq!(b.dims(), 3);
        assert!((b.width(0) - 3.0).abs() < 1e-12);
        let u = DomainBounds::unit(4);
        assert!((u.min(2) - 0.0).abs() < 1e-12);
        assert!((u.max(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_mismatched_and_inverted() {
        assert!(DomainBounds::new(vec![0.0], vec![1.0, 2.0]).is_err());
        assert!(DomainBounds::new(vec![2.0], vec![1.0]).is_err());
        assert!(DomainBounds::new(vec![], vec![]).is_err());
        assert!(DomainBounds::new(vec![f64::NAN], vec![1.0]).is_err());
    }

    #[test]
    fn degenerate_dimension_is_widened() {
        let b = DomainBounds::new(vec![5.0], vec![5.0]).unwrap();
        assert!(b.width(0) > 0.0);
        assert!(b.min(0) < 5.0 && b.max(0) > 5.0);
    }

    #[test]
    fn from_data_covers_all_points() {
        let pts: Vec<DataPoint> = vec![
            vec![0.0, 10.0].into(),
            vec![5.0, -10.0].into(),
            vec![2.5, 0.0].into(),
        ];
        let b = DomainBounds::from_data(&pts, 0.05).unwrap();
        for p in &pts {
            assert!(b.contains(p));
        }
        // Margins strictly widen the box.
        assert!(b.min(0) < 0.0);
        assert!(b.max(1) > 10.0);
    }

    #[test]
    fn from_data_empty_fails() {
        assert!(DomainBounds::from_data(&[], 0.1).is_err());
    }

    #[test]
    fn contains_checks_dims() {
        let b = DomainBounds::unit(2);
        assert!(!b.contains(&vec![0.5].into()));
        assert!(b.contains(&vec![0.0, 1.0].into()));
        assert!(!b.contains(&vec![0.5, 1.1].into()));
    }
}
