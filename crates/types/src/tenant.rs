//! Tenant identity for multi-detector deployments.
//!
//! The fleet runtime (`spot-runtime`) multiplexes many independently
//! configured detectors — one per tenant/sensor/model — over one shared
//! executor. [`TenantId`] is the registry key: a small, validated,
//! cheaply-cloneable name that survives checkpoints (it is serialized into
//! fleet checkpoints as a plain string).

use crate::error::{Result, SpotError};
use std::fmt;
use std::sync::Arc;

/// Maximum length of a tenant id, in bytes. Generous for any reasonable
/// naming scheme while keeping checkpoint headers and error messages sane.
pub const MAX_TENANT_ID_LEN: usize = 256;

/// A validated tenant name: non-empty, at most [`MAX_TENANT_ID_LEN`] bytes,
/// no control characters (ids appear verbatim in logs, error messages and
/// JSON checkpoints).
///
/// Backed by an `Arc<str>`, so clones are pointer bumps — the id is cloned
/// on every registry operation and into every error it decorates.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(Arc<str>);

impl TenantId {
    /// Validates and interns a tenant name.
    pub fn new(name: impl AsRef<str>) -> Result<Self> {
        let name = name.as_ref();
        if name.is_empty() {
            return Err(SpotError::InvalidConfig(
                "tenant id must not be empty".to_string(),
            ));
        }
        if name.len() > MAX_TENANT_ID_LEN {
            return Err(SpotError::InvalidConfig(format!(
                "tenant id exceeds {MAX_TENANT_ID_LEN} bytes ({} given)",
                name.len()
            )));
        }
        if name.chars().any(char::is_control) {
            return Err(SpotError::InvalidConfig(format!(
                "tenant id {name:?} contains control characters"
            )));
        }
        Ok(TenantId(Arc::from(name)))
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for TenantId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl TryFrom<&str> for TenantId {
    type Error = SpotError;

    fn try_from(name: &str) -> Result<Self> {
        TenantId::new(name)
    }
}

impl TryFrom<String> for TenantId {
    type Error = SpotError;

    fn try_from(name: String) -> Result<Self> {
        TenantId::new(&name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_ids_roundtrip() {
        let id = TenantId::new("sensor-7/zone_3").unwrap();
        assert_eq!(id.as_str(), "sensor-7/zone_3");
        assert_eq!(id.to_string(), "sensor-7/zone_3");
        assert_eq!(id, TenantId::try_from("sensor-7/zone_3").unwrap());
        // Clones are cheap and equal.
        let c = id.clone();
        assert_eq!(c, id);
    }

    #[test]
    fn invalid_ids_rejected() {
        assert!(TenantId::new("").is_err());
        assert!(TenantId::new("a\nb").is_err());
        assert!(TenantId::new("\u{7}bell").is_err());
        assert!(TenantId::new("x".repeat(MAX_TENANT_ID_LEN)).is_ok());
        assert!(TenantId::new("x".repeat(MAX_TENANT_ID_LEN + 1)).is_err());
    }

    #[test]
    fn ids_order_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(TenantId::new("a").unwrap());
        set.insert(TenantId::new("b").unwrap());
        set.insert(TenantId::new("a").unwrap());
        assert_eq!(set.len(), 2);
        assert!(TenantId::new("a").unwrap() < TenantId::new("b").unwrap());
    }
}
