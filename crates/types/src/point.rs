//! Points and stream records.

use crate::label::Label;
use serde::{Deserialize, Serialize};

/// A ϕ-dimensional data point `p = (p_1, …, p_ϕ)`.
///
/// SPOT treats every attribute as continuous; categorical attributes are
/// expected to be encoded numerically upstream (the KDD-like generator in
/// `spot-data` does exactly that).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataPoint {
    values: Vec<f64>,
}

impl DataPoint {
    /// Creates a point from its attribute values.
    pub fn new(values: Vec<f64>) -> Self {
        DataPoint { values }
    }

    /// Dimensionality ϕ of the point.
    pub fn dims(&self) -> usize {
        self.values.len()
    }

    /// Attribute values as a slice.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value of attribute `dim` (panics when out of range).
    pub fn value(&self, dim: usize) -> f64 {
        self.values[dim]
    }

    /// Squared Euclidean distance to another point of equal dimensionality.
    pub fn sq_distance(&self, other: &DataPoint) -> f64 {
        debug_assert_eq!(self.dims(), other.dims());
        self.values
            .iter()
            .zip(other.values.iter())
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &DataPoint) -> f64 {
        self.sq_distance(other).sqrt()
    }

    /// Squared Euclidean distance restricted to the given dimensions.
    pub fn sq_distance_in(&self, other: &DataPoint, dims: impl IntoIterator<Item = usize>) -> f64 {
        dims.into_iter()
            .map(|d| {
                let diff = self.values[d] - other.values[d];
                diff * diff
            })
            .sum()
    }

    /// Consumes the point, returning its values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }
}

impl From<Vec<f64>> for DataPoint {
    fn from(values: Vec<f64>) -> Self {
        DataPoint::new(values)
    }
}

impl From<&[f64]> for DataPoint {
    fn from(values: &[f64]) -> Self {
        DataPoint::new(values.to_vec())
    }
}

impl std::ops::Index<usize> for DataPoint {
    type Output = f64;

    fn index(&self, idx: usize) -> &f64 {
        &self.values[idx]
    }
}

/// A point together with its arrival position in the stream.
///
/// `seq` doubles as the logical timestamp under SPOT's default
/// one-tick-per-point clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamRecord {
    /// Arrival sequence number (0-based).
    pub seq: u64,
    /// The point itself.
    pub point: DataPoint,
}

impl StreamRecord {
    /// Creates a record.
    pub fn new(seq: u64, point: DataPoint) -> Self {
        StreamRecord { seq, point }
    }
}

/// A stream record carrying ground truth, produced by the generators in
/// `spot-data` and consumed by the evaluation harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledRecord {
    /// Arrival sequence number (0-based).
    pub seq: u64,
    /// The point itself.
    pub point: DataPoint,
    /// Ground-truth label.
    pub label: Label,
}

impl LabeledRecord {
    /// Creates a labeled record.
    pub fn new(seq: u64, point: DataPoint, label: Label) -> Self {
        LabeledRecord { seq, point, label }
    }

    /// `true` when the ground truth marks this record anomalous.
    pub fn is_anomaly(&self) -> bool {
        self.label.is_anomaly()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: &[f64]) -> DataPoint {
        DataPoint::from(v)
    }

    #[test]
    fn distance_basics() {
        let a = p(&[0.0, 0.0, 0.0]);
        let b = p(&[3.0, 4.0, 0.0]);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.sq_distance(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn distance_in_subset_of_dims() {
        let a = p(&[0.0, 10.0, 0.0]);
        let b = p(&[3.0, -10.0, 4.0]);
        let d = a.sq_distance_in(&b, [0usize, 2]);
        assert!((d - 25.0).abs() < 1e-12);
    }

    #[test]
    fn indexing_and_accessors() {
        let a = p(&[1.5, 2.5]);
        assert_eq!(a.dims(), 2);
        assert!((a[1] - 2.5).abs() < 1e-12);
        assert!((a.value(0) - 1.5).abs() < 1e-12);
        assert_eq!(a.clone().into_values(), vec![1.5, 2.5]);
    }

    #[test]
    fn zero_distance_to_self() {
        let a = p(&[1.0, -2.0, 3.5]);
        assert_eq!(a.sq_distance(&a), 0.0);
    }

    #[test]
    fn labeled_record_anomaly_flag() {
        let r = LabeledRecord::new(7, p(&[1.0]), Label::Normal);
        assert!(!r.is_anomaly());
    }
}
