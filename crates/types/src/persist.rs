//! Capture/restore substrate for durable engine state ("snapshot v2").
//!
//! Every stateful layer of the detector — decayed counters, cell stores,
//! the drift test, the reservoir, the clock — owns its own serialization by
//! implementing [`DurableState`] (or an inherent `capture_state` /
//! `restore_state` pair when extra context such as a grid is needed). The
//! top-level snapshot composes the layers' value trees instead of reaching
//! into their internals.
//!
//! # Bit-exactness
//!
//! Warm restarts must reproduce the *exact* runtime state: a restored
//! detector has to emit bit-identical verdicts to one that never stopped.
//! Floating-point state is therefore encoded as raw IEEE-754 bit patterns
//! (`u64`), never as decimal text — that round-trips every value including
//! `±0.0`, subnormals and infinities through any textual carrier. Wide
//! [`u128`] cell keys are split into two `u64` lanes for the same reason.
//!
//! Columns (the natural shape of the SoA synopsis stores) are written as
//! flat arrays, one field per column — the "compact column-oriented
//! encoding" of the v2 snapshot format. See `docs/persistence.md` for the
//! full format layout and versioning policy.

use crate::error::SpotError;
use serde::Value;

/// FNV-1a 64-bit hash — the persistence layer's integrity checksum.
///
/// Checkpoint envelopes embed the hash of their payload so that on-disk
/// corruption (a flipped bit in a stored bit pattern, a truncated column)
/// is detected at load time as a typed error instead of silently
/// restoring a wrong value. FNV-1a is not cryptographic; it guards
/// against storage faults, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Little-endian binary lanes — the persistence layer's byte-level
/// encoding discipline, shared by the ingestion WAL's record frames.
///
/// The JSON checkpoint carrier stores floats as `u64` bit patterns inside
/// a value tree; binary carriers (the WAL, and the planned binary column
/// carrier) store the *same lanes* as fixed-width little-endian fields.
/// Both directions are total: every bit pattern round-trips, including
/// `±0.0`, subnormals and infinities.
pub mod lanes {
    /// Appends a `u32` as 4 little-endian bytes.
    pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` as 8 little-endian bytes.
    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (8 LE bytes, exact).
    pub fn put_f64_bits(buf: &mut Vec<u8>, v: f64) {
        put_u64(buf, v.to_bits());
    }

    /// Reads the `u32` lane at byte offset `at`, or `None` when the slice
    /// ends before the lane does.
    pub fn get_u32(bytes: &[u8], at: usize) -> Option<u32> {
        let lane = bytes.get(at..at.checked_add(4)?)?;
        Some(u32::from_le_bytes(lane.try_into().expect("4-byte lane")))
    }

    /// Reads the `u64` lane at byte offset `at`.
    pub fn get_u64(bytes: &[u8], at: usize) -> Option<u64> {
        let lane = bytes.get(at..at.checked_add(8)?)?;
        Some(u64::from_le_bytes(lane.try_into().expect("8-byte lane")))
    }

    /// Reads the `f64` bit-pattern lane at byte offset `at` (exact).
    pub fn get_f64_bits(bytes: &[u8], at: usize) -> Option<f64> {
        get_u64(bytes, at).map(f64::from_bits)
    }
}

/// Restore failure: the snapshot's value tree does not describe a valid
/// state for the component (missing field, wrong shape, out-of-range
/// value). Converts into [`SpotError::SnapshotCorrupt`].
#[derive(Debug, Clone, PartialEq)]
pub struct PersistError(pub String);

impl PersistError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        PersistError(msg.into())
    }

    /// Adds field context to an error.
    pub fn in_field(self, field: &str) -> Self {
        PersistError(format!("{field}: {}", self.0))
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "state restore error: {}", self.0)
    }
}

impl std::error::Error for PersistError {}

impl From<PersistError> for SpotError {
    fn from(e: PersistError) -> Self {
        SpotError::SnapshotCorrupt(e.0)
    }
}

/// Capture/restore of a component's complete runtime state.
///
/// `capture` must write everything `restore` needs to rebuild the
/// component bit-exactly; `restore` must leave the component exactly as it
/// was at capture time (derived caches may be rebuilt).
pub trait DurableState {
    /// Writes the component's runtime state.
    fn capture(&self, w: &mut StateWriter);

    /// Rebuilds the component's runtime state from a captured tree.
    fn restore(&mut self, r: &StateReader<'_>) -> Result<(), PersistError>;
}

/// Builder for one component's state object (ordered name → value fields).
#[derive(Debug, Default)]
pub struct StateWriter {
    fields: Vec<(String, Value)>,
}

impl StateWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes into the value tree.
    pub fn finish(self) -> Value {
        Value::Object(self.fields)
    }

    /// Raw field.
    pub fn value(&mut self, name: &str, v: Value) {
        self.fields.push((name.to_string(), v));
    }

    /// Unsigned scalar.
    pub fn u64(&mut self, name: &str, v: u64) {
        self.value(name, Value::U64(v));
    }

    /// Boolean scalar.
    pub fn bool(&mut self, name: &str, v: bool) {
        self.value(name, Value::Bool(v));
    }

    /// Float scalar, stored as its IEEE-754 bit pattern (exact).
    pub fn f64_bits(&mut self, name: &str, v: f64) {
        self.value(name, Value::U64(v.to_bits()));
    }

    /// Column of unsigned scalars.
    pub fn u64_col(&mut self, name: &str, vs: impl IntoIterator<Item = u64>) {
        self.value(name, Value::Array(vs.into_iter().map(Value::U64).collect()));
    }

    /// Column of floats, stored as bit patterns (exact).
    pub fn f64_bits_col(&mut self, name: &str, vs: impl IntoIterator<Item = f64>) {
        self.u64_col(name, vs.into_iter().map(f64::to_bits));
    }

    /// Column of 128-bit values, flattened into `[hi, lo, hi, lo, …]`.
    pub fn u128_col(&mut self, name: &str, vs: impl IntoIterator<Item = u128>) {
        let mut flat = Vec::new();
        for v in vs {
            flat.push(Value::U64((v >> 64) as u64));
            flat.push(Value::U64(v as u64));
        }
        self.value(name, Value::Array(flat));
    }

    /// Column-encoded list of `(tick, point)` pairs — the shared codec for
    /// the reservoir and the outlier buffer: a `dims` scalar plus parallel
    /// `ticks` / flat bit-pattern `values` columns.
    pub fn point_list(&mut self, name: &str, items: &[(u64, crate::point::DataPoint)]) {
        let dims = items.first().map_or(0, |(_, p)| p.dims());
        self.nested(name, |w| {
            w.u64("dims", dims as u64);
            w.u64_col("ticks", items.iter().map(|(t, _)| *t));
            w.f64_bits_col(
                "values",
                items.iter().flat_map(|(_, p)| p.values().iter().copied()),
            );
        });
    }

    /// Nested component state captured via [`DurableState`].
    pub fn component(&mut self, name: &str, c: &dyn DurableState) {
        let mut w = StateWriter::new();
        c.capture(&mut w);
        self.value(name, w.finish());
    }

    /// Nested object built by a closure.
    pub fn nested(&mut self, name: &str, f: impl FnOnce(&mut StateWriter)) {
        let mut w = StateWriter::new();
        f(&mut w);
        self.value(name, w.finish());
    }

    /// List of nested objects (`n` entries, built by index).
    pub fn nested_list(&mut self, name: &str, items: Vec<Value>) {
        self.value(name, Value::Array(items));
    }
}

/// Typed reads over one component's captured state object.
#[derive(Debug, Clone, Copy)]
pub struct StateReader<'a> {
    v: &'a Value,
}

impl<'a> StateReader<'a> {
    /// Wraps a captured value tree (must be an object).
    pub fn new(v: &'a Value) -> Result<Self, PersistError> {
        match v {
            Value::Object(_) => Ok(StateReader { v }),
            other => Err(PersistError::custom(format!(
                "expected state object, found {other:?}"
            ))),
        }
    }

    fn field(&self, name: &str) -> Result<&'a Value, PersistError> {
        self.v
            .get_field(name)
            .ok_or_else(|| PersistError::custom(format!("missing field `{name}`")))
    }

    /// Raw field access.
    pub fn value(&self, name: &str) -> Result<&'a Value, PersistError> {
        self.field(name)
    }

    /// Unsigned scalar.
    pub fn u64(&self, name: &str) -> Result<u64, PersistError> {
        match self.field(name)? {
            Value::U64(n) => Ok(*n),
            other => Err(PersistError::custom(format!(
                "field `{name}`: expected u64, found {other:?}"
            ))),
        }
    }

    /// Boolean scalar.
    pub fn bool(&self, name: &str) -> Result<bool, PersistError> {
        match self.field(name)? {
            Value::Bool(b) => Ok(*b),
            other => Err(PersistError::custom(format!(
                "field `{name}`: expected bool, found {other:?}"
            ))),
        }
    }

    /// Float scalar stored as a bit pattern.
    pub fn f64_bits(&self, name: &str) -> Result<f64, PersistError> {
        self.u64(name).map(f64::from_bits)
    }

    fn array(&self, name: &str) -> Result<&'a [Value], PersistError> {
        match self.field(name)? {
            Value::Array(items) => Ok(items),
            other => Err(PersistError::custom(format!(
                "field `{name}`: expected array, found {other:?}"
            ))),
        }
    }

    /// Column of unsigned scalars.
    pub fn u64_col(&self, name: &str) -> Result<Vec<u64>, PersistError> {
        self.array(name)?
            .iter()
            .map(|v| match v {
                Value::U64(n) => Ok(*n),
                other => Err(PersistError::custom(format!(
                    "column `{name}`: expected u64 entry, found {other:?}"
                ))),
            })
            .collect()
    }

    /// Column of floats stored as bit patterns.
    pub fn f64_bits_col(&self, name: &str) -> Result<Vec<f64>, PersistError> {
        Ok(self
            .u64_col(name)?
            .into_iter()
            .map(f64::from_bits)
            .collect())
    }

    /// Column of 128-bit values flattened as `[hi, lo, …]`.
    pub fn u128_col(&self, name: &str) -> Result<Vec<u128>, PersistError> {
        let flat = self.u64_col(name)?;
        if flat.len() % 2 != 0 {
            return Err(PersistError::custom(format!(
                "column `{name}`: odd number of u128 lanes"
            )));
        }
        Ok(flat
            .chunks_exact(2)
            .map(|c| ((c[0] as u128) << 64) | c[1] as u128)
            .collect())
    }

    /// Decodes a [`StateWriter::point_list`] column group. When
    /// `expect_dims` is given, every restored point must have exactly that
    /// dimensionality — inconsistent payloads fail here, at load time,
    /// instead of corrupting the detector mid-stream.
    pub fn point_list(
        &self,
        name: &str,
        expect_dims: Option<usize>,
    ) -> Result<Vec<(u64, crate::point::DataPoint)>, PersistError> {
        let r = self.nested(name)?;
        let dims = r.u64("dims")? as usize;
        let ticks = r.u64_col("ticks")?;
        let values = r.f64_bits_col("values")?;
        if ticks.len() * dims != values.len() || (!ticks.is_empty() && dims == 0) {
            return Err(PersistError::custom(format!(
                "point list `{name}`: {} ticks × {dims} dims ≠ {} values",
                ticks.len(),
                values.len()
            )));
        }
        if let Some(want) = expect_dims {
            if !ticks.is_empty() && dims != want {
                return Err(PersistError::custom(format!(
                    "point list `{name}`: dimensionality {dims} does not match expected {want}"
                )));
            }
        }
        Ok(ticks
            .into_iter()
            .zip(values.chunks(dims.max(1)))
            .map(|(t, vs)| (t, crate::point::DataPoint::new(vs.to_vec())))
            .collect())
    }

    /// Nested component state.
    pub fn nested(&self, name: &str) -> Result<StateReader<'a>, PersistError> {
        StateReader::new(self.field(name)?).map_err(|e| e.in_field(name))
    }

    /// List of nested component states.
    pub fn nested_list(&self, name: &str) -> Result<Vec<StateReader<'a>>, PersistError> {
        self.array(name)?
            .iter()
            .map(|v| StateReader::new(v).map_err(|e| e.in_field(name)))
            .collect()
    }

    /// Restores a nested component via [`DurableState`].
    pub fn restore_component(
        &self,
        name: &str,
        c: &mut dyn DurableState,
    ) -> Result<(), PersistError> {
        c.restore(&self.nested(name)?).map_err(|e| e.in_field(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        let mut w = StateWriter::new();
        w.u64("n", u64::MAX);
        w.bool("b", true);
        w.f64_bits("f", -0.0);
        w.f64_bits("inf", f64::INFINITY);
        let v = w.finish();
        let r = StateReader::new(&v).unwrap();
        assert_eq!(r.u64("n").unwrap(), u64::MAX);
        assert!(r.bool("b").unwrap());
        assert_eq!(r.f64_bits("f").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64_bits("inf").unwrap(), f64::INFINITY);
    }

    #[test]
    fn columns_roundtrip_bit_exact() {
        let floats = [0.1, -0.0, f64::MIN_POSITIVE / 2.0, 1e308, -3.5];
        let wide = [0u128, 1, u128::MAX, (7u128 << 64) | 9];
        let mut w = StateWriter::new();
        w.f64_bits_col("f", floats.iter().copied());
        w.u128_col("k", wide.iter().copied());
        w.u64_col("u", [3u64, 0, u64::MAX]);
        let v = w.finish();
        let r = StateReader::new(&v).unwrap();
        let back = r.f64_bits_col("f").unwrap();
        for (a, b) in floats.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(r.u128_col("k").unwrap(), wide);
        assert_eq!(r.u64_col("u").unwrap(), vec![3, 0, u64::MAX]);
    }

    #[test]
    fn missing_and_mistyped_fields_error() {
        let mut w = StateWriter::new();
        w.u64("n", 1);
        let v = w.finish();
        let r = StateReader::new(&v).unwrap();
        assert!(r.u64("gone").is_err());
        assert!(r.bool("n").is_err());
        assert!(r.nested("n").is_err());
        assert!(StateReader::new(&Value::U64(3)).is_err());
    }

    #[test]
    fn nested_components_compose() {
        struct Counter(u64);
        impl DurableState for Counter {
            fn capture(&self, w: &mut StateWriter) {
                w.u64("count", self.0);
            }
            fn restore(&mut self, r: &StateReader<'_>) -> Result<(), PersistError> {
                self.0 = r.u64("count")?;
                Ok(())
            }
        }
        let mut w = StateWriter::new();
        w.component("inner", &Counter(41));
        let v = w.finish();
        let r = StateReader::new(&v).unwrap();
        let mut c = Counter(0);
        r.restore_component("inner", &mut c).unwrap();
        assert_eq!(c.0, 41);
    }

    #[test]
    fn point_list_roundtrips_and_validates() {
        use crate::point::DataPoint;
        let items = vec![
            (3u64, DataPoint::new(vec![0.25, -0.0])),
            (9, DataPoint::new(vec![f64::INFINITY, 1e-310])),
        ];
        let mut w = StateWriter::new();
        w.point_list("pts", &items);
        w.point_list("empty", &[]);
        let v = w.finish();
        let r = StateReader::new(&v).unwrap();
        let back = r.point_list("pts", Some(2)).unwrap();
        assert_eq!(back.len(), 2);
        for ((ta, pa), (tb, pb)) in items.iter().zip(&back) {
            assert_eq!(ta, tb);
            for (a, b) in pa.values().iter().zip(pb.values()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert!(r.point_list("empty", Some(5)).unwrap().is_empty());
        // Dimensionality mismatches fail at decode time.
        assert!(r.point_list("pts", Some(3)).is_err());
        // dims = 0 with non-empty ticks is rejected, not silently dropped.
        let mut w = StateWriter::new();
        w.nested("bad", |w| {
            w.u64("dims", 0);
            w.u64_col("ticks", [1u64]);
            w.f64_bits_col("values", []);
        });
        let v = w.finish();
        let r = StateReader::new(&v).unwrap();
        assert!(r.point_list("bad", None).is_err());
    }

    #[test]
    fn lanes_roundtrip_bit_exact_and_bound_check() {
        let mut buf = Vec::new();
        lanes::put_u32(&mut buf, 0xDEAD_BEEF);
        lanes::put_u64(&mut buf, u64::MAX - 7);
        for v in [0.1, -0.0, f64::MIN_POSITIVE / 2.0, f64::INFINITY, 1e308] {
            lanes::put_f64_bits(&mut buf, v);
        }
        assert_eq!(buf.len(), 4 + 8 + 5 * 8);
        assert_eq!(lanes::get_u32(&buf, 0), Some(0xDEAD_BEEF));
        assert_eq!(lanes::get_u64(&buf, 4), Some(u64::MAX - 7));
        let back = lanes::get_f64_bits(&buf, 12).unwrap();
        assert_eq!(back.to_bits(), 0.1f64.to_bits());
        assert_eq!(
            lanes::get_f64_bits(&buf, 20).unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
        // Reads past the end (or overflowing offsets) are None, not panics.
        assert_eq!(lanes::get_u64(&buf, buf.len() - 7), None);
        assert_eq!(lanes::get_u32(&buf, usize::MAX), None);
        assert_eq!(lanes::get_u64(&buf, usize::MAX - 3), None);
    }

    #[test]
    fn fnv1a64_is_stable_and_sensitive() {
        // Reference vectors for the canonical FNV-1a 64 parameters.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        // A single flipped bit anywhere changes the hash.
        let base = b"[42,7,9]".to_vec();
        let want = fnv1a64(&base);
        for i in 0..base.len() * 8 {
            let mut flipped = base.clone();
            flipped[i / 8] ^= 1 << (i % 8);
            assert_ne!(fnv1a64(&flipped), want, "bit {i}");
        }
    }

    #[test]
    fn persist_error_maps_to_spot_error() {
        let e: SpotError = PersistError::custom("bad").into();
        assert!(matches!(e, SpotError::SnapshotCorrupt(_)));
    }
}
