//! Capture/restore substrate for durable engine state ("snapshot v2").
//!
//! Every stateful layer of the detector — decayed counters, cell stores,
//! the drift test, the reservoir, the clock — owns its own serialization by
//! implementing [`DurableState`] (or an inherent `capture_state` /
//! `restore_state` pair when extra context such as a grid is needed). The
//! top-level snapshot composes the layers' value trees instead of reaching
//! into their internals.
//!
//! # Bit-exactness
//!
//! Warm restarts must reproduce the *exact* runtime state: a restored
//! detector has to emit bit-identical verdicts to one that never stopped.
//! Floating-point state is therefore encoded as raw IEEE-754 bit patterns
//! (`u64`), never as decimal text — that round-trips every value including
//! `±0.0`, subnormals and infinities through any textual carrier. Wide
//! [`u128`] cell keys are split into two `u64` lanes for the same reason.
//!
//! Columns (the natural shape of the SoA synopsis stores) are written as
//! flat arrays, one field per column — the "compact column-oriented
//! encoding" of the v2 snapshot format. See `docs/persistence.md` for the
//! full format layout and versioning policy.

use crate::error::SpotError;
use serde::Value;

/// FNV-1a 64-bit hash — the persistence layer's integrity checksum.
///
/// Checkpoint envelopes embed the hash of their payload so that on-disk
/// corruption (a flipped bit in a stored bit pattern, a truncated column)
/// is detected at load time as a typed error instead of silently
/// restoring a wrong value. FNV-1a is not cryptographic; it guards
/// against storage faults, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Little-endian binary lanes — the persistence layer's byte-level
/// encoding discipline, shared by the ingestion WAL's record frames.
///
/// The JSON checkpoint carrier stores floats as `u64` bit patterns inside
/// a value tree; binary carriers (the WAL, and the [`binary`] column
/// carrier) store the *same lanes* as fixed-width little-endian fields.
/// Both directions are total: every bit pattern round-trips, including
/// `±0.0`, subnormals and infinities.
pub mod lanes {
    /// Appends a `u32` as 4 little-endian bytes.
    pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` as 8 little-endian bytes.
    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (8 LE bytes, exact).
    pub fn put_f64_bits(buf: &mut Vec<u8>, v: f64) {
        put_u64(buf, v.to_bits());
    }

    /// Reads the `u32` lane at byte offset `at`, or `None` when the slice
    /// ends before the lane does.
    pub fn get_u32(bytes: &[u8], at: usize) -> Option<u32> {
        let lane = bytes.get(at..at.checked_add(4)?)?;
        Some(u32::from_le_bytes(lane.try_into().expect("4-byte lane")))
    }

    /// Reads the `u64` lane at byte offset `at`.
    pub fn get_u64(bytes: &[u8], at: usize) -> Option<u64> {
        let lane = bytes.get(at..at.checked_add(8)?)?;
        Some(u64::from_le_bytes(lane.try_into().expect("8-byte lane")))
    }

    /// Reads the `f64` bit-pattern lane at byte offset `at` (exact).
    pub fn get_f64_bits(bytes: &[u8], at: usize) -> Option<f64> {
        get_u64(bytes, at).map(f64::from_bits)
    }
}

/// Binary column carrier — the compact backend behind the same
/// [`StateWriter`]/[`StateReader`] value trees that the JSON carrier
/// renders as text ("snapshot v3").
///
/// The encoding is a tagged pre-order walk of the value tree. Scalars are
/// varint/fixed lanes; the payoff is the dedicated *column* tag: a
/// [`Value::U64Col`] (or any non-empty array of `u64` entries — bit-pattern
/// float columns, packed cell-key lanes) is emitted as one contiguous run
/// in a per-column mode chosen deterministically from the data:
///
/// | mode | layout | wins for |
/// |------|--------|----------|
/// | `RAW`    | 8 LE bytes per entry        | float bit patterns (incompressible mantissas) |
/// | `VARINT` | LEB128 per entry            | small counters, tick columns |
/// | `DELTA`  | first entry + zigzag diffs  | sorted keys, monotone clocks |
/// | `CONST`  | one 8-byte entry            | all-equal columns (masks, dims) |
/// | `GORILLA`| XOR-prev, byte-aligned lanes | slow-moving float bit patterns |
///
/// Every multi-byte lane is little-endian. Decoding is total: all counts
/// and lengths are bounds-checked against the remaining input *before*
/// allocation, recursion depth is capped, and every malformed input path
/// returns a typed [`PersistError`] — never a panic. The container frame
/// (`SPOTBIN1` magic + payload + [`Checksum64`] trailer) seals a whole
/// checkpoint file; see `docs/persistence.md` for the full layout.
pub mod binary {
    use super::PersistError;
    use serde::Value;

    /// Magic prefix of a binary container frame.
    pub const MAGIC: &[u8; 8] = b"SPOTBIN1";

    const T_NULL: u8 = 0;
    const T_FALSE: u8 = 1;
    const T_TRUE: u8 = 2;
    const T_U64: u8 = 3;
    const T_I64: u8 = 4;
    const T_F64: u8 = 5;
    const T_STR: u8 = 6;
    const T_ARRAY: u8 = 7;
    const T_OBJECT: u8 = 8;
    const T_COL: u8 = 9;

    const MODE_RAW: u8 = 0;
    const MODE_VARINT: u8 = 1;
    const MODE_DELTA: u8 = 2;
    const MODE_CONST: u8 = 3;
    const MODE_GORILLA: u8 = 4;

    /// Value trees nest component → store → column; anything deeper than
    /// this in a payload is corruption, not state.
    const MAX_DEPTH: usize = 64;

    fn put_varint(out: &mut Vec<u8>, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                out.push(byte);
                return;
            }
            out.push(byte | 0x80);
        }
    }

    fn varint_len(v: u64) -> usize {
        // Branch-free: ⌈bits/7⌉ with v=0 mapping to 1 byte. Mode
        // selection sizes every sampled column entry through this, so it
        // must not loop.
        ((63 - (v | 1).leading_zeros() as usize) / 7) + 1
    }

    fn get_varint(bytes: &[u8], at: &mut usize) -> Result<u64, PersistError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = *bytes
                .get(*at)
                .ok_or_else(|| PersistError::custom("varint: truncated input"))?;
            *at += 1;
            if shift == 63 && b > 1 {
                return Err(PersistError::custom("varint: value overflows u64"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(PersistError::custom("varint: too many continuation bytes"));
            }
        }
    }

    /// Byte-aligned Gorilla-style lane for one `v ^ prev` word: a header
    /// byte packing `(leading zero bytes << 4) | trailing zero bytes`,
    /// then the surviving middle bytes little-endian. Neighbouring float
    /// bit patterns share sign/exponent/high-mantissa bytes, so the XOR's
    /// zero fringe is dropped without the bit-granular accounting of the
    /// original Gorilla paper — byte lanes keep both coders branch-light
    /// and the wire format trivially bounds-checkable. A zero XOR
    /// (repeated value) is the bare header `0x80`.
    fn gorilla_split(xor: u64) -> (usize, usize) {
        if xor == 0 {
            return (8, 0);
        }
        let lead = xor.leading_zeros() as usize / 8;
        let trail = xor.trailing_zeros() as usize / 8;
        (lead, trail)
    }

    fn gorilla_lane_len(xor: u64) -> usize {
        let (lead, trail) = gorilla_split(xor);
        1 + (8 - lead - trail)
    }

    fn put_gorilla_lane(out: &mut Vec<u8>, xor: u64) {
        let (lead, trail) = gorilla_split(xor);
        out.push(((lead << 4) | trail) as u8);
        let mid = 8 - lead - trail;
        let lanes = (xor >> (trail * 8)).to_le_bytes();
        out.extend_from_slice(&lanes[..mid]);
    }

    fn zigzag(v: i64) -> u64 {
        ((v << 1) ^ (v >> 63)) as u64
    }

    fn unzigzag(v: u64) -> i64 {
        ((v >> 1) as i64) ^ -((v & 1) as i64)
    }

    /// Word-wise FNV-1a over eight interleaved streams: words 0,8,16,…
    /// fold into stream 0, words 1,9,17,… into stream 1, and so on (final
    /// partial word zero-padded); the digest folds the eight stream
    /// hashes and then the total length into one final FNV chain. Same
    /// fault-detection role as [`super::fnv1a64`] at a fraction of the
    /// cost: word-wise instead of byte-wise, and the eight independent
    /// multiply chains pipeline where a single chain is latency-bound —
    /// a multi-megabyte container trailer must not cost more than the
    /// encode itself.
    #[derive(Debug, Clone)]
    pub struct Checksum64 {
        streams: [u64; 8],
        next: usize,
        pending: [u8; 8],
        fill: usize,
        len: u64,
    }

    impl Default for Checksum64 {
        fn default() -> Self {
            Self::new()
        }
    }

    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    impl Checksum64 {
        /// Empty-input state.
        pub fn new() -> Self {
            Checksum64 {
                streams: [FNV_OFFSET; 8],
                next: 0,
                pending: [0; 8],
                fill: 0,
                len: 0,
            }
        }

        fn fold(&mut self, word: u64) {
            let s = &mut self.streams[self.next];
            *s = (*s ^ word).wrapping_mul(FNV_PRIME);
            self.next = (self.next + 1) & 7;
        }

        /// Absorbs more input.
        pub fn update(&mut self, mut bytes: &[u8]) {
            self.len += bytes.len() as u64;
            if self.fill > 0 {
                let take = bytes.len().min(8 - self.fill);
                self.pending[self.fill..self.fill + take].copy_from_slice(&bytes[..take]);
                self.fill += take;
                bytes = &bytes[take..];
                if self.fill == 8 {
                    let word = u64::from_le_bytes(self.pending);
                    self.fold(word);
                    self.fill = 0;
                } else {
                    return;
                }
            }
            // Fast path once the stream cursor is aligned (it always is
            // for one-shot hashing): eight words per iteration into eight
            // independent chains — the word→stream mapping (word i →
            // stream i mod 8) is identical to the rotating slow path.
            if self.next == 0 {
                let mut s = self.streams;
                let word = |lane: &[u8]| u64::from_le_bytes(lane.try_into().expect("8-byte word"));
                let mut blocks = bytes.chunks_exact(64);
                for block in &mut blocks {
                    for (k, lane) in block.chunks_exact(8).enumerate() {
                        s[k] = (s[k] ^ word(lane)).wrapping_mul(FNV_PRIME);
                    }
                }
                self.streams = s;
                bytes = blocks.remainder();
            }
            let mut rest = bytes.chunks_exact(8);
            for lane in &mut rest {
                let word = u64::from_le_bytes(lane.try_into().expect("8-byte word"));
                self.fold(word);
            }
            let tail = rest.remainder();
            self.pending[..tail.len()].copy_from_slice(tail);
            self.fill = tail.len();
        }

        /// Final digest (partial word zero-padded, the eight stream
        /// hashes folded into one chain, length folded last so trailing
        /// zero bytes still change the sum).
        pub fn finish(mut self) -> u64 {
            if self.fill > 0 {
                self.pending[self.fill..].fill(0);
                let word = u64::from_le_bytes(self.pending);
                self.fold(word);
            }
            let mut hash = FNV_OFFSET;
            for s in self.streams {
                hash = (hash ^ s).wrapping_mul(FNV_PRIME);
            }
            (hash ^ self.len).wrapping_mul(FNV_PRIME)
        }
    }

    /// One-shot word-wise checksum of a byte slice.
    pub fn checksum64(bytes: &[u8]) -> u64 {
        let mut c = Checksum64::new();
        c.update(bytes);
        c.finish()
    }

    /// Returns the column entries when `v` should take the column tag: a
    /// packed column (borrowed), or a non-empty array whose entries are
    /// all `U64` (gathered into a scratch vector so the encoder runs on a
    /// plain slice either way). Empty columns stay on the generic array
    /// tag so they decode to `Value::Array` — the shape every reader
    /// already accepts.
    fn as_col(v: &Value) -> Option<std::borrow::Cow<'_, [u64]>> {
        match v {
            Value::U64Col(col) if !col.is_empty() => {
                Some(std::borrow::Cow::Borrowed(col.as_slice()))
            }
            Value::Array(items) if !items.is_empty() => {
                let mut col = Vec::with_capacity(items.len());
                for it in items {
                    match it {
                        Value::U64(n) => col.push(*n),
                        _ => return None,
                    }
                }
                Some(std::borrow::Cow::Owned(col))
            }
            _ => None,
        }
    }

    /// Deterministic per-column mode choice. Exact scans would dominate
    /// encode time on the ~600k-entry float columns of a warm synopsis, so
    /// large columns are judged from a strided sample; the decision is a
    /// pure function of the data, never of time or randomness.
    fn choose_mode(c: &[u64]) -> u8 {
        let first = c[0];
        if c[1..].iter().all(|&v| v == first) {
            return MODE_CONST;
        }
        // Sample up to 64 entries at a fixed stride.
        let stride = (c.len() / 64).max(1);
        let mut sampled = 0usize;
        let mut varint_bytes = 0usize;
        let mut delta_bytes = 0usize;
        let mut gorilla_bytes = 0usize;
        let mut i = 0;
        let mut prev = first;
        let mut gprev = 0u64;
        while i < c.len() {
            let v = c[i];
            varint_bytes += varint_len(v);
            delta_bytes += if i == 0 {
                varint_len(v)
            } else {
                varint_len(zigzag(v.wrapping_sub(prev) as i64))
            };
            gorilla_bytes += gorilla_lane_len(v ^ gprev);
            prev = v;
            gprev = v;
            sampled += 1;
            i += stride;
        }
        let raw_bytes = sampled * 8;
        // Prefer RAW unless another mode is clearly smaller: RAW decode is
        // a straight copy and float bit patterns are incompressible. The
        // integer modes outrank GORILLA at equal size — their decode is a
        // plain varint chain with no header byte per lane.
        if delta_bytes * 10 < raw_bytes * 9 && delta_bytes <= varint_bytes {
            MODE_DELTA
        } else if varint_bytes * 10 < raw_bytes * 9 {
            MODE_VARINT
        } else if gorilla_bytes * 10 < raw_bytes * 9 {
            MODE_GORILLA
        } else {
            MODE_RAW
        }
    }

    fn encode_col(c: &[u64], out: &mut Vec<u8>) {
        let n = c.len();
        out.push(T_COL);
        put_varint(out, n as u64);
        let mode = choose_mode(c);
        out.push(mode);
        match mode {
            MODE_CONST => out.extend_from_slice(&c[0].to_le_bytes()),
            #[cfg(target_endian = "little")]
            MODE_RAW => {
                // SAFETY: a `[u64]` is always valid to view as the same
                // span of initialized bytes, and on a little-endian target
                // that view IS the `to_le_bytes` lane sequence the wire
                // format wants. One bulk copy instead of a per-element
                // loop — RAW columns are the bulk of a warm synopsis, so
                // this path sets the encode rate.
                let lanes = unsafe { std::slice::from_raw_parts(c.as_ptr().cast::<u8>(), n * 8) };
                out.extend_from_slice(lanes);
            }
            #[cfg(not(target_endian = "little"))]
            MODE_RAW => {
                out.reserve(n * 8);
                for &v in c {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            MODE_VARINT => {
                for &v in c {
                    put_varint(out, v);
                }
            }
            MODE_DELTA => {
                let mut prev = c[0];
                put_varint(out, prev);
                for &v in &c[1..] {
                    put_varint(out, zigzag(v.wrapping_sub(prev) as i64));
                    prev = v;
                }
            }
            MODE_GORILLA => {
                // Seeding prev = 0 makes the first lane carry the value
                // itself; no separate bootstrap entry in the wire format.
                let mut prev = 0u64;
                for &v in c {
                    put_gorilla_lane(out, v ^ prev);
                    prev = v;
                }
            }
            _ => unreachable!("choose_mode returns a known mode"),
        }
    }

    /// Encodes a value tree into the binary payload (no container frame).
    pub fn encode(v: &Value, out: &mut Vec<u8>) {
        if let Some(col) = as_col(v) {
            encode_col(&col, out);
            return;
        }
        match v {
            Value::Null => out.push(T_NULL),
            Value::Bool(false) => out.push(T_FALSE),
            Value::Bool(true) => out.push(T_TRUE),
            Value::U64(n) => {
                out.push(T_U64);
                put_varint(out, *n);
            }
            Value::I64(n) => {
                out.push(T_I64);
                put_varint(out, zigzag(*n));
            }
            Value::F64(f) => {
                out.push(T_F64);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                out.push(T_STR);
                put_varint(out, s.len() as u64);
                out.extend_from_slice(s.as_bytes());
            }
            // Empty columns and mixed arrays (as_col said no).
            Value::U64Col(col) => {
                debug_assert!(col.is_empty(), "non-empty cols take the column tag");
                out.push(T_ARRAY);
                put_varint(out, col.len() as u64);
                for n in col {
                    out.push(T_U64);
                    put_varint(out, *n);
                }
            }
            Value::Array(items) => {
                out.push(T_ARRAY);
                put_varint(out, items.len() as u64);
                for item in items {
                    encode(item, out);
                }
            }
            Value::Object(entries) => {
                out.push(T_OBJECT);
                put_varint(out, entries.len() as u64);
                for (k, val) in entries {
                    put_varint(out, k.len() as u64);
                    out.extend_from_slice(k.as_bytes());
                    encode(val, out);
                }
            }
        }
    }

    /// Claims `want` bytes (for a count of fixed-size lanes) before any
    /// allocation happens — a corrupted count field must fail here, not OOM.
    fn check_remaining(
        bytes: &[u8],
        at: usize,
        want: usize,
        what: &str,
    ) -> Result<(), PersistError> {
        let have = bytes.len().saturating_sub(at);
        if want > have {
            return Err(PersistError::custom(format!(
                "{what}: needs {want} bytes, {have} remain"
            )));
        }
        Ok(())
    }

    fn decode_at(bytes: &[u8], at: &mut usize, depth: usize) -> Result<Value, PersistError> {
        if depth > MAX_DEPTH {
            return Err(PersistError::custom("value tree nests too deep"));
        }
        let tag = *bytes
            .get(*at)
            .ok_or_else(|| PersistError::custom("truncated input: missing tag"))?;
        *at += 1;
        match tag {
            T_NULL => Ok(Value::Null),
            T_FALSE => Ok(Value::Bool(false)),
            T_TRUE => Ok(Value::Bool(true)),
            T_U64 => get_varint(bytes, at).map(Value::U64),
            T_I64 => get_varint(bytes, at).map(|v| Value::I64(unzigzag(v))),
            T_F64 => {
                check_remaining(bytes, *at, 8, "f64 lane")?;
                let lane = u64::from_le_bytes(bytes[*at..*at + 8].try_into().expect("8 bytes"));
                *at += 8;
                Ok(Value::F64(f64::from_bits(lane)))
            }
            T_STR => {
                let len = get_varint(bytes, at)? as usize;
                check_remaining(bytes, *at, len, "string body")?;
                let s = std::str::from_utf8(&bytes[*at..*at + len])
                    .map_err(|_| PersistError::custom("string body: invalid UTF-8"))?
                    .to_string();
                *at += len;
                Ok(Value::Str(s))
            }
            T_ARRAY => {
                let n = get_varint(bytes, at)? as usize;
                // Every element is at least one tag byte.
                check_remaining(bytes, *at, n, "array body")?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(decode_at(bytes, at, depth + 1)?);
                }
                Ok(Value::Array(items))
            }
            T_OBJECT => {
                let n = get_varint(bytes, at)? as usize;
                // Every entry is at least a key length byte + a tag byte.
                check_remaining(bytes, *at, n.saturating_mul(2), "object body")?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let klen = get_varint(bytes, at)? as usize;
                    check_remaining(bytes, *at, klen, "object key")?;
                    let k = std::str::from_utf8(&bytes[*at..*at + klen])
                        .map_err(|_| PersistError::custom("object key: invalid UTF-8"))?
                        .to_string();
                    *at += klen;
                    let v = decode_at(bytes, at, depth + 1)?;
                    entries.push((k, v));
                }
                Ok(Value::Object(entries))
            }
            T_COL => {
                let n = get_varint(bytes, at)? as usize;
                if n == 0 {
                    return Err(PersistError::custom("column: zero-length column tag"));
                }
                let mode = *bytes
                    .get(*at)
                    .ok_or_else(|| PersistError::custom("column: missing mode byte"))?;
                *at += 1;
                let mut col: Vec<u64>;
                match mode {
                    MODE_CONST => {
                        check_remaining(bytes, *at, 8, "const column")?;
                        let v =
                            u64::from_le_bytes(bytes[*at..*at + 8].try_into().expect("8 bytes"));
                        *at += 8;
                        col = vec![v; n];
                    }
                    MODE_RAW => {
                        let want = n
                            .checked_mul(8)
                            .ok_or_else(|| PersistError::custom("raw column: count overflow"))?;
                        check_remaining(bytes, *at, want, "raw column")?;
                        col = Vec::with_capacity(n);
                        for lane in bytes[*at..*at + want].chunks_exact(8) {
                            col.push(u64::from_le_bytes(lane.try_into().expect("8 bytes")));
                        }
                        *at += want;
                    }
                    MODE_VARINT => {
                        check_remaining(bytes, *at, n, "varint column")?;
                        col = Vec::with_capacity(n);
                        for _ in 0..n {
                            col.push(get_varint(bytes, at)?);
                        }
                    }
                    MODE_DELTA => {
                        check_remaining(bytes, *at, n, "delta column")?;
                        col = Vec::with_capacity(n);
                        let mut prev = get_varint(bytes, at)?;
                        col.push(prev);
                        for _ in 1..n {
                            let d = unzigzag(get_varint(bytes, at)?);
                            prev = prev.wrapping_add(d as u64);
                            col.push(prev);
                        }
                    }
                    MODE_GORILLA => {
                        // Every lane is at least its header byte.
                        check_remaining(bytes, *at, n, "gorilla column")?;
                        col = Vec::with_capacity(n);
                        let mut prev = 0u64;
                        for _ in 0..n {
                            let header = *bytes.get(*at).ok_or_else(|| {
                                PersistError::custom("gorilla column: missing lane header")
                            })?;
                            *at += 1;
                            let lead = (header >> 4) as usize;
                            let trail = (header & 0x0f) as usize;
                            if lead + trail > 8 {
                                return Err(PersistError::custom(format!(
                                    "gorilla column: lane header {header:#04x} claims {} zero \
                                     bytes of 8",
                                    lead + trail
                                )));
                            }
                            let mid = 8 - lead - trail;
                            check_remaining(bytes, *at, mid, "gorilla lane")?;
                            let mut xor = 0u64;
                            for (k, &b) in bytes[*at..*at + mid].iter().enumerate() {
                                xor |= u64::from(b) << ((trail + k) * 8);
                            }
                            *at += mid;
                            prev ^= xor;
                            col.push(prev);
                        }
                    }
                    other => {
                        return Err(PersistError::custom(format!(
                            "column: unknown mode {other}"
                        )));
                    }
                }
                Ok(Value::U64Col(col))
            }
            other => Err(PersistError::custom(format!("unknown value tag {other}"))),
        }
    }

    /// Decodes a binary payload back into a value tree. The whole input
    /// must be consumed — trailing garbage is corruption.
    pub fn decode(bytes: &[u8]) -> Result<Value, PersistError> {
        let mut at = 0;
        let v = decode_at(bytes, &mut at, 0)?;
        if at != bytes.len() {
            return Err(PersistError::custom(format!(
                "trailing garbage: {} bytes after value",
                bytes.len() - at
            )));
        }
        Ok(v)
    }

    /// Wraps an encoded payload in the container frame:
    /// `SPOTBIN1 | payload | checksum64(payload) (8 LE bytes)`.
    pub fn write_container<W: std::io::Write>(mut w: W, payload: &[u8]) -> std::io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(payload)?;
        w.write_all(&checksum64(payload).to_le_bytes())?;
        Ok(())
    }

    /// Encodes a value tree into a complete container frame.
    pub fn encode_container(v: &Value) -> Vec<u8> {
        let mut payload = Vec::new();
        encode(v, &mut payload);
        let mut out = Vec::with_capacity(payload.len() + 16);
        write_container(&mut out, &payload).expect("Vec writes are infallible");
        out
    }

    /// Encodes an object whose field values are *borrowed* — envelope
    /// builders compose `{version, config, …, state}` around a large
    /// resident state tree, and this path encodes it without first deep-
    /// cloning that tree into an owned [`Value::Object`].
    pub fn encode_object_fields(fields: &[(&str, &Value)], out: &mut Vec<u8>) {
        out.push(T_OBJECT);
        put_varint(out, fields.len() as u64);
        for (k, val) in fields {
            put_varint(out, k.len() as u64);
            out.extend_from_slice(k.as_bytes());
            encode(val, out);
        }
    }

    /// Sizing walk for buffer pre-allocation: close for the column-heavy
    /// trees that dominate (a column costs O(1) to size), a safe over-
    /// estimate elsewhere. Purely a `Vec::with_capacity` hint.
    fn estimate_len(v: &Value) -> usize {
        match v {
            Value::Null | Value::Bool(_) => 1,
            Value::U64(n) => 1 + varint_len(*n),
            Value::I64(n) => 1 + varint_len(zigzag(*n)),
            Value::F64(_) => 9,
            Value::Str(s) => 1 + varint_len(s.len() as u64) + s.len(),
            Value::U64Col(col) => 2 + varint_len(col.len() as u64) + 8 * col.len().max(1),
            Value::Array(items) => {
                1 + varint_len(items.len() as u64) + items.iter().map(estimate_len).sum::<usize>()
            }
            Value::Object(entries) => {
                1 + varint_len(entries.len() as u64)
                    + entries
                        .iter()
                        .map(|(k, val)| varint_len(k.len() as u64) + k.len() + estimate_len(val))
                        .sum::<usize>()
            }
        }
    }

    /// Encodes borrowed object fields straight into a sealed container
    /// frame — single buffer, no payload copy: the frame is built in
    /// place and the checksum trailer computed over the encoded span.
    pub fn container_of_fields(fields: &[(&str, &Value)]) -> Vec<u8> {
        let size = fields
            .iter()
            .map(|(k, v)| 11 + k.len() + estimate_len(v))
            .sum::<usize>()
            + MAGIC.len()
            + 16;
        let mut out = Vec::with_capacity(size);
        out.extend_from_slice(MAGIC);
        encode_object_fields(fields, &mut out);
        let sum = checksum64(&out[MAGIC.len()..]);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Verifies and decodes a container frame (magic, checksum trailer,
    /// full payload decode). Any mismatch is a typed error, never a panic.
    pub fn read_container(bytes: &[u8]) -> Result<Value, PersistError> {
        if bytes.len() < MAGIC.len() + 8 {
            return Err(PersistError::custom(format!(
                "container: {} bytes is shorter than frame overhead",
                bytes.len()
            )));
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(PersistError::custom("container: bad magic"));
        }
        let payload = &bytes[MAGIC.len()..bytes.len() - 8];
        let trailer =
            u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8-byte trailer"));
        let want = checksum64(payload);
        if trailer != want {
            return Err(PersistError::custom(format!(
                "container: checksum mismatch (stored {trailer:016x}, computed {want:016x})"
            )));
        }
        decode(payload)
    }

    /// True when `bytes` starts with the binary container magic — the
    /// carrier sniff used by version-agnostic restore entry points.
    pub fn is_container(bytes: &[u8]) -> bool {
        bytes.len() >= MAGIC.len() && &bytes[..MAGIC.len()] == MAGIC
    }
}

/// Restore failure: the snapshot's value tree does not describe a valid
/// state for the component (missing field, wrong shape, out-of-range
/// value). Converts into [`SpotError::SnapshotCorrupt`].
#[derive(Debug, Clone, PartialEq)]
pub struct PersistError(pub String);

impl PersistError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        PersistError(msg.into())
    }

    /// Adds field context to an error.
    pub fn in_field(self, field: &str) -> Self {
        PersistError(format!("{field}: {}", self.0))
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "state restore error: {}", self.0)
    }
}

impl std::error::Error for PersistError {}

impl From<PersistError> for SpotError {
    fn from(e: PersistError) -> Self {
        SpotError::SnapshotCorrupt(e.0)
    }
}

/// Capture/restore of a component's complete runtime state.
///
/// `capture` must write everything `restore` needs to rebuild the
/// component bit-exactly; `restore` must leave the component exactly as it
/// was at capture time (derived caches may be rebuilt).
pub trait DurableState {
    /// Writes the component's runtime state.
    fn capture(&self, w: &mut StateWriter);

    /// Rebuilds the component's runtime state from a captured tree.
    fn restore(&mut self, r: &StateReader<'_>) -> Result<(), PersistError>;
}

/// Builder for one component's state object (ordered name → value fields).
#[derive(Debug, Default)]
pub struct StateWriter {
    fields: Vec<(String, Value)>,
}

impl StateWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes into the value tree.
    pub fn finish(self) -> Value {
        Value::Object(self.fields)
    }

    /// Raw field.
    pub fn value(&mut self, name: &str, v: Value) {
        self.fields.push((name.to_string(), v));
    }

    /// Unsigned scalar.
    pub fn u64(&mut self, name: &str, v: u64) {
        self.value(name, Value::U64(v));
    }

    /// Boolean scalar.
    pub fn bool(&mut self, name: &str, v: bool) {
        self.value(name, Value::Bool(v));
    }

    /// Float scalar, stored as its IEEE-754 bit pattern (exact).
    pub fn f64_bits(&mut self, name: &str, v: f64) {
        self.value(name, Value::U64(v.to_bits()));
    }

    /// Column of unsigned scalars, stored as a packed [`Value::U64Col`] —
    /// capture is a flat copy with no per-element boxing, and the binary
    /// carrier serializes the column as one contiguous run.
    pub fn u64_col(&mut self, name: &str, vs: impl IntoIterator<Item = u64>) {
        self.value(name, Value::U64Col(vs.into_iter().collect()));
    }

    /// Column of floats, stored as bit patterns (exact).
    pub fn f64_bits_col(&mut self, name: &str, vs: impl IntoIterator<Item = f64>) {
        self.u64_col(name, vs.into_iter().map(f64::to_bits));
    }

    /// Column of 128-bit values, flattened into `[hi, lo, hi, lo, …]`.
    pub fn u128_col(&mut self, name: &str, vs: impl IntoIterator<Item = u128>) {
        let vs = vs.into_iter();
        let mut flat = Vec::with_capacity(vs.size_hint().0 * 2);
        for v in vs {
            flat.push((v >> 64) as u64);
            flat.push(v as u64);
        }
        self.value(name, Value::U64Col(flat));
    }

    /// Column-encoded list of `(tick, point)` pairs — the shared codec for
    /// the reservoir and the outlier buffer: a `dims` scalar plus parallel
    /// `ticks` / flat bit-pattern `values` columns.
    pub fn point_list(&mut self, name: &str, items: &[(u64, crate::point::DataPoint)]) {
        let dims = items.first().map_or(0, |(_, p)| p.dims());
        self.nested(name, |w| {
            w.u64("dims", dims as u64);
            w.u64_col("ticks", items.iter().map(|(t, _)| *t));
            let mut values = Vec::with_capacity(items.len() * dims);
            for (_, p) in items {
                values.extend_from_slice(p.values());
            }
            w.f64_bits_col("values", values);
        });
    }

    /// Nested component state captured via [`DurableState`].
    pub fn component(&mut self, name: &str, c: &dyn DurableState) {
        let mut w = StateWriter::new();
        c.capture(&mut w);
        self.value(name, w.finish());
    }

    /// Nested object built by a closure.
    pub fn nested(&mut self, name: &str, f: impl FnOnce(&mut StateWriter)) {
        let mut w = StateWriter::new();
        f(&mut w);
        self.value(name, w.finish());
    }

    /// List of nested objects (`n` entries, built by index).
    pub fn nested_list(&mut self, name: &str, items: Vec<Value>) {
        self.value(name, Value::Array(items));
    }
}

/// Typed reads over one component's captured state object.
#[derive(Debug, Clone, Copy)]
pub struct StateReader<'a> {
    v: &'a Value,
}

impl<'a> StateReader<'a> {
    /// Wraps a captured value tree (must be an object).
    pub fn new(v: &'a Value) -> Result<Self, PersistError> {
        match v {
            Value::Object(_) => Ok(StateReader { v }),
            other => Err(PersistError::custom(format!(
                "expected state object, found {other:?}"
            ))),
        }
    }

    fn field(&self, name: &str) -> Result<&'a Value, PersistError> {
        self.v
            .get_field(name)
            .ok_or_else(|| PersistError::custom(format!("missing field `{name}`")))
    }

    /// Raw field access.
    pub fn value(&self, name: &str) -> Result<&'a Value, PersistError> {
        self.field(name)
    }

    /// Unsigned scalar.
    pub fn u64(&self, name: &str) -> Result<u64, PersistError> {
        match self.field(name)? {
            Value::U64(n) => Ok(*n),
            other => Err(PersistError::custom(format!(
                "field `{name}`: expected u64, found {other:?}"
            ))),
        }
    }

    /// Boolean scalar.
    pub fn bool(&self, name: &str) -> Result<bool, PersistError> {
        match self.field(name)? {
            Value::Bool(b) => Ok(*b),
            other => Err(PersistError::custom(format!(
                "field `{name}`: expected bool, found {other:?}"
            ))),
        }
    }

    /// Float scalar stored as a bit pattern.
    pub fn f64_bits(&self, name: &str) -> Result<f64, PersistError> {
        self.u64(name).map(f64::from_bits)
    }

    fn array(&self, name: &str) -> Result<&'a [Value], PersistError> {
        match self.field(name)? {
            Value::Array(items) => Ok(items),
            other => Err(PersistError::custom(format!(
                "field `{name}`: expected array, found {other:?}"
            ))),
        }
    }

    /// Column of unsigned scalars. Accepts both carriers: the packed
    /// [`Value::U64Col`] written by current captures, and a plain array of
    /// `u64` entries (what a JSON parse of any checkpoint yields).
    pub fn u64_col(&self, name: &str) -> Result<Vec<u64>, PersistError> {
        match self.field(name)? {
            Value::U64Col(col) => Ok(col.clone()),
            Value::Array(items) => items
                .iter()
                .map(|v| match v {
                    Value::U64(n) => Ok(*n),
                    other => Err(PersistError::custom(format!(
                        "column `{name}`: expected u64 entry, found {other:?}"
                    ))),
                })
                .collect(),
            other => Err(PersistError::custom(format!(
                "field `{name}`: expected array, found {other:?}"
            ))),
        }
    }

    /// Column of floats stored as bit patterns.
    pub fn f64_bits_col(&self, name: &str) -> Result<Vec<f64>, PersistError> {
        Ok(self
            .u64_col(name)?
            .into_iter()
            .map(f64::from_bits)
            .collect())
    }

    /// Column of 128-bit values flattened as `[hi, lo, …]`.
    pub fn u128_col(&self, name: &str) -> Result<Vec<u128>, PersistError> {
        let flat = self.u64_col(name)?;
        if flat.len() % 2 != 0 {
            return Err(PersistError::custom(format!(
                "column `{name}`: odd number of u128 lanes"
            )));
        }
        Ok(flat
            .chunks_exact(2)
            .map(|c| ((c[0] as u128) << 64) | c[1] as u128)
            .collect())
    }

    /// Decodes a [`StateWriter::point_list`] column group. When
    /// `expect_dims` is given, every restored point must have exactly that
    /// dimensionality — inconsistent payloads fail here, at load time,
    /// instead of corrupting the detector mid-stream.
    pub fn point_list(
        &self,
        name: &str,
        expect_dims: Option<usize>,
    ) -> Result<Vec<(u64, crate::point::DataPoint)>, PersistError> {
        let r = self.nested(name)?;
        let dims = r.u64("dims")? as usize;
        let ticks = r.u64_col("ticks")?;
        let values = r.f64_bits_col("values")?;
        if ticks.len() * dims != values.len() || (!ticks.is_empty() && dims == 0) {
            return Err(PersistError::custom(format!(
                "point list `{name}`: {} ticks × {dims} dims ≠ {} values",
                ticks.len(),
                values.len()
            )));
        }
        if let Some(want) = expect_dims {
            if !ticks.is_empty() && dims != want {
                return Err(PersistError::custom(format!(
                    "point list `{name}`: dimensionality {dims} does not match expected {want}"
                )));
            }
        }
        Ok(ticks
            .into_iter()
            .zip(values.chunks(dims.max(1)))
            .map(|(t, vs)| (t, crate::point::DataPoint::new(vs.to_vec())))
            .collect())
    }

    /// Nested component state.
    pub fn nested(&self, name: &str) -> Result<StateReader<'a>, PersistError> {
        StateReader::new(self.field(name)?).map_err(|e| e.in_field(name))
    }

    /// List of nested component states.
    pub fn nested_list(&self, name: &str) -> Result<Vec<StateReader<'a>>, PersistError> {
        self.array(name)?
            .iter()
            .map(|v| StateReader::new(v).map_err(|e| e.in_field(name)))
            .collect()
    }

    /// Restores a nested component via [`DurableState`].
    pub fn restore_component(
        &self,
        name: &str,
        c: &mut dyn DurableState,
    ) -> Result<(), PersistError> {
        c.restore(&self.nested(name)?).map_err(|e| e.in_field(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        let mut w = StateWriter::new();
        w.u64("n", u64::MAX);
        w.bool("b", true);
        w.f64_bits("f", -0.0);
        w.f64_bits("inf", f64::INFINITY);
        let v = w.finish();
        let r = StateReader::new(&v).unwrap();
        assert_eq!(r.u64("n").unwrap(), u64::MAX);
        assert!(r.bool("b").unwrap());
        assert_eq!(r.f64_bits("f").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64_bits("inf").unwrap(), f64::INFINITY);
    }

    #[test]
    fn columns_roundtrip_bit_exact() {
        let floats = [0.1, -0.0, f64::MIN_POSITIVE / 2.0, 1e308, -3.5];
        let wide = [0u128, 1, u128::MAX, (7u128 << 64) | 9];
        let mut w = StateWriter::new();
        w.f64_bits_col("f", floats.iter().copied());
        w.u128_col("k", wide.iter().copied());
        w.u64_col("u", [3u64, 0, u64::MAX]);
        let v = w.finish();
        let r = StateReader::new(&v).unwrap();
        let back = r.f64_bits_col("f").unwrap();
        for (a, b) in floats.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(r.u128_col("k").unwrap(), wide);
        assert_eq!(r.u64_col("u").unwrap(), vec![3, 0, u64::MAX]);
    }

    #[test]
    fn missing_and_mistyped_fields_error() {
        let mut w = StateWriter::new();
        w.u64("n", 1);
        let v = w.finish();
        let r = StateReader::new(&v).unwrap();
        assert!(r.u64("gone").is_err());
        assert!(r.bool("n").is_err());
        assert!(r.nested("n").is_err());
        assert!(StateReader::new(&Value::U64(3)).is_err());
    }

    #[test]
    fn nested_components_compose() {
        struct Counter(u64);
        impl DurableState for Counter {
            fn capture(&self, w: &mut StateWriter) {
                w.u64("count", self.0);
            }
            fn restore(&mut self, r: &StateReader<'_>) -> Result<(), PersistError> {
                self.0 = r.u64("count")?;
                Ok(())
            }
        }
        let mut w = StateWriter::new();
        w.component("inner", &Counter(41));
        let v = w.finish();
        let r = StateReader::new(&v).unwrap();
        let mut c = Counter(0);
        r.restore_component("inner", &mut c).unwrap();
        assert_eq!(c.0, 41);
    }

    #[test]
    fn point_list_roundtrips_and_validates() {
        use crate::point::DataPoint;
        let items = vec![
            (3u64, DataPoint::new(vec![0.25, -0.0])),
            (9, DataPoint::new(vec![f64::INFINITY, 1e-310])),
        ];
        let mut w = StateWriter::new();
        w.point_list("pts", &items);
        w.point_list("empty", &[]);
        let v = w.finish();
        let r = StateReader::new(&v).unwrap();
        let back = r.point_list("pts", Some(2)).unwrap();
        assert_eq!(back.len(), 2);
        for ((ta, pa), (tb, pb)) in items.iter().zip(&back) {
            assert_eq!(ta, tb);
            for (a, b) in pa.values().iter().zip(pb.values()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert!(r.point_list("empty", Some(5)).unwrap().is_empty());
        // Dimensionality mismatches fail at decode time.
        assert!(r.point_list("pts", Some(3)).is_err());
        // dims = 0 with non-empty ticks is rejected, not silently dropped.
        let mut w = StateWriter::new();
        w.nested("bad", |w| {
            w.u64("dims", 0);
            w.u64_col("ticks", [1u64]);
            w.f64_bits_col("values", []);
        });
        let v = w.finish();
        let r = StateReader::new(&v).unwrap();
        assert!(r.point_list("bad", None).is_err());
    }

    #[test]
    fn lanes_roundtrip_bit_exact_and_bound_check() {
        let mut buf = Vec::new();
        lanes::put_u32(&mut buf, 0xDEAD_BEEF);
        lanes::put_u64(&mut buf, u64::MAX - 7);
        for v in [0.1, -0.0, f64::MIN_POSITIVE / 2.0, f64::INFINITY, 1e308] {
            lanes::put_f64_bits(&mut buf, v);
        }
        assert_eq!(buf.len(), 4 + 8 + 5 * 8);
        assert_eq!(lanes::get_u32(&buf, 0), Some(0xDEAD_BEEF));
        assert_eq!(lanes::get_u64(&buf, 4), Some(u64::MAX - 7));
        let back = lanes::get_f64_bits(&buf, 12).unwrap();
        assert_eq!(back.to_bits(), 0.1f64.to_bits());
        assert_eq!(
            lanes::get_f64_bits(&buf, 20).unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
        // Reads past the end (or overflowing offsets) are None, not panics.
        assert_eq!(lanes::get_u64(&buf, buf.len() - 7), None);
        assert_eq!(lanes::get_u32(&buf, usize::MAX), None);
        assert_eq!(lanes::get_u64(&buf, usize::MAX - 3), None);
    }

    #[test]
    fn fnv1a64_is_stable_and_sensitive() {
        // Reference vectors for the canonical FNV-1a 64 parameters.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        // A single flipped bit anywhere changes the hash.
        let base = b"[42,7,9]".to_vec();
        let want = fnv1a64(&base);
        for i in 0..base.len() * 8 {
            let mut flipped = base.clone();
            flipped[i / 8] ^= 1 << (i % 8);
            assert_ne!(fnv1a64(&flipped), want, "bit {i}");
        }
    }

    #[test]
    fn persist_error_maps_to_spot_error() {
        let e: SpotError = PersistError::custom("bad").into();
        assert!(matches!(e, SpotError::SnapshotCorrupt(_)));
    }

    fn sample_tree() -> Value {
        let mut w = StateWriter::new();
        w.u64("count", u64::MAX);
        w.bool("warm", true);
        w.f64_bits("thresh", -0.0);
        w.value("label", Value::Str("detector/α\n\"q\"".into()));
        w.value("neg", Value::I64(-40));
        w.value("pi", Value::F64(3.25));
        w.value("nil", Value::Null);
        w.u64_col("empty", []);
        w.u64_col("ticks", (0..300).map(|i| 1_000 + i * 3));
        w.f64_bits_col("moments", [0.1, -0.0, f64::INFINITY, 1e-310, 1e308]);
        w.u128_col("keys", [0u128, u128::MAX, (7u128 << 64) | 9]);
        w.u64_col("mask", std::iter::repeat_n(0xfeed, 40));
        w.nested("inner", |w| {
            w.u64_col("small", [1, 2, 3]);
            w.value(
                "mixed",
                Value::Array(vec![Value::U64(1), Value::Str("x".into())]),
            );
        });
        w.finish()
    }

    #[test]
    fn binary_roundtrip_preserves_tree_equality() {
        let tree = sample_tree();
        let mut payload = Vec::new();
        binary::encode(&tree, &mut payload);
        let back = binary::decode(&payload).unwrap();
        // U64Col/Array bridging makes this equality carrier-independent.
        assert_eq!(back, tree);
        // Columns decode packed; readers accept them transparently.
        let r = StateReader::new(&back).unwrap();
        assert_eq!(r.u64_col("ticks").unwrap().len(), 300);
        assert_eq!(
            r.u128_col("keys").unwrap(),
            vec![0u128, u128::MAX, (7u128 << 64) | 9]
        );
        assert_eq!(
            r.f64_bits_col("moments").unwrap()[1].to_bits(),
            (-0.0f64).to_bits()
        );
        // Encoding the decoded tree is a byte-level fixed point.
        let mut again = Vec::new();
        binary::encode(&back, &mut again);
        assert_eq!(again, payload);
    }

    #[test]
    fn binary_column_modes_cover_raw_varint_delta_const() {
        // Each column shape must round-trip regardless of which mode the
        // chooser picks, and the obvious shapes should pick the small one.
        let cases: Vec<Vec<u64>> = vec![
            [0.1f64, 1e308, -3.5, f64::MIN_POSITIVE]
                .iter()
                .map(|f| f.to_bits())
                .collect(), // incompressible → RAW
            (0..500).map(|i| i % 7).collect(), // small values → VARINT
            (0..500).map(|i| 1_000_000 + i * 5).collect(), // monotone → DELTA
            vec![42; 256],                     // all equal → CONST
            vec![u64::MAX],                    // single entry
            (0..500)
                .map(|i| (100.0 + (i % 13) as f64 * 0.25).to_bits())
                .collect(), // slow-moving floats → GORILLA
        ];
        for col in cases {
            let tree = Value::Object(vec![("c".into(), Value::U64Col(col.clone()))]);
            let mut payload = Vec::new();
            binary::encode(&tree, &mut payload);
            let back = binary::decode(&payload).unwrap();
            let r = StateReader::new(&back).unwrap();
            assert_eq!(r.u64_col("c").unwrap(), col);
        }
        // CONST actually compresses: 256 equal entries ≈ a dozen bytes.
        let tree = Value::U64Col(vec![42; 256]);
        let mut payload = Vec::new();
        binary::encode(&tree, &mut payload);
        assert!(payload.len() < 20, "const column took {}", payload.len());
    }

    #[test]
    fn binary_gorilla_compresses_slow_moving_floats() {
        // Neighbouring decayed counts share sign, exponent and the high
        // mantissa bytes; the XOR-prev lanes must beat the 8-byte RAW
        // rate on such a column and still round-trip exactly.
        let col: Vec<u64> = (0..512)
            .map(|i| (1000.0 + (i % 29) as f64).to_bits())
            .collect();
        let tree = Value::U64Col(col.clone());
        let mut payload = Vec::new();
        binary::encode(&tree, &mut payload);
        assert!(
            payload.len() < col.len() * 8,
            "gorilla column took {} bytes for {} raw",
            payload.len(),
            col.len() * 8
        );
        assert!(matches!(binary::decode(&payload).unwrap(), Value::U64Col(c) if c == col));
        // NaN payloads, signed zeros and infinities are bit patterns like
        // any other: a value-level round-trip must be exact.
        let specials: Vec<u64> = [0.0f64, -0.0, f64::INFINITY, f64::NEG_INFINITY]
            .iter()
            .map(|f| f.to_bits())
            .chain([f64::NAN.to_bits() | 0xdead, 0, u64::MAX])
            .flat_map(|b| std::iter::repeat_n(b, 40))
            .collect();
        let mut payload = Vec::new();
        binary::encode(&Value::U64Col(specials.clone()), &mut payload);
        assert!(matches!(binary::decode(&payload).unwrap(), Value::U64Col(c) if c == specials));
    }

    #[test]
    fn binary_gorilla_rejects_malformed_lanes() {
        // Column tag, len 2, gorilla mode, then a lane header claiming
        // more than 8 zero bytes: typed error, no panic.
        assert!(binary::decode(&[9u8, 2, 4, 0x99]).is_err());
        // Valid first lane (8 leading zero bytes = value 0), then a
        // truncated second lane: header promises 8 middle bytes that are
        // not there.
        assert!(binary::decode(&[9u8, 2, 4, 0x80, 0x00, 1, 2]).is_err());
        // Missing header for the second lane entirely.
        assert!(binary::decode(&[9u8, 2, 4, 0x80]).is_err());
    }

    #[test]
    fn binary_array_of_u64_takes_column_tag() {
        // A boxed array of u64 (what a JSON parse yields) and the packed
        // column encode to identical bytes.
        let boxed = Value::Array((0..50).map(Value::U64).collect());
        let packed = Value::U64Col((0..50).collect());
        let mut a = Vec::new();
        let mut b = Vec::new();
        binary::encode(&boxed, &mut a);
        binary::encode(&packed, &mut b);
        assert_eq!(a, b);
        assert!(matches!(binary::decode(&a).unwrap(), Value::U64Col(_)));
        // Empty columns stay on the generic array tag → decode to Array.
        let mut e = Vec::new();
        binary::encode(&Value::U64Col(Vec::new()), &mut e);
        assert!(matches!(binary::decode(&e).unwrap(), Value::Array(_)));
    }

    #[test]
    fn binary_container_detects_truncation_and_bit_flips() {
        let tree = sample_tree();
        let frame = binary::encode_container(&tree);
        assert!(binary::is_container(&frame));
        assert_eq!(binary::read_container(&frame).unwrap(), tree);
        // Truncation at every prefix length: typed error, never a panic.
        for cut in 0..frame.len() {
            assert!(binary::read_container(&frame[..cut]).is_err(), "cut {cut}");
        }
        // A single flipped bit anywhere in the frame is detected.
        for at in (0..frame.len()).step_by(7) {
            let mut bad = frame.clone();
            bad[at] ^= 0x10;
            assert!(binary::read_container(&bad).is_err(), "flip at {at}");
        }
    }

    #[test]
    fn binary_decode_rejects_malformed_payloads() {
        // Unknown tag.
        assert!(binary::decode(&[0xEE]).is_err());
        // Huge array count with no body must fail before allocating.
        let mut huge = vec![7u8]; // T_ARRAY
        huge.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]);
        assert!(binary::decode(&huge).is_err());
        // Zero-length column tag is invalid (empty columns use the array tag).
        assert!(binary::decode(&[9u8, 0]).is_err());
        // Unknown column mode.
        assert!(binary::decode(&[9u8, 1, 9, 1, 0, 0, 0, 0, 0, 0, 0]).is_err());
        // Trailing garbage after a complete value.
        assert!(binary::decode(&[0u8, 0u8]).is_err());
        // Deep nesting is capped, not a stack overflow.
        let mut deep = Vec::new();
        for _ in 0..500 {
            deep.push(7u8); // T_ARRAY
            deep.push(1u8); // count 1
        }
        deep.push(0u8);
        assert!(binary::decode(&deep).is_err());
    }

    #[test]
    fn checksum64_streams_identically_to_one_shot() {
        let data: Vec<u8> = (0..1021u32).map(|i| (i * 31 % 251) as u8).collect();
        let one = binary::checksum64(&data);
        for split in [0, 1, 7, 8, 9, 500, data.len()] {
            let mut c = binary::Checksum64::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), one, "split {split}");
        }
        // Length is folded: zero-padding is not invisible.
        assert_ne!(binary::checksum64(&[0u8; 8]), binary::checksum64(&[0u8; 9]));
        assert_ne!(binary::checksum64(b""), binary::checksum64(&[0u8]));
    }
}
