//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, SpotError>;

/// Errors surfaced by the SPOT library and its substrates.
#[derive(Debug, Clone, PartialEq)]
pub enum SpotError {
    /// A point or vector had the wrong dimensionality.
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Dimensionality that was supplied.
        got: usize,
    },
    /// A configuration value is out of its valid range.
    InvalidConfig(String),
    /// The learning stage was given no training data.
    EmptyTrainingSet,
    /// Dimensionality exceeds the 64-dimension limit of the bitmask
    /// subspace representation.
    TooManyDimensions(usize),
    /// Learning has not been run before detection.
    NotLearned,
    /// An I/O or parsing problem while loading/saving datasets.
    Io(String),
    /// A point carried a NaN attribute value. NaN cannot be ordered into a
    /// grid interval, so admitting it would silently file corrupt readings
    /// as interval-0 inliers; ingestion rejects it instead. (Infinities are
    /// fine: they clamp into the boundary cells like any out-of-range
    /// value.)
    NonFiniteValue {
        /// Dimension holding the NaN.
        dim: usize,
    },
    /// A snapshot declared a format version this build does not know how to
    /// restore (newer than this code, or garbage).
    UnsupportedSnapshotVersion(u32),
    /// A snapshot parsed but its payload does not describe a valid engine
    /// state (missing field, wrong shape, inconsistent columns).
    SnapshotCorrupt(String),
    /// A fleet operation named a tenant the registry does not hold.
    UnknownTenant(String),
    /// A tenant registration reused a name already in the registry.
    DuplicateTenant(String),
    /// A write-ahead-log segment is structurally damaged beyond the
    /// torn-tail cases recovery repairs silently: a checksum-valid record
    /// with an undecodable payload, a sequence-number discontinuity, or
    /// corruption in a *sealed* (non-final) segment. A half-written final
    /// record is **not** an error — replay truncates it (see
    /// `docs/persistence.md` § "The ingestion WAL").
    WalCorrupt(String),
    /// The fleet's admission gates are closed for a graceful shutdown:
    /// every new `ingest`/`process` call is rejected so the drain phase
    /// sees a frozen backlog. Queued points are still drained and
    /// checkpointed — nothing already admitted is lost. Clients should
    /// back off and retry against the restarted service (the HTTP front
    /// end maps this to `503` with `Connection: close`).
    ShuttingDown,
    /// A tenant's detector panicked mid-operation and was quarantined: its
    /// in-memory state can no longer be trusted (the panic may have left a
    /// half-committed batch behind a bypassed lock). Operations on the
    /// tenant fail with this error until it is restored from a known-good
    /// checkpoint. Carries the panic payload rendered to text.
    TenantPoisoned {
        /// The quarantined tenant.
        tenant: String,
        /// The panic payload (`&str`/`String` payloads verbatim, otherwise
        /// a type description).
        panic: String,
    },
}

impl fmt::Display for SpotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpotError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            SpotError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SpotError::EmptyTrainingSet => write!(f, "training set is empty"),
            SpotError::TooManyDimensions(d) => {
                write!(
                    f,
                    "{d} dimensions exceed the 64-dimension subspace bitmask limit"
                )
            }
            SpotError::NotLearned => {
                write!(f, "detection stage invoked before the learning stage")
            }
            SpotError::Io(msg) => write!(f, "I/O error: {msg}"),
            SpotError::NonFiniteValue { dim } => {
                write!(f, "attribute {dim} is NaN; stream values must be non-NaN")
            }
            SpotError::UnsupportedSnapshotVersion(v) => {
                write!(f, "snapshot format version {v} is not supported")
            }
            SpotError::SnapshotCorrupt(msg) => write!(f, "snapshot corrupt: {msg}"),
            SpotError::WalCorrupt(msg) => write!(f, "write-ahead log corrupt: {msg}"),
            SpotError::UnknownTenant(id) => write!(f, "unknown tenant {id:?}"),
            SpotError::DuplicateTenant(id) => {
                write!(f, "tenant {id:?} is already registered")
            }
            SpotError::ShuttingDown => {
                write!(f, "the fleet is shutting down; ingestion is gated")
            }
            SpotError::TenantPoisoned { tenant, panic } => {
                write!(f, "tenant {tenant:?} is quarantined after a panic: {panic}")
            }
        }
    }
}

impl std::error::Error for SpotError {}

impl From<std::io::Error> for SpotError {
    fn from(e: std::io::Error) -> Self {
        SpotError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SpotError::DimensionMismatch {
            expected: 3,
            got: 5,
        };
        assert!(e.to_string().contains("expected 3"));
        assert!(SpotError::EmptyTrainingSet.to_string().contains("empty"));
        assert!(SpotError::TooManyDimensions(70).to_string().contains("70"));
        assert!(SpotError::NotLearned.to_string().contains("learning"));
        assert!(SpotError::WalCorrupt("seq gap".to_string())
            .to_string()
            .contains("seq gap"));
        assert!(SpotError::NonFiniteValue { dim: 2 }
            .to_string()
            .contains("2"));
        assert!(SpotError::ShuttingDown
            .to_string()
            .contains("shutting down"));
        let e = SpotError::TenantPoisoned {
            tenant: "t9".to_string(),
            panic: "boom".to_string(),
        };
        assert!(e.to_string().contains("t9"));
        assert!(e.to_string().contains("boom"));
        assert!(e.to_string().contains("quarantined"));
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: SpotError = io.into();
        assert!(matches!(e, SpotError::Io(_)));
    }
}
