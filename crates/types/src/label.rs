//! Ground-truth labels for evaluation.

use serde::{Deserialize, Serialize};

/// Ground-truth description of an anomalous record.
///
/// `true_subspace` stores the dimensions in which the anomaly was planted as
/// a raw bitmask (bit `i` set ⇔ dimension `i` participates). It is kept as a
/// plain `u64` here so that `spot-types` stays dependency-free; the
/// `spot-subspace` crate converts it to its `Subspace` type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnomalyInfo {
    /// Anomaly family, e.g. `"dos"`, `"probe"`, `"cluster-edge"`.
    pub category: String,
    /// Bitmask of the dimensions of the planted outlying subspace, when the
    /// generator knows it.
    pub true_subspace: Option<u64>,
}

impl AnomalyInfo {
    /// An anomaly with a category but no known outlying subspace.
    pub fn category(category: impl Into<String>) -> Self {
        AnomalyInfo {
            category: category.into(),
            true_subspace: None,
        }
    }

    /// An anomaly with a category and a known outlying-subspace bitmask.
    pub fn with_subspace(category: impl Into<String>, mask: u64) -> Self {
        AnomalyInfo {
            category: category.into(),
            true_subspace: Some(mask),
        }
    }
}

/// Ground-truth label of a stream record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Label {
    /// A regular point.
    Normal,
    /// A planted anomaly.
    Anomaly(AnomalyInfo),
}

impl Label {
    /// `true` for [`Label::Anomaly`].
    pub fn is_anomaly(&self) -> bool {
        matches!(self, Label::Anomaly(_))
    }

    /// Anomaly details when present.
    pub fn anomaly(&self) -> Option<&AnomalyInfo> {
        match self {
            Label::Normal => None,
            Label::Anomaly(info) => Some(info),
        }
    }

    /// Category string, `"normal"` for regular points.
    pub fn category(&self) -> &str {
        match self {
            Label::Normal => "normal",
            Label::Anomaly(info) => &info.category,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_label() {
        let l = Label::Normal;
        assert!(!l.is_anomaly());
        assert!(l.anomaly().is_none());
        assert_eq!(l.category(), "normal");
    }

    #[test]
    fn anomaly_label_with_subspace() {
        let l = Label::Anomaly(AnomalyInfo::with_subspace("dos", 0b101));
        assert!(l.is_anomaly());
        assert_eq!(l.category(), "dos");
        assert_eq!(l.anomaly().unwrap().true_subspace, Some(0b101));
    }

    #[test]
    fn anomaly_label_without_subspace() {
        let l = Label::Anomaly(AnomalyInfo::category("probe"));
        assert_eq!(l.anomaly().unwrap().true_subspace, None);
    }
}
