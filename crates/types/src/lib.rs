//! Core data types shared by every crate in the SPOT workspace.
//!
//! SPOT ("Stream Projected Outlier deTector", Zhang/Gao/Wang, ICDE 2008)
//! labels each point of a high-dimensional data stream as a regular point or
//! a *projected outlier* — a point that is abnormal inside some
//! low-dimensional projection of the attribute space. This crate holds the
//! vocabulary types for that task: [`DataPoint`], [`StreamRecord`],
//! [`Label`], domain [`bounds::DomainBounds`], the [`StreamDetector`] trait
//! implemented by SPOT and by every baseline detector, numeric helpers, and
//! a fast non-cryptographic hasher used by the hot cell stores.

pub mod bounds;
pub mod error;
pub mod fxhash;
pub mod label;
pub mod persist;
pub mod point;
pub mod stats;
pub mod tenant;

pub use bounds::DomainBounds;
pub use error::{Result, SpotError};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use label::{AnomalyInfo, Label};
pub use persist::{fnv1a64, DurableState, PersistError, StateReader, StateWriter};
pub use point::{DataPoint, LabeledRecord, StreamRecord};
pub use tenant::TenantId;

/// Verdict produced by a generic stream detector for a single point.
///
/// SPOT itself produces a richer, subspace-annotated verdict (see the `spot`
/// crate); this type is the common denominator used to compare SPOT with
/// full-space baselines on equal footing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// `true` when the detector flags the point as an outlier.
    pub outlier: bool,
    /// Anomaly score — larger means more anomalous. Detectors normalize
    /// their internal measure so scores are comparable across points of the
    /// same run (not across detectors).
    pub score: f64,
}

impl Detection {
    /// A non-outlier verdict with the given score.
    pub fn inlier(score: f64) -> Self {
        Detection {
            outlier: false,
            score,
        }
    }

    /// An outlier verdict with the given score.
    pub fn outlier(score: f64) -> Self {
        Detection {
            outlier: true,
            score,
        }
    }
}

/// One-pass stream outlier detector interface.
///
/// The contract mirrors SPOT's two stages: [`StreamDetector::learn`] is the
/// offline learning stage over a training batch; [`StreamDetector::process`]
/// is the online detection stage and must be callable for every arriving
/// point with amortized O(synopsis) cost and no access to past raw points.
pub trait StreamDetector {
    /// Offline learning stage. Called once before processing the stream.
    fn learn(&mut self, training: &[DataPoint]) -> Result<()>;

    /// Online detection stage: ingest one point, update internal synopses
    /// and return the verdict for this point.
    fn process(&mut self, point: &DataPoint) -> Detection;

    /// Human-readable detector name used in experiment tables.
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_constructors() {
        let d = Detection::inlier(0.25);
        assert!(!d.outlier);
        assert!((d.score - 0.25).abs() < 1e-12);
        let d = Detection::outlier(0.9);
        assert!(d.outlier);
    }
}
