//! Small numeric helpers shared by the substrates.

/// Online mean/variance accumulator (Welford's algorithm).
///
/// Used wherever a running estimate is needed without storing samples —
/// e.g. the concept-drift detector's baseline statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator (Chan et al. parallel formula).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
    }
}

/// Mean of a slice; 0 when empty.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance of a slice; 0 when fewer than two values.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Binomial coefficient C(n, k) computed in u128 to avoid overflow for the
/// subspace lattice sizes used by SPOT (n ≤ 64).
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
    }
    acc
}

/// Linear interpolation `a + t (b − a)`.
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + t * (b - a)
}

/// The `q`-quantile (0 ≤ q ≤ 1) of an unsorted slice, by sorting a copy and
/// linearly interpolating between order statistics. Returns 0 when empty.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in quantile input"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        lerp(v[lo], v[hi], pos - lo as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert!((rs.mean() - mean(&xs)).abs() < 1e-12);
        assert!((rs.variance() - variance(&xs)).abs() < 1e-12);
        assert_eq!(rs.count(), 5);
    }

    #[test]
    fn welford_merge_matches_sequential() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [7.0, 8.0, 9.0, 10.0];
        let mut a = RunningStats::new();
        xs.iter().for_each(|&x| a.push(x));
        let mut b = RunningStats::new();
        ys.iter().for_each(|&y| b.push(y));
        let mut all = RunningStats::new();
        xs.iter().chain(ys.iter()).for_each(|&x| all.push(x));
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut empty = RunningStats::new();
        let mut a = RunningStats::new();
        a.push(5.0);
        empty.merge(&a);
        assert_eq!(empty.count(), 1);
        let mut b = a.clone();
        b.merge(&RunningStats::new());
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(64, 32), 1_832_624_140_942_590_534);
        assert_eq!(binomial(4, 5), 0);
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((quantile(&xs, 1.0) - 4.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn variance_edge_cases() {
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
    }
}
