//! A small, fast, non-cryptographic hasher for the hot cell stores.
//!
//! The default `std` hasher (SipHash 1-3) is DoS-resistant but slow for the
//! short integer keys that dominate SPOT's synopsis maintenance (cell
//! coordinates are a handful of `u16`s, subspaces are a single `u64`).
//! Following the Rust Performance Book's guidance, this module implements
//! the multiply-rotate scheme popularized by rustc's `FxHasher` in-tree,
//! avoiding an extra dependency. HashDoS is not a concern: keys are derived
//! from numeric stream data, not attacker-controlled strings.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Multiply-rotate hasher (rustc's Fx scheme).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("chunk of 8")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(tail) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&vec![1u16, 2, 3]), hash_of(&vec![1u16, 2, 3]));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&[1u16, 2]), hash_of(&[2u16, 1]));
        // Length is mixed into the tail so prefixes differ.
        assert_ne!(hash_of(&b"ab".to_vec()), hash_of(&b"ab\0".to_vec()));
    }

    #[test]
    fn usable_in_hashmap() {
        let mut m: FxHashMap<Vec<u16>, u32> = FxHashMap::default();
        m.insert(vec![1, 2, 3], 7);
        m.insert(vec![3, 2, 1], 8);
        assert_eq!(m[&vec![1, 2, 3][..].to_vec()], 7);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn spread_over_buckets_is_reasonable() {
        // 10k sequential keys should not collapse onto a few hash values.
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        for i in 0..10_000u64 {
            seen.insert(hash_of(&i));
        }
        assert!(seen.len() > 9_990, "too many collisions: {}", seen.len());
    }
}
