//! Deduplicated subspace collections.
//!
//! [`SubspaceSet`] is an insertion-ordered set used for FS. The SST's CS and
//! OS components additionally carry a score per subspace and a capacity
//! (weakest-score eviction) — that is [`RankedSubspaces`].

use crate::subspace::Subspace;
use serde::{Deserialize, Serialize};
use spot_types::FxHashSet;

/// Insertion-ordered set of distinct subspaces.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SubspaceSet {
    order: Vec<Subspace>,
    #[serde(skip)]
    seen: FxHashSet<u64>,
}

impl SubspaceSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from an iterator, dropping duplicates.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = Subspace>>(iter: I) -> Self {
        let mut set = Self::new();
        for s in iter {
            set.insert(s);
        }
        set
    }

    /// Inserts a subspace; returns `false` if it was already present.
    pub fn insert(&mut self, s: Subspace) -> bool {
        if self.seen.insert(s.mask()) {
            self.order.push(s);
            true
        } else {
            false
        }
    }

    /// `true` when the subspace is present.
    pub fn contains(&self, s: &Subspace) -> bool {
        self.seen.contains(&s.mask())
    }

    /// Number of subspaces.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Iterates in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Subspace> {
        self.order.iter()
    }

    /// Subspaces as a slice, in insertion order.
    pub fn as_slice(&self) -> &[Subspace] {
        &self.order
    }

    /// Rebuilds the dedup index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.seen = self.order.iter().map(|s| s.mask()).collect();
    }
}

/// A subspace with the score that ranked it into CS/OS. Smaller scores are
/// better (scores are sparsity objectives, minimized).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoredSubspace {
    /// The subspace.
    pub subspace: Subspace,
    /// Ranking score; smaller = sparser = better.
    pub score: f64,
}

/// Capacity-bounded, score-ranked subspace set.
///
/// Keeps at most `capacity` subspaces; inserting into a full set evicts the
/// worst (largest) score if the newcomer beats it. Duplicate insertions keep
/// the better score.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankedSubspaces {
    capacity: usize,
    entries: Vec<ScoredSubspace>,
}

impl RankedSubspaces {
    /// Empty ranked set with the given capacity (≥ 1).
    pub fn new(capacity: usize) -> Self {
        RankedSubspaces {
            capacity: capacity.max(1),
            entries: Vec::new(),
        }
    }

    /// Capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of subspaces currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts (or improves) a subspace with the given score. Returns `true`
    /// when the set changed.
    pub fn insert(&mut self, subspace: Subspace, score: f64) -> bool {
        if let Some(existing) = self.entries.iter_mut().find(|e| e.subspace == subspace) {
            if score < existing.score {
                existing.score = score;
                self.sort();
                return true;
            }
            return false;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(ScoredSubspace { subspace, score });
            self.sort();
            return true;
        }
        let worst = self.entries.last().expect("capacity >= 1 and set full");
        if score < worst.score {
            *self.entries.last_mut().expect("non-empty") = ScoredSubspace { subspace, score };
            self.sort();
            return true;
        }
        false
    }

    /// Replaces the whole content with the top-`capacity` of the supplied
    /// entries (used by CS self-evolution's re-ranking step).
    pub fn rerank<I: IntoIterator<Item = ScoredSubspace>>(&mut self, entries: I) {
        let mut all: Vec<ScoredSubspace> = Vec::new();
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        for e in entries {
            if seen.insert(e.subspace.mask()) {
                all.push(e);
            } else if let Some(prev) = all.iter_mut().find(|p| p.subspace == e.subspace) {
                if e.score < prev.score {
                    prev.score = e.score;
                }
            }
        }
        all.sort_by(|a, b| a.score.partial_cmp(&b.score).expect("scores are not NaN"));
        all.truncate(self.capacity);
        self.entries = all;
    }

    /// Iterates best-score first.
    pub fn iter(&self) -> impl Iterator<Item = &ScoredSubspace> {
        self.entries.iter()
    }

    /// Subspaces only, best first.
    pub fn subspaces(&self) -> impl Iterator<Item = Subspace> + '_ {
        self.entries.iter().map(|e| e.subspace)
    }

    /// `true` when the subspace is present.
    pub fn contains(&self, s: &Subspace) -> bool {
        self.entries.iter().any(|e| e.subspace == *s)
    }

    fn sort(&mut self) {
        self.entries
            .sort_by(|a, b| a.score.partial_cmp(&b.score).expect("scores are not NaN"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(dims: &[usize]) -> Subspace {
        Subspace::from_dims(dims.iter().copied()).unwrap()
    }

    #[test]
    fn subspace_set_dedups_preserving_order() {
        let mut set = SubspaceSet::new();
        assert!(set.insert(s(&[0])));
        assert!(set.insert(s(&[1])));
        assert!(!set.insert(s(&[0])));
        assert_eq!(set.len(), 2);
        assert_eq!(set.as_slice(), &[s(&[0]), s(&[1])]);
        assert!(set.contains(&s(&[1])));
        assert!(!set.contains(&s(&[2])));
    }

    #[test]
    fn subspace_set_from_iter() {
        let set = SubspaceSet::from_iter([s(&[0]), s(&[0]), s(&[1])]);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
    }

    #[test]
    fn rebuild_index_after_manual_state() {
        let mut set = SubspaceSet::from_iter([s(&[0]), s(&[1])]);
        set.seen.clear(); // simulate post-deserialization state
        set.rebuild_index();
        assert!(set.contains(&s(&[1])));
    }

    #[test]
    fn ranked_keeps_best_under_capacity_pressure() {
        let mut r = RankedSubspaces::new(2);
        assert!(r.insert(s(&[0]), 0.5));
        assert!(r.insert(s(&[1]), 0.2));
        assert!(r.insert(s(&[2]), 0.1)); // evicts [0]
        assert_eq!(r.len(), 2);
        let masks: Vec<_> = r.subspaces().collect();
        assert_eq!(masks, vec![s(&[2]), s(&[1])]);
        // Worse than current worst: rejected.
        assert!(!r.insert(s(&[3]), 0.9));
    }

    #[test]
    fn ranked_improves_duplicate_score() {
        let mut r = RankedSubspaces::new(4);
        r.insert(s(&[0]), 0.5);
        assert!(r.insert(s(&[0]), 0.3));
        assert!(!r.insert(s(&[0]), 0.4));
        assert_eq!(r.len(), 1);
        assert!((r.iter().next().unwrap().score - 0.3).abs() < 1e-12);
    }

    #[test]
    fn rerank_replaces_content() {
        let mut r = RankedSubspaces::new(2);
        r.insert(s(&[0]), 0.5);
        r.rerank(vec![
            ScoredSubspace {
                subspace: s(&[1]),
                score: 0.3,
            },
            ScoredSubspace {
                subspace: s(&[2]),
                score: 0.1,
            },
            ScoredSubspace {
                subspace: s(&[3]),
                score: 0.2,
            },
            ScoredSubspace {
                subspace: s(&[2]),
                score: 0.4,
            }, // duplicate, worse
        ]);
        let got: Vec<_> = r.subspaces().collect();
        assert_eq!(got, vec![s(&[2]), s(&[3])]);
    }

    #[test]
    fn capacity_minimum_is_one() {
        let mut r = RankedSubspaces::new(0);
        assert_eq!(r.capacity(), 1);
        r.insert(s(&[0]), 1.0);
        r.insert(s(&[1]), 0.5);
        assert_eq!(r.len(), 1);
        assert!(r.contains(&s(&[1])));
    }
}
