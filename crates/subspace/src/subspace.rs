//! The bitmask subspace type.

use serde::{Deserialize, Serialize};
use spot_types::{Result, SpotError};
use std::fmt;

/// Maximum dimensionality representable by the bitmask encoding.
pub const MAX_DIMS: usize = 64;

/// A non-empty subset of attributes, encoded as a `u64` bitmask.
///
/// The encoding caps SPOT at 64 attributes, comfortably above the "dozens
/// of, even hundreds of" attributes regime the paper motivates for its
/// evaluation (the experiments there use up to a few dozen). Bit `i`
/// corresponds to attribute `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Subspace(u64);

impl Subspace {
    /// Creates a subspace from a raw bitmask. Fails on the empty mask: a
    /// projected cell needs at least one attribute.
    pub fn from_mask(mask: u64) -> Result<Self> {
        if mask == 0 {
            return Err(SpotError::InvalidConfig(
                "subspace mask must be non-empty".into(),
            ));
        }
        Ok(Subspace(mask))
    }

    /// Creates a subspace from a list of attribute indices.
    pub fn from_dims<I: IntoIterator<Item = usize>>(dims: I) -> Result<Self> {
        let mut mask = 0u64;
        for d in dims {
            if d >= MAX_DIMS {
                return Err(SpotError::TooManyDimensions(d + 1));
            }
            mask |= 1u64 << d;
        }
        Subspace::from_mask(mask)
    }

    /// The single-attribute subspace `{dim}`.
    pub fn single(dim: usize) -> Result<Self> {
        Subspace::from_dims([dim])
    }

    /// The full space over `phi` attributes.
    pub fn full(phi: usize) -> Result<Self> {
        if phi == 0 || phi > MAX_DIMS {
            return Err(SpotError::TooManyDimensions(phi));
        }
        let mask = if phi == MAX_DIMS {
            u64::MAX
        } else {
            (1u64 << phi) - 1
        };
        Ok(Subspace(mask))
    }

    /// Raw bitmask.
    #[inline]
    pub fn mask(&self) -> u64 {
        self.0
    }

    /// Number of participating attributes (the subspace's dimensionality).
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` when attribute `dim` participates.
    #[inline]
    pub fn contains_dim(&self, dim: usize) -> bool {
        dim < MAX_DIMS && (self.0 >> dim) & 1 == 1
    }

    /// Iterator over the participating attribute indices, ascending.
    #[inline]
    pub fn dims(&self) -> DimIter {
        DimIter(self.0)
    }

    /// `true` when `self ⊆ other`.
    pub fn is_subset_of(&self, other: &Subspace) -> bool {
        self.0 & other.0 == self.0
    }

    /// Union of the attribute sets (always non-empty).
    pub fn union(&self, other: &Subspace) -> Subspace {
        Subspace(self.0 | other.0)
    }

    /// Intersection; `None` when the subspaces are disjoint.
    pub fn intersection(&self, other: &Subspace) -> Option<Subspace> {
        let m = self.0 & other.0;
        (m != 0).then_some(Subspace(m))
    }

    /// `true` when every participating attribute is below `phi` — i.e. the
    /// subspace is valid for a ϕ-dimensional stream.
    pub fn fits(&self, phi: usize) -> bool {
        if phi >= MAX_DIMS {
            return true;
        }
        self.0 >> phi == 0
    }

    /// Jaccard similarity of the attribute sets of two subspaces.
    pub fn jaccard(&self, other: &Subspace) -> f64 {
        let inter = (self.0 & other.0).count_ones() as f64;
        let union = (self.0 | other.0).count_ones() as f64;
        inter / union
    }
}

impl fmt::Display for Subspace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// Iterator over the set bits of a subspace mask, ascending.
#[derive(Debug, Clone)]
pub struct DimIter(u64);

impl Iterator for DimIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let d = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1; // clear lowest set bit
        Some(d)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for DimIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_accessors() {
        let s = Subspace::from_dims([0, 3, 7]).unwrap();
        assert_eq!(s.cardinality(), 3);
        assert!(s.contains_dim(3));
        assert!(!s.contains_dim(1));
        assert_eq!(s.dims().collect::<Vec<_>>(), vec![0, 3, 7]);
        assert_eq!(s.to_string(), "[0,3,7]");
    }

    #[test]
    fn empty_mask_rejected() {
        assert!(Subspace::from_mask(0).is_err());
        assert!(Subspace::from_dims(std::iter::empty()).is_err());
    }

    #[test]
    fn out_of_range_dim_rejected() {
        assert!(Subspace::from_dims([64]).is_err());
        assert!(Subspace::from_dims([63]).is_ok());
    }

    #[test]
    fn full_space() {
        let s = Subspace::full(5).unwrap();
        assert_eq!(s.cardinality(), 5);
        let s64 = Subspace::full(64).unwrap();
        assert_eq!(s64.cardinality(), 64);
        assert!(Subspace::full(0).is_err());
        assert!(Subspace::full(65).is_err());
    }

    #[test]
    fn subset_union_intersection() {
        let a = Subspace::from_dims([0, 1]).unwrap();
        let b = Subspace::from_dims([0, 1, 2]).unwrap();
        let c = Subspace::from_dims([5]).unwrap();
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert_eq!(a.union(&c).dims().collect::<Vec<_>>(), vec![0, 1, 5]);
        assert_eq!(a.intersection(&b), Some(a));
        assert_eq!(a.intersection(&c), None);
    }

    #[test]
    fn fits_checks_phi() {
        let s = Subspace::from_dims([0, 9]).unwrap();
        assert!(s.fits(10));
        assert!(!s.fits(9));
        assert!(s.fits(64));
    }

    #[test]
    fn jaccard_values() {
        let a = Subspace::from_dims([0, 1, 2]).unwrap();
        let b = Subspace::from_dims([1, 2, 3]).unwrap();
        assert!((a.jaccard(&b) - 0.5).abs() < 1e-12);
        assert!((a.jaccard(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_dim() {
        let s = Subspace::single(7).unwrap();
        assert_eq!(s.mask(), 1 << 7);
    }

    proptest! {
        #[test]
        fn dims_roundtrip(mask in 1u64..) {
            let s = Subspace::from_mask(mask).unwrap();
            let rebuilt = Subspace::from_dims(s.dims()).unwrap();
            prop_assert_eq!(s, rebuilt);
            prop_assert_eq!(s.dims().count(), s.cardinality());
        }

        #[test]
        fn union_is_superset(a in 1u64.., b in 1u64..) {
            let (sa, sb) = (Subspace::from_mask(a).unwrap(), Subspace::from_mask(b).unwrap());
            let u = sa.union(&sb);
            prop_assert!(sa.is_subset_of(&u));
            prop_assert!(sb.is_subset_of(&u));
        }

        #[test]
        fn intersection_is_subset(a in 1u64.., b in 1u64..) {
            let (sa, sb) = (Subspace::from_mask(a).unwrap(), Subspace::from_mask(b).unwrap());
            if let Some(i) = sa.intersection(&sb) {
                prop_assert!(i.is_subset_of(&sa));
                prop_assert!(i.is_subset_of(&sb));
            }
        }

        #[test]
        fn display_parses_back(mask in 1u64..) {
            let s = Subspace::from_mask(mask).unwrap();
            let text = s.to_string();
            let dims: Vec<usize> = text.trim_matches(['[', ']'])
                .split(',')
                .map(|t| t.parse().unwrap())
                .collect();
            prop_assert_eq!(Subspace::from_dims(dims).unwrap(), s);
        }
    }
}
