//! Genetic operators over subspace bitmasks.
//!
//! These are the variation operators used both by the NSGA-II search in
//! `spot-moga` (learning stage) and by the online self-evolution of the
//! Clustering-based SST Subspaces (detection stage): the paper's
//! "crossovering and mutating the top subspaces in the current CS".

use crate::subspace::{Subspace, MAX_DIMS};
use rand::Rng;

/// Masks off bits at or above `phi`.
#[inline]
fn phi_mask(phi: usize) -> u64 {
    if phi >= MAX_DIMS {
        u64::MAX
    } else {
        (1u64 << phi) - 1
    }
}

/// Uniform crossover: each attribute is drawn independently from one of the
/// two parents. The result is repaired to be non-empty and within `phi`.
pub fn uniform_crossover<R: Rng>(a: Subspace, b: Subspace, phi: usize, rng: &mut R) -> Subspace {
    let pick: u64 = rng.gen();
    let child = (a.mask() & pick) | (b.mask() & !pick);
    repair(child, phi, rng)
}

/// One-point crossover on the bit string: low bits from `a`, high bits from
/// `b`, cut at a random position in `1..phi`.
pub fn one_point_crossover<R: Rng>(a: Subspace, b: Subspace, phi: usize, rng: &mut R) -> Subspace {
    let cut = if phi <= 1 { 1 } else { rng.gen_range(1..phi) };
    let low = (1u64 << cut) - 1;
    let child = (a.mask() & low) | (b.mask() & !low);
    repair(child, phi, rng)
}

/// Per-bit mutation: each of the `phi` attribute bits flips with probability
/// `rate`. The result is repaired to be non-empty.
pub fn mutate<R: Rng>(s: Subspace, phi: usize, rate: f64, rng: &mut R) -> Subspace {
    let mut mask = s.mask();
    for d in 0..phi.min(MAX_DIMS) {
        if rng.gen_bool(rate) {
            mask ^= 1u64 << d;
        }
    }
    repair(mask, phi, rng)
}

/// Repairs a raw mask: clears out-of-range bits and, if the mask became
/// empty, re-seeds it with one random attribute.
pub fn repair<R: Rng>(mask: u64, phi: usize, rng: &mut R) -> Subspace {
    let phi = phi.clamp(1, MAX_DIMS);
    let mut mask = mask & phi_mask(phi);
    if mask == 0 {
        mask = 1u64 << rng.gen_range(0..phi);
    }
    Subspace::from_mask(mask).expect("repair always yields non-empty mask")
}

/// Repairs and additionally truncates to at most `max_card` attributes by
/// clearing random set bits. Used when the search is restricted to concise
/// subspaces.
pub fn repair_with_max_card<R: Rng>(
    mask: u64,
    phi: usize,
    max_card: usize,
    rng: &mut R,
) -> Subspace {
    let mut s = repair(mask, phi, rng);
    let max_card = max_card.max(1);
    while s.cardinality() > max_card {
        // Clear a uniformly random set bit.
        let victim_rank = rng.gen_range(0..s.cardinality());
        let dim = s.dims().nth(victim_rank).expect("rank < cardinality");
        let mask = s.mask() & !(1u64 << dim);
        s = Subspace::from_mask(mask).expect("cardinality > max_card >= 1, still non-empty");
    }
    s
}

/// A uniformly random subspace with cardinality in `1..=max_card`.
pub fn random_subspace<R: Rng>(phi: usize, max_card: usize, rng: &mut R) -> Subspace {
    let phi = phi.clamp(1, MAX_DIMS);
    let card = rng.gen_range(1..=max_card.clamp(1, phi));
    // Floyd's algorithm for a random k-subset.
    let mut mask = 0u64;
    for j in (phi - card)..phi {
        let t = rng.gen_range(0..=j);
        if mask >> t & 1 == 0 {
            mask |= 1u64 << t;
        } else {
            mask |= 1u64 << j;
        }
    }
    Subspace::from_mask(mask).expect("Floyd subset is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn crossover_child_within_union() {
        let mut r = rng(1);
        let a = Subspace::from_dims([0, 2, 4]).unwrap();
        let b = Subspace::from_dims([1, 2, 5]).unwrap();
        let u = a.union(&b);
        for _ in 0..100 {
            let c = uniform_crossover(a, b, 8, &mut r);
            assert!(c.is_subset_of(&u), "{c} not within {u}");
            let c = one_point_crossover(a, b, 8, &mut r);
            assert!(c.is_subset_of(&u), "{c} not within {u}");
        }
    }

    #[test]
    fn mutation_rate_zero_is_identity() {
        let mut r = rng(2);
        let s = Subspace::from_dims([1, 3]).unwrap();
        assert_eq!(mutate(s, 8, 0.0, &mut r), s);
    }

    #[test]
    fn mutation_rate_one_flips_everything() {
        let mut r = rng(3);
        let s = Subspace::from_dims([0, 1]).unwrap();
        let m = mutate(s, 4, 1.0, &mut r);
        assert_eq!(m, Subspace::from_dims([2, 3]).unwrap());
    }

    #[test]
    fn repair_reseeds_empty() {
        let mut r = rng(4);
        for _ in 0..50 {
            let s = repair(0, 6, &mut r);
            assert_eq!(s.cardinality(), 1);
            assert!(s.fits(6));
        }
    }

    #[test]
    fn repair_clears_out_of_range_bits() {
        let mut r = rng(5);
        let s = repair(0b1111_0000, 4, &mut r);
        assert!(s.fits(4));
    }

    #[test]
    fn repair_with_max_card_truncates() {
        let mut r = rng(6);
        for _ in 0..50 {
            let s = repair_with_max_card(u64::MAX, 16, 3, &mut r);
            assert!(s.cardinality() <= 3 && s.cardinality() >= 1);
            assert!(s.fits(16));
        }
    }

    #[test]
    fn random_subspace_respects_bounds() {
        let mut r = rng(7);
        for _ in 0..200 {
            let s = random_subspace(10, 4, &mut r);
            assert!(s.fits(10));
            assert!((1..=4).contains(&s.cardinality()));
        }
    }

    #[test]
    fn random_subspace_covers_lattice() {
        // With enough draws every single-dim subspace of a small space
        // should appear.
        let mut r = rng(8);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(random_subspace(4, 1, &mut r).mask());
        }
        assert_eq!(seen.len(), 4);
    }

    proptest! {
        #[test]
        fn operators_always_yield_valid_subspaces(
            a in 1u64..1024, b in 1u64..1024, seed in 0u64..1000, rate in 0.0f64..1.0
        ) {
            let mut r = rng(seed);
            let phi = 10;
            let sa = Subspace::from_mask(a).unwrap();
            let sb = Subspace::from_mask(b).unwrap();
            for s in [
                uniform_crossover(sa, sb, phi, &mut r),
                one_point_crossover(sa, sb, phi, &mut r),
                mutate(sa, phi, rate, &mut r),
                random_subspace(phi, phi, &mut r),
            ] {
                prop_assert!(s.cardinality() >= 1);
                prop_assert!(s.fits(phi));
            }
        }
    }
}
