//! Exact enumeration of the low-dimensional slice of the space lattice.
//!
//! The Fixed SST Subspaces (FS) of SPOT are *all* subspaces whose
//! dimensionality is at most `MaxDimension`. Their number is
//! `Σ_{k=1..MaxDimension} C(ϕ, k)`, which is tractable only for small
//! `MaxDimension` — exactly the regime the paper prescribes (the point of
//! SST is that higher-dimensional subspaces are reached by learning, not by
//! enumeration).

use crate::subspace::{Subspace, MAX_DIMS};
use spot_types::stats::binomial;
use spot_types::{Result, SpotError};

/// Number of subspaces of a ϕ-dimensional space with dimensionality in
/// `1..=max_dim` (the size of FS before any capping).
pub fn count_up_to_dim(phi: usize, max_dim: usize) -> u128 {
    let max_dim = max_dim.min(phi);
    (1..=max_dim).map(|k| binomial(phi as u64, k as u64)).sum()
}

/// Enumerates every subspace of exactly `dim` attributes out of `phi`, in
/// ascending mask order (Gosper's hack over `u64` masks).
pub fn enumerate_dim(phi: usize, dim: usize) -> Result<Vec<Subspace>> {
    if phi == 0 || phi > MAX_DIMS {
        return Err(SpotError::TooManyDimensions(phi));
    }
    if dim == 0 || dim > phi {
        return Ok(Vec::new());
    }
    let count = binomial(phi as u64, dim as u64);
    let mut out = Vec::with_capacity(count.min(1 << 22) as usize);
    let limit: u64 = if phi == MAX_DIMS {
        u64::MAX
    } else {
        (1u64 << phi) - 1
    };
    let mut v: u64 = if dim == MAX_DIMS {
        u64::MAX
    } else {
        (1u64 << dim) - 1
    };
    loop {
        out.push(Subspace::from_mask(v).expect("non-zero by construction"));
        if v == 0 || out.len() as u128 >= count {
            break;
        }
        // Gosper's hack: next higher integer with the same popcount.
        let t = v | (v.wrapping_sub(1));
        let next = t.wrapping_add(1)
            | (((!t & (!t).wrapping_neg()).wrapping_sub(1)) >> (v.trailing_zeros() + 1));
        if next > limit || next <= v {
            break;
        }
        v = next;
    }
    Ok(out)
}

/// Enumerates every subspace with dimensionality in `1..=max_dim`, ordered
/// by dimensionality then mask. This is exactly FS.
pub fn enumerate_up_to_dim(phi: usize, max_dim: usize) -> Result<Vec<Subspace>> {
    let max_dim = max_dim.min(phi);
    let total = count_up_to_dim(phi, max_dim);
    const SANITY_CAP: u128 = 5_000_000;
    if total > SANITY_CAP {
        return Err(SpotError::InvalidConfig(format!(
            "FS would contain {total} subspaces (phi={phi}, max_dim={max_dim}); \
             lower MaxDimension"
        )));
    }
    let mut out = Vec::with_capacity(total as usize);
    for k in 1..=max_dim {
        out.extend(enumerate_dim(phi, k)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use spot_types::FxHashSet;

    #[test]
    fn counts_match_binomials() {
        assert_eq!(count_up_to_dim(10, 2), 10 + 45);
        assert_eq!(count_up_to_dim(5, 5), 31); // 2^5 - 1
        assert_eq!(count_up_to_dim(5, 9), 31); // capped at phi
    }

    #[test]
    fn enumerate_exact_dim() {
        let subs = enumerate_dim(5, 2).unwrap();
        assert_eq!(subs.len(), 10);
        assert!(subs.iter().all(|s| s.cardinality() == 2));
        // Distinct and within range.
        let set: FxHashSet<u64> = subs.iter().map(|s| s.mask()).collect();
        assert_eq!(set.len(), 10);
        assert!(subs.iter().all(|s| s.fits(5)));
    }

    #[test]
    fn enumerate_dim_edge_cases() {
        assert!(enumerate_dim(5, 0).unwrap().is_empty());
        assert!(enumerate_dim(5, 6).unwrap().is_empty());
        assert_eq!(enumerate_dim(1, 1).unwrap().len(), 1);
        assert_eq!(enumerate_dim(64, 1).unwrap().len(), 64);
        assert!(enumerate_dim(65, 1).is_err());
        assert!(enumerate_dim(0, 1).is_err());
    }

    #[test]
    fn enumerate_full_dim_of_max_phi() {
        let subs = enumerate_dim(64, 64).unwrap();
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].mask(), u64::MAX);
    }

    #[test]
    fn fs_enumeration_ordered_and_complete() {
        let fs = enumerate_up_to_dim(6, 3).unwrap();
        assert_eq!(fs.len() as u128, count_up_to_dim(6, 3));
        // Ordered by cardinality.
        let cards: Vec<usize> = fs.iter().map(|s| s.cardinality()).collect();
        let mut sorted = cards.clone();
        sorted.sort_unstable();
        assert_eq!(cards, sorted);
    }

    #[test]
    fn fs_enumeration_rejects_explosive_requests() {
        assert!(enumerate_up_to_dim(64, 32).is_err());
    }

    proptest! {
        #[test]
        fn enumeration_count_matches_binomial(phi in 1usize..16, dim in 1usize..6) {
            let subs = enumerate_dim(phi, dim).unwrap();
            prop_assert_eq!(subs.len() as u128, binomial(phi as u64, dim as u64));
            let distinct: FxHashSet<u64> = subs.iter().map(|s| s.mask()).collect();
            prop_assert_eq!(distinct.len(), subs.len());
            for s in &subs {
                prop_assert!(s.fits(phi));
                prop_assert_eq!(s.cardinality(), dim.min(phi));
            }
        }
    }
}
