//! Subspace lattice representation for SPOT.
//!
//! A *subspace* is a non-empty subset of the ϕ attributes of the stream,
//! represented as a `u64` bitmask (bit `i` set ⇔ attribute `i`
//! participates). The space lattice of all `2^ϕ − 1` subspaces is where
//! projected outliers hide; SPOT never materializes the lattice, it only
//! enumerates the low-dimensional slice (Fixed SST Subspaces) exactly and
//! explores the rest with the genetic operators in [`genetic`], driven by
//! the NSGA-II implementation in `spot-moga`.

pub mod genetic;
pub mod lattice;
pub mod set;
pub mod subspace;

pub use genetic::{mutate, one_point_crossover, random_subspace, repair, uniform_crossover};
pub use lattice::{count_up_to_dim, enumerate_dim, enumerate_up_to_dim};
pub use set::{RankedSubspaces, ScoredSubspace, SubspaceSet};
pub use subspace::Subspace;
