//! Sensor-field monitoring with snapshot/restore.
//!
//! Streams readings from a simulated sensor network (diurnal cycle,
//! coupled neighbours) through SPOT, detecting three fault families —
//! including *correlation breaks*, where both readings are individually
//! plausible and only the joint 2-sensor projection is anomalous (the
//! textbook projected outlier). Midway, the detector is snapshotted,
//! "restarted" from the snapshot, and continues monitoring.
//!
//! Run with:
//! ```text
//! cargo run --release --example sensor_field
//! ```

use spot::{Spot, SpotBuilder};
use spot_data::{SensorConfig, SensorGenerator};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut generator = SensorGenerator::new(SensorConfig {
        sensors: 24,
        fault_fraction: 0.02,
        seed: 99,
        ..Default::default()
    })?;

    let mut detector = SpotBuilder::new(generator.bounds())
        .fs_max_dimension(2)
        .seed(21)
        .build()?;
    detector.learn(&generator.generate_normal(3000))?;

    let mut caught: HashMap<String, (u32, u32)> = HashMap::new();
    let mut false_alarms = 0u32;
    let run = |detector: &mut Spot,
               generator: &mut SensorGenerator,
               n: usize,
               caught: &mut HashMap<String, (u32, u32)>,
               false_alarms: &mut u32|
     -> Result<(), Box<dyn std::error::Error>> {
        for record in generator.generate(n) {
            let verdict = detector.process(&record.point)?;
            if record.is_anomaly() {
                let e = caught
                    .entry(record.label.category().to_string())
                    .or_default();
                e.1 += 1;
                if verdict.outlier {
                    e.0 += 1;
                }
            } else if verdict.outlier {
                *false_alarms += 1;
            }
        }
        Ok(())
    };

    run(
        &mut detector,
        &mut generator,
        6000,
        &mut caught,
        &mut false_alarms,
    )?;

    // Operational restart: persist the learned template, rebuild, resume.
    let snapshot = detector.snapshot();
    println!(
        "snapshot taken at tick {} (SST sizes {:?}); restarting detector…",
        detector.now(),
        detector.sst().sizes()
    );
    let mut detector = Spot::from_snapshot(snapshot)?;
    // Re-warm the cold synopses with a short stretch treated as burn-in.
    for record in generator.generate(1500) {
        detector.process(&record.point)?;
    }
    run(
        &mut detector,
        &mut generator,
        6000,
        &mut caught,
        &mut false_alarms,
    )?;

    println!("\nfault detection across 12k monitored readings (+1.5k burn-in):");
    let mut fams: Vec<_> = caught.iter().collect();
    fams.sort();
    for (family, (hit, total)) in fams {
        println!(
            "  {family:<11} {hit:>3}/{total:<3} ({:.1}%)",
            100.0 * *hit as f64 / (*total).max(1) as f64
        );
    }
    println!("false alarms: {false_alarms}");
    println!("stats: {:?}", detector.stats());
    Ok(())
}
