//! Sensor-field monitoring with snapshot/restore.
//!
//! Streams readings from a simulated sensor network (diurnal cycle,
//! coupled neighbours) through SPOT, detecting three fault families —
//! including *correlation breaks*, where both readings are individually
//! plausible and only the joint 2-sensor projection is anomalous (the
//! textbook projected outlier). Midway, the detector is snapshotted,
//! "restarted" from the snapshot, and continues monitoring.
//!
//! Run with:
//! ```text
//! cargo run --release --example sensor_field
//! ```
//!
//! With `--resume`, the example instead exercises the **warm-restart
//! checkpoint on the binary column carrier (v3)**: it streams half the
//! readings, seals a full checkpoint into a checksummed binary container,
//! restores a detector from those bytes alone, and diffs the second
//! half's verdicts against an uninterrupted detector — they must be
//! bit-identical (exit code 1 otherwise). This is the checkpoint/restore
//! smoke CI runs:
//! ```text
//! cargo run --release --example sensor_field -- --resume
//! ```

use spot::{Spot, SpotBuilder};
use spot_data::{SensorConfig, SensorGenerator};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::args().any(|a| a == "--resume") {
        return resume_smoke();
    }
    template_restart_demo()
}

/// `--resume`: checkpoint mid-stream, restart from the sealed binary
/// container, and prove the resumed detector is bit-identical to one
/// that never stopped.
fn resume_smoke() -> Result<(), Box<dyn std::error::Error>> {
    let mut generator = SensorGenerator::new(SensorConfig {
        sensors: 24,
        fault_fraction: 0.02,
        seed: 99,
        ..Default::default()
    })?;
    let train = generator.generate_normal(3000);
    let first: Vec<_> = generator.generate(3000);
    let second: Vec<_> = generator.generate(3000);

    let mut uninterrupted = SpotBuilder::new(generator.bounds()).seed(21).build()?;
    uninterrupted.learn(&train)?;
    let mut resumable = SpotBuilder::new(generator.bounds()).seed(21).build()?;
    resumable.learn(&train)?;

    for r in &first {
        uninterrupted.process(&r.point)?;
        resumable.process(&r.point)?;
    }

    // Persist → "crash" → restore from the sealed container alone. The
    // JSON carrier is rendered too so the size comparison stays visible.
    let checkpoint = resumable.checkpoint();
    let bytes = checkpoint.to_bytes();
    let json_len = serde_json::to_string(&checkpoint)?.len();
    println!(
        "checkpoint at tick {}: {} bytes on the binary column carrier \
         (v3; {json_len} bytes as v2 JSON)",
        resumable.now(),
        bytes.len()
    );
    drop(resumable);
    let mut resumed = spot::restore_from_bytes(&bytes)?;

    let mut mismatches = 0usize;
    for r in &second {
        let a = uninterrupted.process(&r.point)?;
        let b = resumed.process(&r.point)?;
        if !a.bitwise_eq(&b) {
            mismatches += 1;
        }
    }
    let stats_match = uninterrupted.stats() == resumed.stats()
        && uninterrupted.footprint() == resumed.footprint();
    if mismatches == 0 && stats_match {
        println!(
            "resume OK: {}/{} post-restart verdicts bit-identical; stats and footprint match",
            second.len(),
            second.len()
        );
        Ok(())
    } else {
        eprintln!(
            "resume FAILED: {mismatches}/{} verdicts diverged (stats match: {stats_match})",
            second.len()
        );
        std::process::exit(1);
    }
}

fn template_restart_demo() -> Result<(), Box<dyn std::error::Error>> {
    let mut generator = SensorGenerator::new(SensorConfig {
        sensors: 24,
        fault_fraction: 0.02,
        seed: 99,
        ..Default::default()
    })?;

    let mut detector = SpotBuilder::new(generator.bounds())
        .fs_max_dimension(2)
        .seed(21)
        .build()?;
    detector.learn(&generator.generate_normal(3000))?;

    let mut caught: HashMap<String, (u32, u32)> = HashMap::new();
    let mut false_alarms = 0u32;
    let run = |detector: &mut Spot,
               generator: &mut SensorGenerator,
               n: usize,
               caught: &mut HashMap<String, (u32, u32)>,
               false_alarms: &mut u32|
     -> Result<(), Box<dyn std::error::Error>> {
        for record in generator.generate(n) {
            let verdict = detector.process(&record.point)?;
            if record.is_anomaly() {
                let e = caught
                    .entry(record.label.category().to_string())
                    .or_default();
                e.1 += 1;
                if verdict.outlier {
                    e.0 += 1;
                }
            } else if verdict.outlier {
                *false_alarms += 1;
            }
        }
        Ok(())
    };

    run(
        &mut detector,
        &mut generator,
        6000,
        &mut caught,
        &mut false_alarms,
    )?;

    // Operational restart: persist the learned template, rebuild, resume.
    let snapshot = detector.snapshot();
    println!(
        "snapshot taken at tick {} (SST sizes {:?}); restarting detector…",
        detector.now(),
        detector.sst().sizes()
    );
    let mut detector = Spot::from_snapshot(snapshot)?;
    // Re-warm the cold synopses with a short stretch treated as burn-in.
    for record in generator.generate(1500) {
        detector.process(&record.point)?;
    }
    run(
        &mut detector,
        &mut generator,
        6000,
        &mut caught,
        &mut false_alarms,
    )?;

    println!("\nfault detection across 12k monitored readings (+1.5k burn-in):");
    let mut fams: Vec<_> = caught.iter().collect();
    fams.sort();
    for (family, (hit, total)) in fams {
        println!(
            "  {family:<11} {hit:>3}/{total:<3} ({:.1}%)",
            100.0 * *hit as f64 / (*total).max(1) as f64
        );
    }
    println!("false alarms: {false_alarms}");
    println!("stats: {:?}", detector.stats());
    Ok(())
}
