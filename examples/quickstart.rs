//! Quickstart: learn on a historical batch, detect projected outliers in a
//! synthetic stream, print each outlier with its outlying subspaces.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use spot::SpotBuilder;
use spot_data::{SyntheticConfig, SyntheticGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 16-dimensional stream: clustered normal data plus ~2% planted
    // projected outliers (anomalous only inside a 2-dim subspace).
    let config = SyntheticConfig {
        dims: 16,
        outlier_fraction: 0.02,
        seed: 7,
        ..Default::default()
    };
    let mut generator = SyntheticGenerator::new(config)?;
    println!(
        "planted outlying subspaces: {}",
        generator
            .outlier_subspace_pool()
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );

    // Build SPOT over the generator's domain and learn from a clean batch.
    let mut detector = SpotBuilder::new(generator.bounds())
        .fs_max_dimension(2)
        .seed(42)
        .build()?;
    let train = generator.generate_normal(2000);
    let report = detector.learn(&train)?;
    println!(
        "learning stage: {} training points, {} OD candidates, CS = {:?}",
        report.training_points,
        report.od_candidates,
        report
            .cs
            .iter()
            .map(|(s, _)| s.to_string())
            .collect::<Vec<_>>()
    );

    // Detection stage: one pass over 5000 arriving points.
    let mut hits = 0;
    let mut truth = 0;
    let mut caught = 0;
    for record in generator.generate(5000) {
        let verdict = detector.process(&record.point)?;
        if record.is_anomaly() {
            truth += 1;
            if verdict.outlier {
                caught += 1;
            }
        }
        if verdict.outlier {
            hits += 1;
            if hits <= 10 {
                let subspaces = verdict
                    .findings
                    .iter()
                    .take(3)
                    .map(|f| format!("{} (rd={:.3})", f.subspace, f.rd))
                    .collect::<Vec<_>>()
                    .join(", ");
                println!(
                    "#{:<5} outlier (truth: {:<9}) in {}",
                    record.seq,
                    record.label.category(),
                    subspaces
                );
            }
        }
    }
    println!("…");
    println!(
        "flagged {hits} points; detected {caught}/{truth} planted outliers; stats: {:?}",
        detector.stats()
    );
    let fp = detector.footprint();
    println!(
        "synopsis memory: {} base cells + {} projected cells ≈ {} KiB",
        fp.base_cells,
        fp.projected_cells,
        fp.approx_bytes / 1024
    );
    Ok(())
}
