//! Multi-tenant fleet walkthrough: the full tenant lifecycle on one
//! shared executor.
//!
//! Registers a handful of sensor tenants with different configurations,
//! learns each from its own history, streams points through the bounded
//! per-tenant queues, reads fleet-wide stats off-lock, checkpoints the
//! whole fleet to JSON, and proves a restored tenant continues the stream
//! bit-identically.
//!
//! Run with `cargo run --release --example tenant_fleet`.

use spot::{SpotBuilder, SpotConfig};
use spot_runtime::{FleetCheckpoint, FleetConfig, SpotFleet, TenantId};
use spot_types::{DataPoint, DomainBounds};

const DIMS: usize = 6;

fn tenant_config(seed: u64) -> SpotConfig {
    SpotBuilder::new(DomainBounds::unit(DIMS))
        .fs_max_dimension(2)
        .seed(seed)
        .build_config()
        .expect("valid config")
}

/// Per-tenant synthetic sensor stream: a stable regime with occasional
/// projected spikes, salted per tenant so every tenant sees its own data.
fn sensor_stream(n: usize, salt: u64) -> Vec<DataPoint> {
    (0..n)
        .map(|i| {
            let mut v: Vec<f64> = (0..DIMS)
                .map(|d| {
                    let x = (i as u64)
                        .wrapping_mul(d as u64 + 3)
                        .wrapping_add(salt.wrapping_mul(13))
                        % 29;
                    0.25 + (x as f64 / 29.0) * 0.4
                })
                .collect();
            if i % 41 == 7 {
                v[(i + salt as usize) % DIMS] = 0.97;
            }
            DataPoint::new(v)
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One fleet, one shared executor service (2 pool workers here; any
    // setting yields bit-identical verdicts).
    let fleet = SpotFleet::with_workers(
        FleetConfig {
            queue_capacity: 512,
            micro_batch: 256,
        },
        Some(2),
    );

    // 1. Register + learn: each tenant is an independent detector.
    let tenants: Vec<TenantId> = (0..4)
        .map(|t| TenantId::new(format!("sensor-{t}")).expect("valid id"))
        .collect();
    for (t, id) in tenants.iter().enumerate() {
        fleet.register(id.clone(), tenant_config(7 + t as u64))?;
        let report = fleet.learn(id, &sensor_stream(400, t as u64))?;
        println!(
            "{id}: learned (|CS| = {}, {} MOGA evaluations)",
            report.cs.len(),
            report.moga_evaluations
        );
    }
    println!(
        "fleet: {} tenants, pools spawned so far: {}",
        fleet.len(),
        fleet.executor().pools_spawned()
    );

    // 2. Ingest through the bounded queues and drain in micro-batches.
    for (t, id) in tenants.iter().enumerate() {
        for p in sensor_stream(600, 100 + t as u64) {
            fleet.ingest(id, p)?;
            if fleet.queue_len(id)? >= 256 {
                fleet.drain(id)?;
            }
        }
    }
    let mut outliers = 0usize;
    // `pump` reports per-tenant results: a faulted tenant surfaces as its
    // own `Err` entry without aborting the sweep (none here — unwrap).
    for (id, verdicts) in fleet.pump() {
        let verdicts = verdicts?;
        let flagged = verdicts.iter().filter(|v| v.outlier).count();
        outliers += flagged;
        println!(
            "{id}: drained {} queued points ({flagged} outliers)",
            verdicts.len()
        );
    }
    for id in &tenants {
        outliers += fleet.drain_fully(id)?.iter().filter(|v| v.outlier).count();
    }

    // 3. Off-lock monitoring: aggregated counters without touching any
    // tenant's detector lock.
    let stats = fleet.stats();
    let footprint = fleet.footprint();
    println!(
        "fleet stats: processed={} outliers={} ({outliers} in the final drains) queued={} | {} base cells, {:.1} KiB",
        stats.processed,
        stats.outliers,
        stats.queued,
        footprint.base_cells,
        footprint.approx_bytes as f64 / 1024.0
    );
    assert_eq!(
        fleet.executor().pools_spawned(),
        1,
        "all tenants share one worker pool"
    );

    // 4. Checkpoint the whole fleet, restore into a *serial* fleet, and
    // verify one tenant continues bit-identically.
    let json = fleet.checkpoint().to_json();
    println!("fleet checkpoint: {} bytes of JSON", json.len());
    let restored = SpotFleet::from_checkpoint_with(
        &FleetCheckpoint::from_json(&json)?,
        FleetConfig::default(),
        spot::ExecutorHandle::serial(),
    )?;

    let probe = sensor_stream(200, 999);
    let id = &tenants[0];
    let want = fleet.process_batch(id, &probe)?;
    let got = restored.process_batch(id, &probe)?;
    assert_eq!(want.len(), got.len());
    for (a, b) in want.iter().zip(&got) {
        assert!(
            a.bitwise_eq(b),
            "restored tenant diverged at tick {}",
            a.tick
        );
    }
    println!(
        "restore OK: {} post-restore verdicts bit-identical across worker counts",
        got.len()
    );

    // 5. Evict: the fleet keeps serving the survivors.
    fleet.evict(&tenants[3])?;
    println!("evicted {}; {} tenants remain", tenants[3], fleet.len());
    Ok(())
}
