//! Service-plane walkthrough: the fleet behind the in-tree HTTP server.
//!
//! Starts a [`spot_serve::SpotServer`] over a [`SpotFleet`] with a durable
//! checkpoint store attached, registers tenants over the wire, pushes
//! deliberately more points than the queues hold so the client has to ride
//! out `429 Retry-After` backpressure, takes a full binary checkpoint and
//! then chains a delta onto it via `/admin/checkpoint?mode=delta`, reads
//! lock-free stats, forces a drain, and finishes with a graceful shutdown
//! that seals a final generation and leaves nothing queued. Afterwards the
//! store's binary column containers (`.ckpt` full / `.dck` delta) are
//! inspected directly and the newest chain is resolved back into a fleet
//! checkpoint.
//!
//! Run with `cargo run --release --example serve_fleet`.

use spot::Verdict;
use spot_runtime::{CheckpointStore, FleetConfig, SpotFleet};
use spot_serve::{RetryPolicy, ServeClient, ServeConfig, SpotServer, VerdictSink};
use spot_types::{DataPoint, TenantId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const DIMS: usize = 4;

/// Per-tenant synthetic stream: a stable regime with occasional spikes.
fn sensor_stream(n: usize, salt: u64) -> Vec<DataPoint> {
    (0..n)
        .map(|i| {
            let mut v: Vec<f64> = (0..DIMS)
                .map(|d| {
                    let x = (i as u64)
                        .wrapping_mul(d as u64 + 3)
                        .wrapping_add(salt.wrapping_mul(13))
                        % 29;
                    0.25 + (x as f64 / 29.0) * 0.4
                })
                .collect();
            if i % 41 == 7 {
                v[(i + salt as usize) % DIMS] = 0.97;
            }
            DataPoint::new(v)
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small fleet with deliberately tight queues, served over HTTP.
    //    The verdict sink is the server's outlier delivery path: it rides
    //    the pump thread, off every detector lock. A checkpoint store in a
    //    scratch directory arms `/admin/checkpoint` and the final durable
    //    checkpoint on shutdown; every file it writes is a binary column
    //    container.
    let store_dir = std::env::temp_dir().join(format!("spot-serve-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = CheckpointStore::open(&store_dir, 4)?;
    let fleet = SpotFleet::new(FleetConfig {
        queue_capacity: 64,
        micro_batch: 32,
    });
    let outliers = Arc::new(AtomicU64::new(0));
    let sink: VerdictSink = {
        let outliers = Arc::clone(&outliers);
        Arc::new(move |id: &TenantId, verdicts: &[Verdict]| {
            let flagged = verdicts.iter().filter(|v| v.outlier).count() as u64;
            if flagged > 0 {
                println!("  sink: {id} flagged {flagged} outliers");
            }
            outliers.fetch_add(flagged, Ordering::Relaxed);
        })
    };
    let server = SpotServer::builder(fleet.clone())
        .config(ServeConfig {
            workers: 4,
            max_connections: 32,
            ..ServeConfig::default()
        })
        .verdict_sink(sink)
        .store(store)
        .bind("127.0.0.1:0")?;
    let addr = server.local_addr();
    println!("serving the fleet on http://{addr}");

    // 2. A client with a retry policy: deterministic exponential backoff,
    //    honoring the server's Retry-After hints on 429.
    let mut client = ServeClient::new(addr).with_policy(RetryPolicy {
        max_attempts: 32,
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(50),
        retry_after_unit: Duration::from_millis(10),
    });
    assert!(client.healthy(), "server must answer /healthz");

    // 3. Register + learn over the wire.
    let tenants: Vec<TenantId> = (0..3)
        .map(|t| TenantId::new(format!("edge-{t}")).expect("valid id"))
        .collect();
    for (t, id) in tenants.iter().enumerate() {
        client.register(id, DIMS, 7 + t as u64, &sensor_stream(400, t as u64))?;
        println!("registered {id} over HTTP");
    }

    // 4. Ingest far more than the 64-slot queues hold: the client absorbs
    //    429s, waiting out the server's own backlog estimate.
    for (t, id) in tenants.iter().enumerate() {
        let report = client.ingest(id, &sensor_stream(600, 100 + t as u64))?;
        println!(
            "{id}: enqueued {} points in {} requests ({} backpressure waits)",
            report.enqueued, report.requests, report.backpressure_hits
        );
    }

    // 5. Force the tail out synchronously and read per-tenant stats off
    //    the lock-free counters.
    for id in &tenants {
        client.drain(id)?;
        println!("{id}: stats {}", client.tenant_stats(id)?);
    }

    // 6. Durable checkpoints over the wire: a full generation first, then
    //    more traffic on one tenant, then `mode=delta` — the server chains
    //    an incremental generation holding only the dirtied tenant onto
    //    the full one. Both land as binary column containers.
    println!("full checkpoint: {}", client.checkpoint()?.text());
    client.ingest(&tenants[0], &sensor_stream(200, 777))?;
    client.drain(&tenants[0])?;
    println!("delta checkpoint: {}", client.checkpoint_delta()?.text());

    // 7. Graceful shutdown: stop accepting, finish in-flight requests,
    //    drain every queue, seal a final durable generation. Nothing
    //    admitted is lost.
    let report = server.shutdown()?;
    println!(
        "shutdown: drained {} straggler points, {} requests served, sink saw {} outliers, \
         final checkpoint generation {:?}",
        report.drained,
        report.requests,
        outliers.load(Ordering::Relaxed),
        report.generation
    );
    assert!(report.undrained.is_empty());
    assert_eq!(fleet.stats().queued, 0);

    // 8. Look at what the store actually holds: full `.ckpt` anchors and
    //    `.dck` delta extensions, then resolve the newest chain back into
    //    a complete fleet checkpoint exactly as cold recovery would.
    let store = CheckpointStore::open(&store_dir, 4)?;
    for g in store.generations()? {
        let (kind, ext) = if store.is_delta(g)? {
            ("delta", "dck")
        } else {
            ("full", "ckpt")
        };
        let bytes = std::fs::metadata(store_dir.join(format!("fleet-{g:08}.{ext}")))?.len();
        println!("  generation {g}: {kind}, {bytes} bytes (binary column container)");
    }
    let scan = store.load_latest()?;
    let (generation, resolved) = scan.recovered.expect("newest chain must resolve");
    println!(
        "resolved generation {generation}: {} tenants recovered, {} rejected generations",
        resolved.len(),
        scan.rejected.len()
    );
    let _ = std::fs::remove_dir_all(&store_dir);
    Ok(())
}
