//! Subspace explorer — "why is this point an outlier?"
//!
//! The HOS-Miner-style companion workflow (reference [6] of the paper): for
//! a chosen query point, search the space lattice with MOGA for the
//! subspaces in which that point is most outlying relative to the recent
//! stream, and print them with their sparsity scores. This is the
//! interactive part of the demo script, as a CLI.
//!
//! Run with:
//! ```text
//! cargo run --release --example subspace_explorer
//! ```

use spot::SpotBuilder;
use spot_data::{SyntheticConfig, SyntheticGenerator};
use spot_types::DataPoint;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SyntheticConfig {
        dims: 20,
        outlier_fraction: 0.0,
        seed: 31,
        ..Default::default()
    };
    let mut generator = SyntheticGenerator::new(config)?;

    let mut detector = SpotBuilder::new(generator.bounds())
        .fs_max_dimension(1)
        .seed(3)
        .build()?;
    detector.learn(&generator.generate_normal(1500))?;
    // Feed some live stream so the reservoir reflects "recent" data.
    for record in generator.generate(2000) {
        detector.process(&record.point)?;
    }

    // Query 1: a normal-looking point taken from the stream itself.
    let normal_probe = generator.generate_normal(1).remove(0);
    // Query 2: the same point pushed into empty territory in dims {3, 11}.
    let mut vals = normal_probe.values().to_vec();
    vals[3] = 0.997;
    vals[11] = 0.003;
    let outlier_probe = DataPoint::new(vals);

    for (name, probe) in [
        ("normal probe", &normal_probe),
        ("planted probe", &outlier_probe),
    ] {
        println!("== {name} ==");
        let verdict = detector.process(probe)?;
        println!(
            "  flagged online: {} (score {:.3})",
            verdict.outlier, verdict.score
        );
        let top = detector.explain(probe, 5)?;
        for (rank, (subspace, score)) in top.iter().enumerate() {
            println!(
                "  #{:<2} subspace {:<12} sparsity score {:.4}",
                rank + 1,
                subspace.to_string(),
                score
            );
        }
        println!();
    }
    println!(
        "(the planted probe should surface subspaces containing dims 3 and/or 11; \
     lower score = sparser = more outlying)"
    );
    Ok(())
}
