//! Network-intrusion monitoring — the paper's motivating application.
//!
//! Streams KDD-Cup'99-like connection records through SPOT with *supervised*
//! learning: a handful of labeled attack exemplars seed the Outlier-driven
//! SST Subspaces (OS), enabling example-based detection of similar attacks.
//! Reports per-attack-family detection rates and the false-alarm rate, and
//! shows how the flagged subspaces map back to feature names.
//!
//! Run with:
//! ```text
//! cargo run --release --example network_intrusion
//! ```

use spot::SpotBuilder;
use spot_data::{AttackKind, KddConfig, KddGenerator, FEATURE_NAMES};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Rare-attack regime: density-based detection targets *rare* events.
    // (At KDD's native skew the DoS flood is ~2% of ALL traffic; its cells
    // become dense and it stops being an outlier — see EXPERIMENTS.md E4.)
    let mut generator = KddGenerator::new(KddConfig {
        attack_fraction: 0.01,
        family_weights: [0.4, 0.25, 0.2, 0.15],
        seed: 2024,
    })?;

    // Supervised learning: clean history + two exemplars per family from
    // the security team's incident archive.
    let train = generator.generate_normal(2500);
    let mut exemplars = Vec::new();
    for kind in AttackKind::ALL {
        exemplars.push(generator.attack_exemplar(kind));
        exemplars.push(generator.attack_exemplar(kind));
    }
    let mut detector = SpotBuilder::new(generator.bounds())
        .fs_max_dimension(2)
        .os_capacity(32)
        .seed(7)
        .build()?;
    let report = detector.learn_with_examples(&train, &exemplars)?;
    println!("OS seeded with {} exemplar subspaces:", report.os.len());
    for (s, score) in report.os.iter().take(6) {
        let names: Vec<&str> = s.dims().map(|d| FEATURE_NAMES[d]).collect();
        println!("  {s} = {{{}}} (score {score:.3})", names.join(", "));
    }

    // Monitor 20k connections.
    let mut per_family: HashMap<String, (u32, u32)> = HashMap::new(); // (caught, total)
    let mut false_alarms = 0u32;
    let mut normals = 0u32;
    for record in generator.generate(20_000) {
        let verdict = detector.process(&record.point)?;
        if record.is_anomaly() {
            let entry = per_family
                .entry(record.label.category().to_string())
                .or_default();
            entry.1 += 1;
            if verdict.outlier {
                entry.0 += 1;
            }
        } else {
            normals += 1;
            if verdict.outlier {
                false_alarms += 1;
            }
        }
    }

    println!("\nper-family detection over 20k connections:");
    let mut families: Vec<_> = per_family.iter().collect();
    families.sort();
    for (family, (caught, total)) in families {
        println!(
            "  {family:<6} {caught:>4}/{total:<4} ({:.1}%)",
            100.0 * *caught as f64 / (*total).max(1) as f64
        );
    }
    println!(
        "false-alarm rate: {false_alarms}/{normals} ({:.2}%)",
        100.0 * false_alarms as f64 / normals.max(1) as f64
    );
    println!("detector stats: {:?}", detector.stats());
    Ok(())
}
