//! Concept drift: SPOT's online adaptation versus a frozen template.
//!
//! Streams a synthetic workload whose cluster layout is abruptly replaced
//! mid-stream. Two SPOT instances watch the same stream: one with CS
//! self-evolution + drift response enabled, one frozen after learning. The
//! example prints windowed F1 before and after the change point.
//!
//! Run with:
//! ```text
//! cargo run --release --example concept_drift
//! ```

use spot::{DriftConfig, EvolutionConfig, Spot, SpotBuilder};
use spot_data::{DriftKind, DriftingGenerator, SyntheticConfig};
use spot_types::LabeledRecord;

const DRIFT_AT: u64 = 6000;
const STREAM: usize = 12_000;
const WINDOW: usize = 2000;

fn windowed_f1(spot: &mut Spot, records: &[LabeledRecord]) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    let mut tp = 0u64;
    let mut fp = 0u64;
    let mut fn_ = 0u64;
    for (i, r) in records.iter().enumerate() {
        let verdict = spot.process(&r.point).expect("dimensions match");
        match (verdict.outlier, r.is_anomaly()) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
        if (i + 1) % WINDOW == 0 {
            let precision = tp as f64 / (tp + fp).max(1) as f64;
            let recall = tp as f64 / (tp + fn_).max(1) as f64;
            let f1 = if precision + recall > 0.0 {
                2.0 * precision * recall / (precision + recall)
            } else {
                0.0
            };
            out.push((i + 1, f1));
            tp = 0;
            fp = 0;
            fn_ = 0;
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Outliers live in 3-dim subspaces: FS (MaxDimension 2) cannot catch
    // them exactly — detection quality depends on the learned CS/OS, which
    // is precisely what self-evolution keeps fresh across the drift.
    let config = SyntheticConfig {
        dims: 12,
        outlier_fraction: 0.03,
        outlier_subspace_dims: 3,
        seed: 5,
        ..Default::default()
    };
    let mut after = config.clone();
    after.seed = 777;
    after.center_range = (0.55, 0.95);
    let mut source =
        DriftingGenerator::new(config.clone(), after, DriftKind::Abrupt { at: DRIFT_AT })?;
    let train = source.before_mut().generate_normal(2000);
    let records = source.generate(STREAM);

    let build = |adaptive: bool| -> Result<Spot, Box<dyn std::error::Error>> {
        let bounds = spot_types::DomainBounds::unit(config.dims);
        let mut b = SpotBuilder::new(bounds).fs_max_dimension(2).seed(11);
        if adaptive {
            b = b
                .evolution(EvolutionConfig {
                    period: 500,
                    ..Default::default()
                })
                .drift(DriftConfig::default());
        } else {
            b = b
                .evolution(EvolutionConfig {
                    enabled: false,
                    ..Default::default()
                })
                .drift(DriftConfig {
                    enabled: false,
                    ..Default::default()
                });
        }
        Ok(b.build()?)
    };

    let mut adaptive = build(true)?;
    let mut frozen = build(false)?;
    adaptive.learn(&train)?;
    frozen.learn(&train)?;

    let f1_adaptive = windowed_f1(&mut adaptive, &records);
    let f1_frozen = windowed_f1(&mut frozen, &records);

    println!("windowed F1 (drift at point {DRIFT_AT}):");
    println!("{:>8} {:>10} {:>10}", "points", "adaptive", "frozen");
    for ((at, fa), (_, ff)) in f1_adaptive.iter().zip(f1_frozen.iter()) {
        let marker = if *at as u64 > DRIFT_AT {
            "  <- post-drift"
        } else {
            ""
        };
        println!("{at:>8} {fa:>10.3} {ff:>10.3}{marker}");
    }
    println!(
        "\nadaptive: {} evolutions, {} drift alarms, {} OS additions",
        adaptive.stats().evolutions,
        adaptive.stats().drift_events,
        adaptive.stats().os_added
    );
    println!(
        "frozen:   {} evolutions (by construction)",
        frozen.stats().evolutions
    );
    Ok(())
}
