//! Reproducibility: fixed seeds must give bit-identical behaviour across
//! the whole pipeline (generators → learning → detection → adaptation).

use spot::SpotBuilder;
use spot_data::{KddConfig, KddGenerator, SyntheticConfig, SyntheticGenerator};

fn full_run(seed: u64) -> (Vec<bool>, Vec<u64>, spot::SpotStats) {
    let mut g = SyntheticGenerator::new(SyntheticConfig {
        dims: 10,
        outlier_fraction: 0.05,
        seed: 100,
        ..Default::default()
    })
    .unwrap();
    let train = g.generate_normal(800);
    let mut spot = SpotBuilder::new(spot_types::DomainBounds::unit(10))
        .fs_max_dimension(2)
        .seed(seed)
        .build()
        .unwrap();
    spot.learn(&train).unwrap();
    let mut verdicts = Vec::new();
    let mut finding_masks = Vec::new();
    for r in g.generate(2500) {
        let v = spot.process(&r.point).unwrap();
        verdicts.push(v.outlier);
        finding_masks.push(v.findings.iter().map(|f| f.subspace.mask()).sum::<u64>());
    }
    (verdicts, finding_masks, *spot.stats())
}

#[test]
fn identical_seeds_identical_everything() {
    let a = full_run(42);
    let b = full_run(42);
    assert_eq!(a.0, b.0, "outlier flags diverged");
    assert_eq!(a.1, b.1, "reported subspaces diverged");
    assert_eq!(a.2, b.2, "stats diverged");
}

#[test]
fn different_seeds_may_differ_but_stay_sane() {
    let a = full_run(1);
    let b = full_run(2);
    // Both runs process the same stream; their flag *rates* must be in the
    // same ballpark even if individual decisions differ.
    let rate = |v: &[bool]| v.iter().filter(|&&x| x).count() as f64 / v.len() as f64;
    assert!((rate(&a.0) - rate(&b.0)).abs() < 0.10);
}

#[test]
fn generators_are_deterministic() {
    let mk_syn = || {
        SyntheticGenerator::new(SyntheticConfig {
            seed: 9,
            ..Default::default()
        })
        .unwrap()
        .generate(300)
    };
    assert_eq!(mk_syn(), mk_syn());
    let mk_kdd = || {
        KddGenerator::new(KddConfig::default())
            .unwrap()
            .generate(300)
    };
    assert_eq!(mk_kdd(), mk_kdd());
}
