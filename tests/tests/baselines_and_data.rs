//! Cross-crate checks on the baselines and the data substrates.

use spot_baselines::window_knn::{WindowKnnConfig, WindowKnnDetector};
use spot_baselines::{brute_force_top_k, RandomSubspaceDetector};
use spot_data::{AttackKind, KddConfig, KddGenerator, SyntheticConfig, SyntheticGenerator};
use spot_moga::{MogaConfig, SubspaceProblem};
use spot_types::{DomainBounds, StreamDetector};

#[test]
fn window_knn_catches_global_outliers_in_kdd_stream() {
    let mut g = KddGenerator::new(KddConfig {
        attack_fraction: 0.05,
        ..Default::default()
    })
    .unwrap();
    let train = g.generate_normal(800);
    let mut knn = WindowKnnDetector::new(WindowKnnConfig {
        window: 800,
        k: 4,
        radius: 0.35,
    })
    .unwrap();
    StreamDetector::learn(&mut knn, &train).unwrap();
    let mut caught = 0;
    let mut total = 0;
    for r in g.generate(3000) {
        let d = knn.process(&r.point);
        if r.is_anomaly() {
            total += 1;
            if d.outlier {
                caught += 1;
            }
        }
    }
    assert!(total > 50);
    // DoS attacks deviate in 3 of 20 dims — enough Euclidean displacement
    // for kNN to catch a decent share, though not all.
    assert!(caught > total / 4, "caught {caught}/{total}");
}

#[test]
fn random_subspaces_underperform_spot_on_subspace_recovery() {
    // Sanity: the random-subspace detector runs end-to-end on the
    // synthetic stream and produces a plausible outlier rate.
    let config = SyntheticConfig {
        dims: 12,
        outlier_fraction: 0.03,
        seed: 3,
        ..Default::default()
    };
    let mut g = SyntheticGenerator::new(config).unwrap();
    let train = g.generate_normal(1000);
    let mut det = RandomSubspaceDetector::new(
        DomainBounds::unit(12),
        spot_baselines::random_subspace::RandomSubspaceConfig::default(),
    )
    .unwrap();
    StreamDetector::learn(&mut det, &train).unwrap();
    let mut flagged = 0;
    let records = g.generate(2000);
    for r in &records {
        if det.process(&r.point).outlier {
            flagged += 1;
        }
    }
    let rate = flagged as f64 / records.len() as f64;
    assert!(
        rate < 0.5,
        "random-subspace detector flags {rate:.2} of stream"
    );
}

/// Sparsity problem on real generator data, reused by the MOGA-vs-brute
/// check below.
struct KddSparsity {
    evaluator: spot::TrainingEvaluator<'static>,
    target: usize,
}

impl SubspaceProblem for KddSparsity {
    fn phi(&self) -> usize {
        self.evaluator.grid().dims()
    }
    fn num_objectives(&self) -> usize {
        2
    }
    fn evaluate(&mut self, s: spot_subspace::Subspace) -> Vec<f64> {
        let (rd, irsd) = self.evaluator.sparsity(s, Some(&[self.target]));
        vec![rd, irsd]
    }
    fn max_cardinality(&self) -> Option<usize> {
        Some(3)
    }
}

#[test]
fn moga_matches_brute_force_on_attack_explanation() {
    // Take a DoS exemplar; both searches must agree that some subset of its
    // signature dims {11,12,13} is among the sparsest subspaces.
    let mut g = KddGenerator::new(KddConfig::default()).unwrap();
    let mut pts = g.generate_normal(600);
    let target = pts.len();
    pts.push(g.attack_exemplar(AttackKind::Dos));
    let grid = spot_synopsis::Grid::new(DomainBounds::unit(20), 10).unwrap();
    let evaluator = spot::TrainingEvaluator::new(grid, pts).unwrap();

    let signature = AttackKind::Dos.subspace();
    let hits_signature = |subs: &[spot_subspace::Subspace]| {
        subs.iter().any(|s| s.intersection(&signature).is_some())
    };

    let mut problem = KddSparsity {
        evaluator: evaluator.clone(),
        target,
    };
    let brute = brute_force_top_k(&mut problem, 2).unwrap();
    let brute_top: Vec<_> = brute.top_k(5).into_iter().map(|(s, _)| s).collect();
    assert!(
        hits_signature(&brute_top),
        "brute-force top-5 misses the signature: {brute_top:?}"
    );

    let mut problem = KddSparsity { evaluator, target };
    let moga = spot_moga::run(&mut problem, &MogaConfig::default()).unwrap();
    let moga_top: Vec<_> = moga.top_k(5).into_iter().map(|(s, _)| s).collect();
    assert!(
        hits_signature(&moga_top),
        "MOGA top-5 misses the signature: {moga_top:?}"
    );
}

#[test]
fn csv_roundtrip_through_files() {
    let mut g = SyntheticGenerator::new(SyntheticConfig {
        dims: 6,
        outlier_fraction: 0.1,
        seed: 77,
        ..Default::default()
    })
    .unwrap();
    let records = g.generate(200);
    let dir = std::env::temp_dir().join("spot-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream.csv");
    spot_data::csv::save_csv(&path, &records).unwrap();
    let back = spot_data::csv::load_csv(&path).unwrap();
    assert_eq!(records.len(), back.len());
    let anomalies = |rs: &[spot_types::LabeledRecord]| rs.iter().filter(|r| r.is_anomaly()).count();
    assert_eq!(anomalies(&records), anomalies(&back));
    std::fs::remove_file(&path).ok();
}
