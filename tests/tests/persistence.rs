//! Warm-restart acceptance suite: for random streams crossing evolution
//! and pruning ticks, `checkpoint → restore → continue` must yield
//! verdicts, stats and footprint **bit-identical** to an uninterrupted
//! run — through serialized JSON text, on both the one-by-one and the
//! batch path. (The `parallel`-feature executors are pinned separately in
//! `spot`'s `parallel_determinism` suite.)

use proptest::prelude::*;
use spot::{restore_from_json, EvolutionConfig, Spot, SpotBuilder, Verdict};
use spot_types::{DataPoint, DomainBounds};

const DIMS: usize = 4;

fn training(n: usize) -> Vec<DataPoint> {
    let centers = [[0.2, 0.25], [0.6, 0.7], [0.85, 0.3]];
    (0..n)
        .map(|i| {
            let c = centers[i % 3];
            let jitter = |k: usize| ((i * (k + 5)) % 11) as f64 / 11.0 * 0.05;
            DataPoint::new(vec![
                c[0] + jitter(0),
                c[1] + jitter(1),
                0.35 + jitter(2) * 4.0,
                0.45 + jitter(3) * 4.0,
            ])
        })
        .collect()
}

/// A stream with planted projected outliers, deterministic in `salt`.
fn stream(n: usize, salt: u64) -> Vec<DataPoint> {
    training(n)
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            let mut v = p.into_values();
            if (i as u64 + salt).is_multiple_of(13) {
                v[2 + i % 2] = 0.96 - ((i as u64 + salt) % 7) as f64 * 0.012;
            }
            DataPoint::new(v)
        })
        .collect()
}

fn detector(seed: u64, evolution_period: u64, prune_every: u64) -> Spot {
    let mut s = SpotBuilder::new(DomainBounds::unit(DIMS))
        .seed(seed)
        .evolution(EvolutionConfig {
            period: evolution_period,
            outlier_buffer: 32,
            reservoir: 128,
            min_outliers_for_os: 3,
            ..Default::default()
        })
        .pruning(prune_every, 1e-4)
        .build()
        .unwrap();
    s.learn(&training(250)).unwrap();
    s
}

fn assert_verdicts_bitwise(want: &[Verdict], got: &[Verdict]) {
    assert_eq!(want.len(), got.len());
    for (a, b) in want.iter().zip(got) {
        // Field-level asserts for diagnostics; bitwise_eq is the
        // authoritative (field-complete) predicate.
        assert_eq!(a.outlier, b.outlier, "tick {}", a.tick);
        assert_eq!(a.findings, b.findings, "tick {}", a.tick);
        assert!(a.bitwise_eq(b), "tick {}: {a:?} vs {b:?}", a.tick);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// One-by-one processing, cut at a random point. Evolution and pruning
    /// periods are drawn small enough that several maintenance ticks land
    /// on both sides of the cut.
    #[test]
    fn resume_is_bit_exact_one_by_one(
        seed in 0u64..1000,
        salt in 0u64..100,
        evolution_period in 40u64..120,
        prune_every in 30u64..100,
        cut_frac in 0.1f64..0.9,
    ) {
        let pts = stream(360, salt);
        let cut = ((pts.len() as f64 * cut_frac) as usize).clamp(1, pts.len() - 1);

        let mut uninterrupted = detector(seed, evolution_period, prune_every);
        let want: Vec<Verdict> = pts.iter().map(|p| uninterrupted.process(p).unwrap()).collect();

        let mut before = detector(seed, evolution_period, prune_every);
        let mut got: Vec<Verdict> = pts[..cut].iter().map(|p| before.process(p).unwrap()).collect();
        let json = serde_json::to_string(&before.checkpoint()).unwrap();
        drop(before);
        let mut resumed = restore_from_json(&json).unwrap();
        got.extend(pts[cut..].iter().map(|p| resumed.process(p).unwrap()));

        assert_verdicts_bitwise(&want, &got);
        prop_assert_eq!(resumed.stats(), uninterrupted.stats());
        prop_assert_eq!(resumed.footprint(), uninterrupted.footprint());
        prop_assert_eq!(resumed.now(), uninterrupted.now());
        // Maintenance-relevant hidden state is equal too: both detectors
        // checkpoint to the same bytes.
        prop_assert_eq!(
            serde_json::to_string(&resumed.checkpoint()).unwrap(),
            serde_json::to_string(&uninterrupted.checkpoint()).unwrap()
        );
    }

    /// Batch processing: the run pipeline (maintenance-bounded runs,
    /// overlap gate) must be insensitive to where the checkpoint fell.
    #[test]
    fn resume_is_bit_exact_for_batches(
        seed in 0u64..1000,
        salt in 0u64..100,
        evolution_period in 40u64..120,
        prune_every in 30u64..100,
        cut in 40usize..320,
        chunk in 20usize..90,
    ) {
        let pts = stream(360, salt);

        let mut uninterrupted = detector(seed, evolution_period, prune_every);
        let mut want = Vec::new();
        for c in pts.chunks(chunk) {
            want.extend(uninterrupted.process_batch(c).unwrap());
        }

        let mut before = detector(seed, evolution_period, prune_every);
        let mut got = Vec::new();
        for c in pts[..cut].chunks(chunk) {
            got.extend(before.process_batch(c).unwrap());
        }
        let json = serde_json::to_string(&before.checkpoint()).unwrap();
        drop(before);
        let mut resumed = restore_from_json(&json).unwrap();
        for c in pts[cut..].chunks(chunk) {
            got.extend(resumed.process_batch(c).unwrap());
        }

        assert_verdicts_bitwise(&want, &got);
        prop_assert_eq!(resumed.stats(), uninterrupted.stats());
        prop_assert_eq!(resumed.footprint(), uninterrupted.footprint());
    }
}

#[test]
fn resume_preserves_drift_response() {
    // A level shift after the checkpoint must fire the drift alarm on the
    // same tick for the resumed and the uninterrupted detector — the
    // Page–Hinkley statistics accumulated *before* the cut carry over.
    let build = || {
        let mut s = SpotBuilder::new(DomainBounds::unit(DIMS))
            .seed(7)
            .drift(spot::DriftConfig {
                enabled: true,
                delta: 0.005,
                lambda: 2.0,
                min_points: 50,
                novelty_floor: 5.0,
            })
            .build()
            .unwrap();
        s.learn(&training(250)).unwrap();
        s
    };
    // Stationary prefix, then a shifted regime that opens fresh cells.
    let mut pts = stream(200, 3);
    pts.extend((0..200).map(|i| {
        DataPoint::new(vec![
            0.05 + (i % 17) as f64 * 0.002,
            0.9 - (i % 13) as f64 * 0.003,
            0.05 + (i % 11) as f64 * 0.004,
            0.9 - (i % 7) as f64 * 0.005,
        ])
    }));

    let mut uninterrupted = build();
    let want: Vec<Verdict> = pts
        .iter()
        .map(|p| uninterrupted.process(p).unwrap())
        .collect();
    assert!(
        want.iter().any(|v| v.drift),
        "test premise: the shift must trigger a drift alarm"
    );

    let mut before = build();
    let mut got: Vec<Verdict> = pts[..180]
        .iter()
        .map(|p| before.process(p).unwrap())
        .collect();
    let json = serde_json::to_string(&before.checkpoint()).unwrap();
    let mut resumed = restore_from_json(&json).unwrap();
    got.extend(pts[180..].iter().map(|p| resumed.process(p).unwrap()));

    assert_verdicts_bitwise(&want, &got);
    assert_eq!(
        resumed.stats().drift_events,
        uninterrupted.stats().drift_events
    );
}

#[test]
fn v1_and_v2_coexist_in_the_loader() {
    let mut spot = detector(9, 80, 60);
    for p in stream(120, 1) {
        spot.process(&p).unwrap();
    }
    let v1 = serde_json::to_string(&spot.snapshot()).unwrap();
    let v2 = serde_json::to_string(&spot.checkpoint()).unwrap();
    let cold = restore_from_json(&v1).unwrap();
    let warm = restore_from_json(&v2).unwrap();
    assert_eq!(cold.now(), 0);
    assert_eq!(warm.now(), spot.now());
    assert_eq!(cold.footprint().base_cells, 0);
    assert_eq!(warm.footprint(), spot.footprint());
}
