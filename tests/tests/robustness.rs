//! Property-based robustness: SPOT must absorb arbitrary (even
//! out-of-bounds) numeric streams without panicking, keep its counters
//! consistent, and respect configuration invariants.

use proptest::prelude::*;
use spot::{EvolutionConfig, SpotBuilder};
use spot_types::{DataPoint, DomainBounds};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn survives_arbitrary_streams(
        seed in 0u64..1000,
        train_vals in proptest::collection::vec(
            proptest::collection::vec(-2.0f64..3.0, 4), 20..60
        ),
        stream_vals in proptest::collection::vec(
            proptest::collection::vec(-5.0f64..6.0, 4), 10..80
        ),
    ) {
        let mut spot = SpotBuilder::new(DomainBounds::unit(4))
            .fs_max_dimension(2)
            .seed(seed)
            .evolution(EvolutionConfig { period: 20, ..Default::default() })
            .build()
            .unwrap();
        let train: Vec<DataPoint> = train_vals.into_iter().map(DataPoint::new).collect();
        spot.learn(&train).unwrap();
        let mut outliers = 0u64;
        for vals in stream_vals {
            let v = spot.process(&DataPoint::new(vals)).unwrap();
            if v.outlier {
                outliers += 1;
                prop_assert!(!v.findings.is_empty());
            } else {
                prop_assert!(v.findings.is_empty());
            }
            prop_assert!((0.0..=1.0).contains(&v.score) || v.score == 0.0);
            for f in &v.findings {
                prop_assert!(f.rd < spot.config().thresholds.rd);
            }
        }
        prop_assert_eq!(spot.stats().outliers, outliers);
        prop_assert!(spot.stats().processed >= outliers);
    }

    #[test]
    fn verdict_ticks_are_monotonic(
        n in 5usize..40,
    ) {
        let mut spot = SpotBuilder::new(DomainBounds::unit(3)).seed(1).build().unwrap();
        let train: Vec<DataPoint> = (0..50)
            .map(|i| DataPoint::new(vec![0.5 + (i % 5) as f64 * 0.01; 3]))
            .collect();
        spot.learn(&train).unwrap();
        let mut last = spot.now();
        for i in 0..n {
            let v = spot.process(&DataPoint::new(vec![i as f64 / n as f64; 3])).unwrap();
            prop_assert!(v.tick > last);
            last = v.tick;
        }
    }
}

#[test]
fn dimension_mismatch_is_an_error_not_a_panic() {
    let mut spot = SpotBuilder::new(DomainBounds::unit(4)).build().unwrap();
    let train: Vec<DataPoint> = (0..30).map(|_| DataPoint::new(vec![0.5; 4])).collect();
    spot.learn(&train).unwrap();
    assert!(spot.process(&DataPoint::new(vec![0.5; 3])).is_err());
    assert!(spot.process(&DataPoint::new(vec![0.5; 5])).is_err());
    // The detector remains usable afterwards.
    assert!(spot.process(&DataPoint::new(vec![0.5; 4])).is_ok());
}

#[test]
fn extreme_values_are_clamped_into_boundary_cells() {
    let mut spot = SpotBuilder::new(DomainBounds::unit(4))
        .seed(2)
        .build()
        .unwrap();
    // Enough training mass that a singleton boundary cell is sparse
    // relative to the uniform expectation (RD needs N ≫ m/τ).
    let train: Vec<DataPoint> = (0..800)
        .map(|i| DataPoint::new(vec![0.5 + (i % 7) as f64 * 0.01; 4]))
        .collect();
    spot.learn(&train).unwrap();
    for v in [f64::MAX, f64::MIN, 1e300, -1e300] {
        let verdict = spot.process(&DataPoint::new(vec![v; 4])).unwrap();
        // Far outside the trained region: must be an outlier, not a crash.
        assert!(verdict.outlier);
    }
}
