//! End-to-end effectiveness: SPOT on synthetic projected-outlier streams,
//! with quality floors and superiority over the full-space baseline.

use spot::SpotBuilder;
use spot_baselines::fullspace::{FullSpaceConfig, FullSpaceGridDetector};
use spot_data::{SyntheticConfig, SyntheticGenerator};
use spot_metrics::ConfusionMatrix;
use spot_types::{LabeledRecord, StreamDetector};

fn stream(seed: u64, dims: usize, n: usize) -> (Vec<spot_types::DataPoint>, Vec<LabeledRecord>) {
    let config = SyntheticConfig {
        dims,
        outlier_fraction: 0.03,
        seed,
        ..Default::default()
    };
    let mut g = SyntheticGenerator::new(config).unwrap();
    let train = g.generate_normal(1500);
    let records = g.generate(n);
    (train, records)
}

fn evaluate<D: StreamDetector>(detector: &mut D, records: &[LabeledRecord]) -> ConfusionMatrix {
    let mut m = ConfusionMatrix::new();
    for r in records {
        let d = detector.process(&r.point);
        m.record(d.outlier, r.is_anomaly());
    }
    m
}

#[test]
fn spot_detects_projected_outliers_with_good_f1() {
    let (train, records) = stream(7, 12, 4000);
    let mut spot = SpotBuilder::new(spot_types::DomainBounds::unit(12))
        .fs_max_dimension(2)
        .seed(1)
        .build()
        .unwrap();
    spot.learn(&train).unwrap();
    let m = evaluate(&mut spot, &records);
    assert!(m.recall() > 0.7, "recall {:.3} too low ({m:?})", m.recall());
    assert!(m.f1() > 0.6, "f1 {:.3} too low ({m:?})", m.f1());
    assert!(
        m.false_positive_rate() < 0.1,
        "fpr {:.3} too high",
        m.false_positive_rate()
    );
}

#[test]
fn spot_beats_fullspace_baseline_on_projected_outliers() {
    let (train, records) = stream(21, 12, 4000);
    let mut spot = SpotBuilder::new(spot_types::DomainBounds::unit(12))
        .fs_max_dimension(2)
        .seed(2)
        .build()
        .unwrap();
    spot.learn(&train).unwrap();
    let spot_m = evaluate(&mut spot, &records);

    let mut full = FullSpaceGridDetector::new(
        spot_types::DomainBounds::unit(12),
        FullSpaceConfig::default(),
    )
    .unwrap();
    StreamDetector::learn(&mut full, &train).unwrap();
    let full_m = evaluate(&mut full, &records);

    assert!(
        spot_m.f1() > full_m.f1(),
        "SPOT F1 {:.3} must beat full-space F1 {:.3}",
        spot_m.f1(),
        full_m.f1()
    );
}

#[test]
fn reported_subspaces_overlap_planted_ones() {
    let config = SyntheticConfig {
        dims: 12,
        outlier_fraction: 0.03,
        seed: 9,
        ..Default::default()
    };
    let mut g = SyntheticGenerator::new(config).unwrap();
    let train = g.generate_normal(1500);
    let records = g.generate(4000);
    let mut spot = SpotBuilder::new(spot_types::DomainBounds::unit(12))
        .fs_max_dimension(2)
        .seed(3)
        .build()
        .unwrap();
    spot.learn(&train).unwrap();

    let mut overlaps = 0usize;
    let mut detected = 0usize;
    for r in &records {
        let v = spot.process(&r.point).unwrap();
        if let Some(info) = r.label.anomaly() {
            if v.outlier {
                detected += 1;
                let truth =
                    spot_subspace::Subspace::from_mask(info.true_subspace.unwrap()).unwrap();
                let best = spot_metrics::best_jaccard(truth, &v.subspaces());
                if best >= 0.5 {
                    overlaps += 1;
                }
            }
        }
    }
    assert!(
        detected > 50,
        "too few detections ({detected}) for a meaningful check"
    );
    let frac = overlaps as f64 / detected as f64;
    assert!(
        frac > 0.6,
        "only {frac:.2} of detections overlap the planted subspace"
    );
}

#[test]
fn memory_stays_bounded_on_long_streams() {
    let config = SyntheticConfig {
        dims: 10,
        outlier_fraction: 0.01,
        seed: 4,
        ..Default::default()
    };
    let mut g = SyntheticGenerator::new(config).unwrap();
    let train = g.generate_normal(1000);
    let mut spot = SpotBuilder::new(spot_types::DomainBounds::unit(10))
        .fs_max_dimension(2)
        .time_model(spot_stream::TimeModel::new(500, 0.01).unwrap())
        .pruning(500, 1e-3)
        .seed(5)
        .build()
        .unwrap();
    spot.learn(&train).unwrap();

    // OS growth keeps adding projected stores for a while; each new store
    // needs ~one prune horizon to saturate. Judge the plateau on the final
    // quarter of the stream, after the SST composition has settled.
    let mut peak_tail = 0usize;
    let mut at_three_quarters = 0usize;
    for (i, r) in g.generate(20_000).into_iter().enumerate() {
        spot.process(&r.point).unwrap();
        let cells = spot.footprint().total_cells();
        if i == 15_000 {
            at_three_quarters = cells;
        }
        if i >= 15_000 {
            peak_tail = peak_tail.max(cells);
        }
    }
    assert!(
        (peak_tail as f64) < at_three_quarters as f64 * 1.6,
        "cells kept growing: at 15k {at_three_quarters}, tail peak {peak_tail}"
    );
}

trait FootprintExt {
    fn total_cells(&self) -> usize;
}

impl FootprintExt for spot::SynopsisFootprint {
    fn total_cells(&self) -> usize {
        self.base_cells + self.projected_cells
    }
}
