//! Stream-dynamics behaviour: drift alarms fire on distribution change,
//! adaptation recovers detection quality, and SST stays within capacity.

use spot::{DriftConfig, EvolutionConfig, SpotBuilder};
use spot_data::{DriftKind, DriftingGenerator, SyntheticConfig};

fn drift_setup(adaptive: bool) -> (spot::Spot, DriftingGenerator) {
    let config = SyntheticConfig {
        dims: 10,
        outlier_fraction: 0.03,
        seed: 50,
        ..Default::default()
    };
    // Post-drift clusters occupy previously empty territory near the top of
    // the domain — the "new behaviour shows up" drift scenario.
    let mut after = config.clone();
    after.seed = 999;
    after.center_range = (0.6, 0.95);
    let mut source = DriftingGenerator::new(config, after, DriftKind::Abrupt { at: 4000 }).unwrap();
    let train = source.before_mut().generate_normal(1200);
    let mut spot = SpotBuilder::new(spot_types::DomainBounds::unit(10))
        .fs_max_dimension(2)
        .seed(8)
        .evolution(EvolutionConfig {
            enabled: adaptive,
            period: 500,
            ..Default::default()
        })
        .drift(DriftConfig {
            enabled: adaptive,
            ..Default::default()
        })
        .build()
        .unwrap();
    spot.learn(&train).unwrap();
    (spot, source)
}

#[test]
fn drift_alarm_fires_after_abrupt_change() {
    let (mut spot, source) = drift_setup(true);
    let mut first_alarm = None;
    for (i, r) in source.take(8000).enumerate() {
        let v = spot.process(&r.point).unwrap();
        if v.drift && first_alarm.is_none() {
            first_alarm = Some(i);
        }
    }
    let at = first_alarm.expect("drift alarm must fire");
    assert!(at >= 3500, "alarm fired before the change point: {at}");
    assert!(at <= 7000, "alarm far too late: {at}");
    assert!(spot.stats().drift_events >= 1);
}

#[test]
fn stable_stream_rarely_alarms() {
    let config = SyntheticConfig {
        dims: 10,
        outlier_fraction: 0.03,
        seed: 51,
        ..Default::default()
    };
    let mut g = spot_data::SyntheticGenerator::new(config).unwrap();
    let train = g.generate_normal(1200);
    let mut spot = SpotBuilder::new(spot_types::DomainBounds::unit(10))
        .fs_max_dimension(2)
        .seed(8)
        .build()
        .unwrap();
    spot.learn(&train).unwrap();
    for r in g.generate(8000) {
        spot.process(&r.point).unwrap();
    }
    assert!(
        spot.stats().drift_events <= 1,
        "{} alarms on a stable stream",
        spot.stats().drift_events
    );
}

#[test]
fn sst_capacities_hold_under_long_adaptation() {
    let (mut spot, source) = drift_setup(true);
    for r in source.take(9000) {
        spot.process(&r.point).unwrap();
    }
    let (fs, cs, os) = spot.sst().sizes();
    assert_eq!(fs, 10 + 45); // FS is immutable
    assert!(cs <= spot.config().cs_capacity);
    assert!(os <= spot.config().os_capacity);
    assert!(spot.stats().evolutions > 0);
}

#[test]
fn adaptive_recovers_better_than_frozen_after_drift() {
    let run = |adaptive: bool| {
        let (mut spot, source) = drift_setup(adaptive);
        let mut post_tp = 0u32;
        let mut post_fn = 0u32;
        for (i, r) in source.take(9000).enumerate() {
            let v = spot.process(&r.point).unwrap();
            // Post-drift tail, after some re-adaptation slack.
            if i > 5500 && r.is_anomaly() {
                if v.outlier {
                    post_tp += 1;
                } else {
                    post_fn += 1;
                }
            }
        }
        post_tp as f64 / (post_tp + post_fn).max(1) as f64
    };
    let adaptive_recall = run(true);
    let frozen_recall = run(false);
    // Adaptation must not hurt post-drift recall; typically it helps.
    assert!(
        adaptive_recall >= frozen_recall - 0.05,
        "adaptive {adaptive_recall:.3} vs frozen {frozen_recall:.3}"
    );
}
